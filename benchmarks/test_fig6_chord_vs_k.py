"""Figure 6 — Chord: % hop reduction vs number of auxiliary pointers.

Paper series: k in {1, 2, 3} x log n at fixed n, stable and churn modes.
Shape target: the improvement *shrinks* as k grows — with a big budget
even randomly-chosen pointers land near the hot destinations, so the
relative edge of optimal selection narrows (paper: churn 26% at k = log n
down to ~17% at 3 log n). The stable series uses finite learned
frequencies (Section III), which is what caps the optimal scheme's gains
at large k.
"""

from conftest import run_once

from repro.experiments.figures import figure6
from repro.experiments.report import render_detail, render_table


def test_figure6_chord_vs_k(benchmark, quick_preset):
    result = run_once(benchmark, figure6, quick_preset)
    print()
    print(render_table(result))
    print(render_detail(result))

    stable, churn = result.series
    # Positive everywhere: extra pointers never flip the comparison.
    for series in result.series:
        for value in series.improvements():
            assert value > 3.0
    # The headline trend: k = 3 log n helps the baseline catch up.
    assert stable.improvements()[-1] < stable.improvements()[0]
    # Churn series stays below ~ its stable counterpart at k = log n.
    assert churn.improvements()[0] < stable.improvements()[0] + 5.0
