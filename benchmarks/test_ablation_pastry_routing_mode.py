"""Ablation — greedy vs locality-aware Pastry routing (DESIGN.md §6.4).

The mechanism behind Figure 4: under locality-aware (FreePastry-style)
routing, extra *random* pointers mostly lose the proximity contest, while
frequency-aware pointers at exact destinations still deliver directly —
so the optimal scheme's edge grows with k. Under greedy routing both
pointer kinds cut hops, so the edge is flatter.
"""

from conftest import run_once

from repro.sim.runner import ExperimentConfig, run_stable


def cell(mode: str, k: int):
    return run_stable(
        ExperimentConfig(
            overlay="pastry",
            n=128,
            k=k,
            bits=20,
            alpha=1.2,
            queries=2500,
            num_rankings=1,
            seed=4,
            pastry_mode=mode,
        )
    )


def test_bench_proximity_mode(benchmark):
    result = run_once(benchmark, cell, "proximity", 7)
    assert result.improvement > 0


def test_bench_greedy_mode(benchmark):
    result = run_once(benchmark, cell, "greedy", 7)
    assert result.improvement > 0


def test_mode_shapes():
    rows = {
        (mode, k): cell(mode, k)
        for mode in ("proximity", "greedy")
        for k in (7, 21)
    }
    print()
    for (mode, k), result in rows.items():
        print(f"  {mode:9s} k={k:2d}: {result.summary()}")
    # Both modes beat the oblivious baseline at every budget.
    for row in rows.values():
        assert row.improvement > 10.0
    # Figure 4's mechanism: under proximity routing the optimal scheme's
    # relative edge does not shrink when k triples...
    assert rows[("proximity", 21)].improvement > rows[("proximity", 7)].improvement - 1.0
    # ...and the deliver-direct tier means destination-exact auxiliary
    # pointers serve proximity routing at least as well as prefix-greedy
    # at large k (prefix-length gain is a poor proxy for numeric
    # closeness, so pure greedy can *miss* the destination shortcut).
    assert (
        rows[("proximity", 21)].optimized.mean_hops
        <= rows[("greedy", 21)].optimized.mean_hops + 0.05
    )
