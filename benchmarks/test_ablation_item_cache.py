"""Ablation — pointer caching vs item caching vs replication
(DESIGN.md §6.5, paper Sections I and II-C).

Quantifies the paper's motivating argument: under frequent item updates,
item caching serves stale answers and replication pays update traffic,
while auxiliary peer pointers cut hops with neither cost.
"""

from conftest import run_once

from repro.extensions.item_cache import simulate_item_churn
from repro.extensions.replication import simulate_replication


def test_bench_item_cache_comparison(benchmark):
    reports = run_once(
        benchmark,
        simulate_item_churn,
        n=48,
        bits=18,
        queries=2500,
        update_probability=0.2,
        seed=5,
    )
    print()
    for report in reports.values():
        print(f"  {report.summary()}")
    assert reports["pointer"].stale_answer_rate == 0.0
    assert reports["item-cache"].stale_answer_rate > 0.02
    assert reports["pointer"].mean_hops < reports["none"].mean_hops


def test_bench_replication_comparison(benchmark):
    reports = run_once(
        benchmark,
        simulate_replication,
        n=48,
        bits=18,
        queries=2000,
        replicated_fraction=0.08,
        replication_level=3,
        seed=6,
    )
    print()
    for report in reports.values():
        print(f"  {report.summary()}")
    assert reports["replication"].update_messages_per_update > 0
    assert reports["pointer"].update_messages_per_update == 0
    assert reports["pointer"].mean_hops < reports["none"].mean_hops
    assert reports["replication"].mean_hops < reports["none"].mean_hops
