"""Micro-benchmarks: selection scaling and lookup throughput.

Not tied to a paper figure; they document the constants behind the
complexity claims (Sections IV-B and V-B) and the simulator's raw speed.
"""

import random

import pytest

from tests.helpers import random_problem

from repro.chord.ring import ChordRing
from repro.core.chord_selection import select_chord_fast
from repro.core.pastry_selection import select_pastry_greedy
from repro.pastry.network import PastryNetwork
from repro.util.ids import IdSpace


@pytest.mark.parametrize("peers", [100, 400, 1600])
def test_bench_chord_fast_scaling(benchmark, peers):
    problem = random_problem(random.Random(10), bits=32, peers=peers, cores=10, k=12)
    benchmark.pedantic(select_chord_fast, args=(problem,), rounds=3, iterations=1)


@pytest.mark.parametrize("peers", [100, 400, 1600])
def test_bench_pastry_greedy_scaling(benchmark, peers):
    problem = random_problem(random.Random(11), bits=32, peers=peers, cores=10, k=12)
    benchmark.pedantic(select_pastry_greedy, args=(problem,), rounds=3, iterations=1)


def test_bench_chord_lookup_throughput(benchmark):
    ring = ChordRing.build(512, space=IdSpace(24), seed=12)
    sources = ring.alive_ids()
    rng = random.Random(13)
    keys = [rng.randrange(2**24) for __ in range(256)]
    state = {"i": 0}

    def lookup():
        i = state["i"] = state["i"] + 1
        result = ring.lookup(sources[i % len(sources)], keys[i % len(keys)], record_access=False)
        assert result.succeeded

    benchmark(lookup)


def test_bench_pastry_lookup_throughput(benchmark):
    network = PastryNetwork.build(512, space=IdSpace(24), seed=14)
    sources = network.alive_ids()
    rng = random.Random(15)
    keys = [rng.randrange(2**24) for __ in range(256)]
    state = {"i": 0}

    def lookup():
        i = state["i"] = state["i"] + 1
        result = network.lookup(sources[i % len(sources)], keys[i % len(keys)], record_access=False)
        assert result.succeeded

    benchmark(lookup)
