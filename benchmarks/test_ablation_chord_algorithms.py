"""Ablation — Chord selection algorithms (DESIGN.md §6.2).

The O(n^2 k) dynamic program of Section V-A versus the fast solver of
Section V-B (span oracle + Monge divide-and-conquer). Equal costs,
asymptotically different run times.
"""

import random

import pytest

from tests.helpers import random_problem

from repro.core.chord_selection import select_chord_dp, select_chord_fast


def make_problem(peers=400, k=16):
    return random_problem(random.Random(2), bits=32, peers=peers, cores=12, k=k)


@pytest.fixture(scope="module")
def problem():
    return make_problem()


def test_bench_chord_dp(benchmark, problem):
    result = benchmark(select_chord_dp, problem)
    assert len(result.auxiliary) == problem.k


def test_bench_chord_fast(benchmark, problem):
    result = benchmark(select_chord_fast, problem)
    assert len(result.auxiliary) == problem.k


def test_same_cost(problem):
    assert select_chord_fast(problem).cost == pytest.approx(select_chord_dp(problem).cost)
