"""Ablation — Pastry selection algorithms (DESIGN.md §6.1).

The paper gives two optimal algorithms: the O(n k^2) dynamic program
(Section IV-A) and the O(n k) greedy built on nesting property (P)
(Section IV-B). They must return identical costs; the greedy must be
substantially faster. These benches document both.
"""

import random

import pytest

from tests.helpers import random_problem

from repro.core.pastry_selection import select_pastry_dp, select_pastry_greedy


def make_problem(peers=1500, k=24):
    return random_problem(random.Random(1), bits=32, peers=peers, cores=16, k=k)


@pytest.fixture(scope="module")
def problem():
    return make_problem()


def test_bench_pastry_dp(benchmark, problem):
    result = benchmark(select_pastry_dp, problem)
    assert len(result.auxiliary) == problem.k


def test_bench_pastry_greedy(benchmark, problem):
    result = benchmark(select_pastry_greedy, problem)
    assert len(result.auxiliary) == problem.k


def test_same_cost_different_speed(problem):
    dp = select_pastry_dp(problem)
    greedy = select_pastry_greedy(problem)
    assert greedy.cost == pytest.approx(dp.cost)
