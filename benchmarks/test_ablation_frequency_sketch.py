"""Ablation — exact frequency tables vs streaming top-n sketches
(DESIGN.md §6.3, paper Section III implementation note).

A node with bounded memory tracks only the top-n destinations (reference
[3]). This bench measures how much selection quality (the eq. 1 cost,
evaluated against the *true* distribution) degrades as the Space-Saving
sketch shrinks.
"""

import random

import pytest

from repro.core.chord_selection import select_chord
from repro.core.cost import chord_cost
from repro.core.frequency import ExactFrequencyTable, SpaceSavingSketch
from repro.core.types import SelectionProblem
from repro.util.ids import IdSpace
from repro.workload.zipf import ZipfDistribution

SPACE = IdSpace(24)
SOURCE = 0
K = 10


def build_stream(num_peers=400, num_queries=30_000, alpha=1.2, seed=3):
    rng = random.Random(seed)
    peers = rng.sample(range(1, SPACE.size), num_peers)
    zipf = ZipfDistribution(alpha, num_peers)
    stream = [peers[zipf.sample_rank(rng) - 1] for __ in range(num_queries)]
    truth = {}
    for peer in stream:
        truth[peer] = truth.get(peer, 0.0) + 1.0
    return stream, truth


STREAM, TRUTH = build_stream()
CORES = frozenset(sorted(TRUTH)[:8])


def cost_with_tracker(tracker, limit=None) -> float:
    for peer in STREAM:
        tracker.observe(peer)
    problem = SelectionProblem(
        space=SPACE,
        source=SOURCE,
        frequencies=tracker.snapshot(limit),
        core_neighbors=CORES,
        k=K,
    )
    result = select_chord(problem)
    # Judge the selection against the full true distribution.
    return chord_cost(SPACE, SOURCE, TRUTH, CORES, result.auxiliary)


def test_bench_exact_tracker(benchmark):
    cost = benchmark.pedantic(
        cost_with_tracker, args=(ExactFrequencyTable(),), rounds=1, iterations=1
    )
    assert cost > 0


@pytest.mark.parametrize("capacity", [256, 64, 16])
def test_bench_space_saving(benchmark, capacity):
    cost = benchmark.pedantic(
        cost_with_tracker, args=(SpaceSavingSketch(capacity),), rounds=1, iterations=1
    )
    assert cost > 0


def test_quality_degrades_gracefully():
    """The sketch's selection cost approaches the exact tracker's as
    capacity grows, and even a small sketch stays within 25% overhead."""
    exact = cost_with_tracker(ExactFrequencyTable())
    costs = {cap: cost_with_tracker(SpaceSavingSketch(cap)) for cap in (16, 64, 256)}
    print(f"\n  exact: {exact:.0f}; sketch: {costs}")
    assert costs[256] <= costs[16] * 1.001  # bigger sketches never much worse
    assert costs[256] == pytest.approx(exact, rel=0.02)
    assert costs[16] <= exact * 1.25
