"""Shared helpers for the benchmark harness.

Every figure bench runs its experiment exactly once (``pedantic`` with one
round): these are end-to-end simulations whose value is the printed series
and the shape assertions, not statistical timing of a hot loop. The micro
and ablation benches use normal benchmark rounds.
"""

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))  # for tests.helpers

from repro.experiments.figures import FigurePreset


@pytest.fixture(scope="session")
def quick_preset() -> FigurePreset:
    """The quick preset: every paper trend at seconds scale."""
    return FigurePreset.quick(seed=0)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(0)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
