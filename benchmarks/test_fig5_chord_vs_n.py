"""Figure 5 — Chord: % hop reduction vs number of nodes, stable and churn.

Paper series: k = log n, alpha = 1.2, five per-node popularity rankings;
one curve for a stable system, one under heavy churn (exponential 900 s
sessions, 4 queries/s, stabilization every 25 s, recomputation every
62.5 s). Shape targets: the stable curve reaches large reductions (the
paper peaks at ~57%), churn shrinks but does not erase the win (~25% in
the paper), and stable dominates churn at every n.
"""

from conftest import run_once

from repro.experiments.figures import figure5
from repro.experiments.report import render_detail, render_table


def test_figure5_chord_vs_n(benchmark, quick_preset):
    result = run_once(benchmark, figure5, quick_preset)
    print()
    print(render_table(result))
    print(render_detail(result))

    stable, churn = result.series
    assert stable.label == "stable"
    # Both modes beat the oblivious baseline everywhere.
    for series in result.series:
        for value in series.improvements():
            assert value > 3.0
    # Stable reaches a substantial reduction at the largest n.
    assert stable.improvements()[-1] > 20.0
    # Churn costs improvement relative to stable at every n.
    for s_value, c_value in zip(stable.improvements(), churn.improvements()):
        assert c_value < s_value
