"""Trade-off bench — lookup benefit vs maintenance traffic (paper §I).

The paper's design argument: k ≈ log n auxiliary pointers roughly double
the routing table (and thus the ping traffic) in exchange for a large cut
in average hops. This bench prints the measured curve so the trade-off is
a number, not an assertion.
"""

from conftest import run_once

from repro.sim.maintenance import cost_benefit_curve


def test_bench_cost_benefit_curve(benchmark):
    curve = run_once(
        benchmark,
        cost_benefit_curve,
        overlay="chord",
        n=96,
        bits=20,
        queries=2000,
        stabilize_interval=25.0,
        seed=11,
    )
    print()
    print("   k | improvement | mean table | pings/s (whole network)")
    for point in curve:
        print(
            f"  {point.k:2d} | {point.improvement_pct:10.1f}% | "
            f"{point.mean_table_size:10.1f} | {point.pings_per_second:8.1f}"
        )
    # Benefit arrives immediately; traffic grows linearly with budget.
    assert curve[0].improvement_pct == 0.0
    assert curve[1].improvement_pct > 10.0
    assert curve[-1].pings_per_second > curve[0].pings_per_second
    # The paper's sweet spot: k = log n buys most of the benefit for a
    # fraction of the 3 log n traffic.
    assert curve[1].improvement_pct > 0.5 * curve[-1].improvement_pct
