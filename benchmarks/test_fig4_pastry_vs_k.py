"""Figure 4 — Pastry: % hop reduction vs number of auxiliary pointers.

Paper series: k in {1, 2, 3} x log n at fixed n, locality-aware
(FreePastry-style) routing. Shape target: the improvement *increases*
with k — the paper's artifact of proximity-based next-hop choice, where
extra frequency-aware pointers keep cutting hops but extra random ones
mostly just improve per-hop latency.
"""

from conftest import run_once

from repro.experiments.figures import figure4
from repro.experiments.report import render_detail, render_table


def test_figure4_pastry_vs_k(benchmark, quick_preset):
    result = run_once(benchmark, figure4, quick_preset)
    print()
    print(render_table(result))
    print(render_detail(result))

    steep, mild = result.series
    for series in result.series:
        for value in series.improvements():
            assert value > 5.0
    # The increasing-with-k trend (allow flat within half a point of noise).
    assert steep.improvements()[-1] > steep.improvements()[0] - 0.5
    assert mild.improvements()[-1] > mild.improvements()[0] - 0.5
    # alpha=1.2 dominates alpha=0.91 everywhere.
    for high, low in zip(steep.improvements(), mild.improvements()):
        assert high > low
