"""Ablation — incremental maintenance vs full recomputation
(DESIGN.md §6.6, paper Section IV-C).

The incremental algorithm touches only the O(b) trie vertices on the
changed peer's path (O(b k) per update); a full rebuild is O(n k). Both
must agree on the resulting cost.
"""

import random

import pytest

from repro.core.pastry_selection import IncrementalPastrySelector, select_pastry_greedy
from repro.util.ids import IdSpace

N_PEERS = 1200
K = 12


def build_selector(seed=7):
    space = IdSpace(32)
    rng = random.Random(seed)
    peers = rng.sample(range(space.size), N_PEERS + 1)
    selector = IncrementalPastrySelector(space, source=peers[0], core_neighbors=[], k=K)
    for peer in peers[1:]:
        selector.observe(peer, float(rng.randint(1, 100)))
    return selector, peers[1:]


@pytest.fixture(scope="module")
def setup():
    return build_selector()


def test_bench_incremental_update(benchmark, setup):
    selector, peers = setup
    rng = random.Random(8)

    def one_update():
        selector.observe(peers[rng.randrange(len(peers))], 3.0)

    benchmark(one_update)


def test_bench_full_recompute(benchmark, setup):
    selector, __ = setup
    problem = selector.problem()
    benchmark.pedantic(select_pastry_greedy, args=(problem,), rounds=3, iterations=1)


def test_incremental_stays_optimal(setup):
    selector, peers = setup
    rng = random.Random(9)
    for __ in range(25):
        selector.observe(peers[rng.randrange(len(peers))], float(rng.randint(1, 50)))
    incremental = selector.selection()
    fresh = select_pastry_greedy(selector.problem())
    assert incremental.cost == pytest.approx(fresh.cost)
