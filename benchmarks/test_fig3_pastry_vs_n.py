"""Figure 3 — Pastry: % hop reduction vs number of nodes.

Paper series: alpha in {1.2, 0.91}, k = log n, identical rankings, stable
system. Shape targets: every point strongly positive, improvement grows
with n, and the alpha=1.2 curve dominates alpha=0.91 (the paper reaches
~49% and ~29% respectively at n = 2048).
"""

from conftest import run_once

from repro.experiments.figures import figure3
from repro.experiments.report import render_detail, render_table


def test_figure3_pastry_vs_n(benchmark, quick_preset):
    result = run_once(benchmark, figure3, quick_preset)
    print()
    print(render_table(result))
    print(render_detail(result))

    steep, mild = result.series
    assert steep.label == "alpha=1.2"
    # Every cell wins against the frequency-oblivious baseline.
    for series in result.series:
        for value in series.improvements():
            assert value > 5.0, f"{series.label} improvement {value} too small"
    # Improvement grows with n.
    assert steep.improvements()[-1] > steep.improvements()[0]
    # Higher skew -> bigger wins, at every n (paper's dominant curve).
    for high, low in zip(steep.improvements(), mild.improvements()):
        assert high > low
