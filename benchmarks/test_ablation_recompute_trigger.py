"""Ablation — periodic vs drift-triggered recomputation (DESIGN.md §6,
paper Section III's open scheduling question).

Under gradually drifting popularity plus a flash crowd, the adaptive
trigger should match periodic recomputation's lookup quality while
spending materially fewer selection runs.
"""

from conftest import run_once

from repro.extensions.adaptive import compare_maintenance_strategies


def run_comparison():
    return compare_maintenance_strategies(
        n=48,
        bits=18,
        duration=500.0,
        epoch=12.5,
        queries_per_epoch=50,
        swap_interval=25.0,
        swap_count=5,
        seed=99,
        flash_crowd_windows=[(200.0, 150.0)],
    )


def test_bench_recompute_strategies(benchmark):
    reports = run_once(benchmark, run_comparison)
    print()
    for report in reports.values():
        print(f"  {report.summary()}")
    periodic = reports["periodic"]
    adaptive = reports["adaptive"]
    static = reports["static"]
    # Both refresh policies beat never-refreshing under drift.
    assert periodic.mean_hops < static.mean_hops
    assert adaptive.mean_hops < static.mean_hops
    # Adaptive achieves comparable quality with a fraction of the work.
    assert adaptive.mean_hops <= periodic.mean_hops * 1.10
    assert adaptive.recomputations <= periodic.recomputations * 0.8
