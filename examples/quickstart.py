"""Quickstart: frequency-aware auxiliary neighbors in five minutes.

Builds a Chord ring and a Pastry network, gives every node a zipfian
destination distribution, and compares the paper's optimal auxiliary
selection against the frequency-oblivious baseline on the same query
stream — the core experiment of Deb et al. (ICDE 2008) at demo scale.

Run:  python examples/quickstart.py
"""

from repro.core import SelectionProblem, select_chord, select_pastry
from repro.sim.runner import ExperimentConfig, run_stable
from repro.util.ids import IdSpace


def one_node_selection() -> None:
    """The core API: one node choosing its k best auxiliary pointers."""
    space = IdSpace(16)
    problem = SelectionProblem(
        space=space,
        source=0x1234,
        frequencies={0xF000: 120.0, 0x8888: 45.0, 0x00FF: 30.0, 0x4321: 2.0},
        core_neighbors=frozenset({0x1300, 0x1000}),
        k=2,
    )
    for overlay, solver in (("chord", select_chord), ("pastry", select_pastry)):
        result = solver(problem)
        chosen = ", ".join(hex(peer) for peer in sorted(result.auxiliary))
        print(f"  {overlay}: picked [{chosen}] at expected cost {result.cost:.1f}")


def full_comparison() -> None:
    """The paper's experiment: optimal vs frequency-oblivious pointers."""
    for overlay in ("chord", "pastry"):
        config = ExperimentConfig(
            overlay=overlay,
            n=128,
            bits=20,
            alpha=1.2,
            queries=3000,
            seed=42,
        )
        result = run_stable(config)
        print(f"  {result.summary()}")


def main() -> None:
    print("1. Single-node auxiliary selection (Sections IV & V):")
    one_node_selection()
    print()
    print("2. Network-wide comparison vs the frequency-oblivious baseline:")
    full_comparison()
    print()
    print("Next: python -m repro figure 5   (regenerates a full paper figure)")


if __name__ == "__main__":
    main()
