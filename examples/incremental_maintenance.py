"""Incremental selection maintenance (paper Section IV-C).

Popularities drift, peers come and go — and recomputing the optimal
auxiliary set from scratch on every change costs O(n k). The paper's
incremental algorithm refreshes only the O(b) trie vertices on the path
to the changed peer, i.e. O(b k) per update, while staying *exactly*
optimal.

This script simulates a flash-crowd scenario on one Pastry node: a
previously-cold peer suddenly becomes the hottest destination, peers
churn, and the incremental selector tracks the optimum the whole way.
It also measures the speedup against full recomputation.

Run:  python examples/incremental_maintenance.py
"""

import random
import time

from repro.core.pastry_selection import IncrementalPastrySelector, select_pastry_greedy
from repro.util.ids import IdSpace


def flash_crowd_demo() -> None:
    space = IdSpace(16)
    selector = IncrementalPastrySelector(space, source=0x0001, core_neighbors=[0x8000], k=3)
    rng = random.Random(5)
    for peer in rng.sample(range(1 << 16), 40):
        if peer != 0x0001:
            selector.observe(peer, float(rng.randint(1, 30)))
    cold_peer = 0xBEEF
    selector.observe(cold_peer, 1.0)
    before = sorted(selector.selection().auxiliary)
    print(f"  before the flash crowd: aux = {[hex(p) for p in before]}")

    # 500 queries hit the cold peer in a burst.
    selector.observe(cold_peer, 500.0)
    after = sorted(selector.selection().auxiliary)
    print(f"  after  the flash crowd: aux = {[hex(p) for p in after]}")
    assert cold_peer in after, "flash-crowd peer must now hold a pointer"

    # The crowd leaves (peer churns out of the overlay entirely).
    selector.remove_peer(cold_peer)
    gone = sorted(selector.selection().auxiliary)
    print(f"  after the peer departs: aux = {[hex(p) for p in gone]}")
    assert cold_peer not in gone


def speedup_measurement() -> None:
    space = IdSpace(32)
    rng = random.Random(9)
    peers = rng.sample(range(1 << 32), 2000)
    selector = IncrementalPastrySelector(space, source=peers[0], core_neighbors=[], k=16)
    for peer in peers[1:]:
        selector.observe(peer, float(rng.randint(1, 100)))

    updates = peers[1:201]
    started = time.perf_counter()
    for peer in updates:
        selector.observe(peer, 5.0)
    incremental_time = time.perf_counter() - started

    problem = selector.problem()
    started = time.perf_counter()
    for __ in range(5):  # full recomputation is slow; 5 runs suffice
        select_pastry_greedy(problem)
    full_time = (time.perf_counter() - started) / 5 * len(updates)

    print(f"  200 popularity updates, n = {len(peers) - 1}, k = 16:")
    print(f"    incremental maintenance: {incremental_time * 1000:8.1f} ms total")
    print(f"    full recomputation each: {full_time * 1000:8.1f} ms total (extrapolated)")
    print(f"    speedup: {full_time / incremental_time:.0f}x")


def main() -> None:
    print("1. Flash crowd tracked incrementally (always exactly optimal):")
    flash_crowd_demo()
    print()
    print("2. O(b k) updates vs O(n k) recomputation:")
    speedup_measurement()


if __name__ == "__main__":
    main()
