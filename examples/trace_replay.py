"""Record a query trace once, replay it against competing configurations.

A/B-testing pointer-selection policies is only meaningful on *identical*
workloads. This example records a zipfian query trace to a JSONL file,
then replays the very same queries against three configurations of the
same ring — no auxiliary pointers, the frequency-oblivious baseline, and
the paper's optimal selection — and reports per-configuration hop
percentiles, not just means.

Run:  python examples/trace_replay.py
"""

import random
import tempfile
from pathlib import Path

from repro.chord.ring import ChordRing, oblivious_policy, optimal_policy
from repro.sim.metrics import HopStatistics
from repro.util.ids import IdSpace
from repro.workload.items import ItemCatalog, PopularityModel
from repro.workload.queries import QueryGenerator
from repro.workload.trace import QueryTrace

N = 96
BITS = 20
SEED = 23


def build_ring():
    return ChordRing.build(N, space=IdSpace(BITS), seed=SEED)


def record_trace(path: Path) -> QueryTrace:
    ring = build_ring()
    catalog = ItemCatalog(ring.space, 4 * N, seed=SEED)
    popularity = PopularityModel(catalog, alpha=1.2, num_rankings=1, seed=SEED)
    generator = QueryGenerator(popularity, popularity.assign_rankings(ring.alive_ids()), random.Random(SEED))
    trace = QueryTrace(metadata={"alpha": 1.2, "n": N, "seed": SEED})
    alive = ring.alive_ids()
    for query in generator.stream(4000, lambda: alive):
        trace.record(len(trace) / 4.0, query.source, query.item)
    trace.save(path)
    return trace


def replay(trace: QueryTrace, policy_name: str) -> HopStatistics:
    ring = build_ring()
    if policy_name != "none":
        catalog = ItemCatalog(ring.space, 4 * N, seed=SEED)
        popularity = PopularityModel(catalog, alpha=1.2, num_rankings=1, seed=SEED)
        destinations = popularity.node_frequencies(0, ring.responsible)
        for node_id in ring.alive_ids():
            weights = dict(destinations)
            weights.pop(node_id, None)
            ring.seed_frequencies(node_id, weights)
        policy = optimal_policy if policy_name == "optimal" else oblivious_policy
        ring.recompute_all_auxiliary(9, policy, random.Random(SEED), frequency_limit=256)
    stats = HopStatistics(keep_samples=True)
    for result in trace.replay_onto(ring):
        stats.record(result)
    return stats


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "workload.jsonl"
        trace = record_trace(path)
        print(f"Recorded {len(trace)} queries to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB JSONL)")
        loaded = QueryTrace.load(path)
        print(f"Reloaded: {len(loaded)} queries, metadata {loaded.metadata}")
        print()
        print("  policy    | mean hops |  p50 |  p95 |  p99")
        for policy_name in ("none", "oblivious", "optimal"):
            stats = replay(loaded, policy_name)
            print(
                f"  {policy_name:9s} | {stats.mean_hops:9.3f} | "
                f"{stats.percentile(0.5):4.0f} | {stats.percentile(0.95):4.0f} | "
                f"{stats.percentile(0.99):4.0f}"
            )
    print()
    print(
        "Same queries, three pointer policies: the optimal scheme shifts\n"
        "the whole latency distribution left — tails included — because a\n"
        "pointer helps every query routed through it, not just the hottest."
    )


if __name__ == "__main__":
    main()
