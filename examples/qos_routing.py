"""QoS-aware auxiliary selection (paper Sections IV-D and V-C).

Real-time services (the paper names VoIP, IPTV, video on demand) need
*guaranteed* worst-case lookup latency for a small set of destinations,
while everything else should still be fast on average. The paper models
this as per-destination delay bounds added to the selection problem.

The script sets up one node with a skewed workload plus two cold but
latency-critical destinations, and shows how the optimal pointer set
changes as the bounds tighten — including the infeasible case.

Run:  python examples/qos_routing.py
"""

from repro.core.cost import chord_peer_distance, pastry_peer_distance
from repro.core.types import SelectionProblem
from repro.core.chord_selection import select_chord_dp
from repro.core.pastry_selection import select_pastry_dp
from repro.util.errors import InfeasibleConstraintError
from repro.util.ids import IdSpace

SPACE = IdSpace(16)
SOURCE = 0x0100
CORE = frozenset({0x0200, 0x1000})
FREQUENCIES = {
    0x8001: 80.0,   # hot media server
    0x8002: 60.0,   # hot media server
    0xA000: 40.0,
    0x4000: 25.0,
    0xF0F0: 0.5,    # cold VoIP gateway — latency critical
    0x0FF0: 0.3,    # cold conference bridge — latency critical
}


def solve(overlay: str, bounds: dict[int, int]) -> None:
    problem = SelectionProblem(
        space=SPACE,
        source=SOURCE,
        frequencies=FREQUENCIES,
        core_neighbors=CORE,
        k=2,
        delay_bounds=bounds,
    )
    solver = select_chord_dp if overlay == "chord" else select_pastry_dp
    try:
        result = solver(problem)
    except InfeasibleConstraintError as error:
        print(f"    {overlay}: INFEASIBLE ({error})")
        return
    pointers = list(problem.core_neighbors) + sorted(result.auxiliary)
    report = []
    for peer in sorted(bounds):
        if overlay == "chord":
            distance = chord_peer_distance(SPACE, SOURCE, peer, pointers)
        else:
            distance = pastry_peer_distance(SPACE, peer, pointers)
        report.append(f"0x{peer:04x} in {1 + distance} hops (bound {bounds[peer]})")
    chosen = ", ".join(f"0x{peer:04x}" for peer in sorted(result.auxiliary))
    print(f"    {overlay}: aux = [{chosen}], cost {result.cost:.1f}; " + "; ".join(report))


def main() -> None:
    print("QoS-aware pointer selection, k = 2, two latency-critical peers")
    print()
    print("1. No bounds — the hot servers win both pointers:")
    for overlay in ("chord", "pastry"):
        solve(overlay, {})
    print()
    print("2. Bound the VoIP gateway (0xF0F0) to 2 hops — one pointer is")
    print("   diverted to satisfy the guarantee, at a small average cost:")
    for overlay in ("chord", "pastry"):
        solve(overlay, {0xF0F0: 2})
    print()
    print("3. Bound both cold destinations to 2 hops — both pointers spent")
    print("   on guarantees; the average suffers but the bounds hold:")
    for overlay in ("chord", "pastry"):
        solve(overlay, {0xF0F0: 2, 0x0FF0: 2})
    print()
    print("4. Three tight bounds with only k = 2 pointers — infeasible, and")
    print("   the library says so rather than silently violating a bound:")
    for overlay in ("chord", "pastry"):
        solve(overlay, {0xF0F0: 2, 0x0FF0: 2, 0x4000: 1})


if __name__ == "__main__":
    main()
