"""P2P DNS with mobile IP: the paper's motivating application (Section I).

A DHT-based name service stores (domain -> IP) records. With mobile
clients the *records* change frequently while the *servers* (peers) are
stable — exactly the regime where item caching serves stale addresses but
peer-pointer caching stays both fast and fresh.

The script hashes realistic domain names into a Chord ring, drives a
zipfian query mix, updates the IPs of popular mobile domains at a
configurable rate, and compares three designs:

* plain DHT lookups,
* per-resolver item caching (classic DNS-style record caching),
* the paper's auxiliary peer pointers.

Run:  python examples/p2p_dns.py
"""

from repro.extensions.item_cache import simulate_item_churn
from repro.util.ids import IdSpace


def show_name_mapping() -> None:
    """How domain names land on peers in the id space."""
    space = IdSpace(24)
    domains = [
        "www.example.com",
        "mobile.device-17.example.net",
        "cdn.video.example.org",
        "mail.example.com",
    ]
    print("  domain -> key (24-bit id space)")
    for domain in domains:
        print(f"    {domain:32s} -> 0x{space.hash_name(domain):06x}")


def compare_designs() -> None:
    """Hops and staleness under increasing record-update rates."""
    print("  update rate | plain DHT | item cache (stale%) | peer pointers")
    for update_probability in (0.0, 0.05, 0.2, 0.5):
        reports = simulate_item_churn(
            n=64,
            bits=20,
            alpha=1.2,
            queries=3000,
            update_probability=update_probability,
            cache_capacity=32,
            seed=7,
        )
        plain = reports["none"]
        cache = reports["item-cache"]
        pointer = reports["pointer"]
        print(
            f"  {update_probability:11.2f} | {plain.mean_hops:9.3f} | "
            f"{cache.mean_hops:10.3f} ({100 * cache.stale_answer_rate:4.1f}%) | "
            f"{pointer.mean_hops:8.3f} ({100 * pointer.stale_answer_rate:.0f}% stale)"
        )


def main() -> None:
    print("P2P DNS for mobile environments (paper Section I)")
    print()
    print("1. Domain names hash onto the ring:")
    show_name_mapping()
    print()
    print("2. Record churn punishes item caching, not pointer caching:")
    compare_designs()
    print()
    print(
        "Item caching answers faster but serves stale IPs as mobility grows;\n"
        "auxiliary peer pointers cut hops with zero staleness — the paper's\n"
        "argument for peer caching in name services."
    )


if __name__ == "__main__":
    main()
