"""Adaptive recomputation under drifting popularity (paper Section III).

"The algorithm can be invoked either periodically or based on some
criteria that determines that the system has undergone a significant
change." This example makes that choice concrete: popularity drifts
continuously, a flash crowd hits mid-run, and three maintenance strategies
compete — never recompute, recompute on the paper's 62.5 s schedule, or
recompute only when a node's observed distribution has drifted past an
L1 threshold.

Run:  python examples/adaptive_maintenance.py      (about 20 seconds)
"""

from repro.extensions.adaptive import compare_maintenance_strategies


def main() -> None:
    print("Chord, n = 48, drifting zipf(1.2) popularity, flash crowd at t = 200 s")
    print()
    reports = compare_maintenance_strategies(
        n=48,
        bits=18,
        duration=500.0,
        epoch=12.5,
        queries_per_epoch=50,
        swap_interval=25.0,
        swap_count=5,
        drift_threshold=0.08,
        seed=17,
        flash_crowd_windows=[(200.0, 150.0)],
    )
    print("  strategy  | mean hops | selections spent")
    for name in ("static", "periodic", "adaptive"):
        report = reports[name]
        print(f"  {name:9s} | {report.mean_hops:9.3f} | {report.recomputations:8d}")
    periodic = reports["periodic"]
    adaptive = reports["adaptive"]
    saved = 100 * (1 - adaptive.recomputations / periodic.recomputations)
    print()
    print(
        f"The drift trigger matches periodic quality within "
        f"{abs(adaptive.mean_hops - periodic.mean_hops):.2f} hops while "
        f"spending {saved:.0f}% fewer selection runs — recomputation effort\n"
        f"concentrates exactly where the workload actually changed."
    )


if __name__ == "__main__":
    main()
