"""Churn sensitivity study (paper Section VI-C).

The paper reports that auxiliary pointers keep helping under heavy churn
(2 joins+leaves per second against 4 queries per second), though less than
in a stable system. This script sweeps the mean node lifetime from
"practically stable" down to "brutal" and reports the improvement, the
failure rates and the timeout traffic at each level — the full
discrete-event machinery: exponential sessions, staggered stabilization
every 25 s, auxiliary recomputation every 62.5 s, online frequency
learning, crash-induced state loss.

Run:  python examples/churn_study.py        (about a minute)
"""

from repro.sim.runner import ChurnConfig, run_churn


def main() -> None:
    print("Chord, n = 64, k = log n, zipf(1.2); varying mean node lifetime")
    print()
    print("  lifetime (s) | improvement | fail% ours | fail% obl | timeouts/lookup")
    for lifetime in (10_000.0, 900.0, 300.0, 120.0):
        config = ChurnConfig(
            overlay="chord",
            n=64,
            bits=20,
            alpha=1.2,
            seed=11,
            duration=600.0,
            warmup=150.0,
            mean_uptime=lifetime,
            mean_downtime=lifetime,
        )
        result = run_churn(config)
        ours = result.optimized
        base = result.baseline
        timeouts = ours.total_timeouts / max(ours.lookups, 1)
        print(
            f"  {lifetime:12.0f} | {result.improvement:10.1f}% | "
            f"{100 * ours.failure_rate:9.2f}% | {100 * base.failure_rate:8.2f}% | "
            f"{timeouts:14.3f}"
        )
    print()
    print(
        "Shorter lifetimes mean staler tables: failures and timeouts rise\n"
        "and the improvement shrinks, matching the paper's high-churn\n"
        "observations (Figures 5 and 6). Once lifetimes approach the\n"
        "maintenance intervals themselves (~2 minutes vs the 62.5 s\n"
        "recomputation period), pointers go stale faster than they can be\n"
        "refreshed and the benefit disappears entirely."
    )


if __name__ == "__main__":
    main()
