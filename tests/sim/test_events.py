"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.events import EventScheduler
from repro.util.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(3.0, lambda: fired.append("c"))
        scheduler.schedule(1.0, lambda: fired.append("a"))
        scheduler.schedule(2.0, lambda: fired.append("b"))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_submission_order(self):
        scheduler = EventScheduler()
        fired = []
        for name in "abc":
            scheduler.schedule(1.0, lambda name=name: fired.append(name))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(2.5, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [2.5]
        assert scheduler.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.step()
        event = scheduler.schedule_at(5.0, lambda: None)
        assert event.time == 5.0


class TestRunUntil:
    def test_stops_at_horizon(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(10.0, lambda: fired.append(10))
        scheduler.run_until(5.0)
        assert fired == [1]
        assert scheduler.now == 5.0
        assert len(scheduler) == 1  # the 10.0 event still queued

    def test_self_rescheduling_event(self):
        scheduler = EventScheduler()
        ticks = []

        def tick():
            ticks.append(scheduler.now)
            scheduler.schedule(1.0, tick)

        scheduler.schedule(1.0, tick)
        scheduler.run_until(5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_event_scheduled_during_run_fires_if_due(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: scheduler.schedule(0.5, lambda: fired.append("child")))
        scheduler.run_until(2.0)
        assert fired == ["child"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        scheduler.run()
        assert fired == []
        assert scheduler.events_fired == 0

    def test_peek_skips_cancelled(self):
        scheduler = EventScheduler()
        first = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        first.cancel()
        assert scheduler.peek_time() == 2.0

    def test_step_returns_false_when_drained(self):
        scheduler = EventScheduler()
        assert scheduler.step() is False
        scheduler.schedule(1.0, lambda: None)
        assert scheduler.step() is True
        assert scheduler.step() is False
