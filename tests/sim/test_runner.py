"""Integration tests: the stable and churn experiment runners end-to-end.

These run miniature versions of the paper's experiments and assert the
*direction* of every headline result: the frequency-aware scheme beats the
frequency-oblivious baseline in both overlays, stable and churning.
"""

import pytest

from repro.sim.metrics import percent_reduction
from repro.sim.runner import ChurnConfig, ExperimentConfig, run_churn, run_stable
from repro.util.errors import ConfigurationError


class TestConfig:
    def test_effective_k_defaults_to_log_n(self):
        assert ExperimentConfig(overlay="chord", n=1024).effective_k == 10
        assert ExperimentConfig(overlay="chord", n=1024, k=30).effective_k == 30

    def test_effective_rankings_per_overlay(self):
        assert ExperimentConfig(overlay="chord").effective_rankings == 5
        assert ExperimentConfig(overlay="pastry").effective_rankings == 1
        assert ExperimentConfig(overlay="chord", num_rankings=2).effective_rankings == 2

    def test_effective_items_default(self):
        assert ExperimentConfig(overlay="chord", n=100).effective_items == 400

    def test_rejects_unknown_overlay(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="tapestry")

    def test_accepts_kademlia(self):
        assert ExperimentConfig(overlay="kademlia").effective_rankings == 1

    def test_rejects_non_positive_bits(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="chord", bits=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="chord", bits=-4)

    def test_rejects_population_exceeding_id_space(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="chord", n=300, bits=8)
        # Exactly filling the space is legal.
        assert ExperimentConfig(overlay="chord", n=256, bits=8).n == 256

    def test_rejects_non_positive_queries(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="chord", queries=0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="chord", queries=-5)

    def test_rejects_non_positive_alpha(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="chord", alpha=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="pastry", alpha=-1.2)

    def test_rejects_k_at_or_above_n(self):
        # k >= n used to slip through and silently degenerate selection
        # (every candidate fits the budget); it is always a typo.
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="chord", n=16, bits=8, k=16)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="pastry", n=16, bits=8, k=40)
        # The largest meaningful budget, n - 1, stays legal.
        assert ExperimentConfig(overlay="chord", n=16, bits=8, k=15).effective_k == 15

    def test_rejects_negative_k(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="chord", k=-1)
        # k = 0 (no auxiliary pointers) and k = None (log2 n) stay legal.
        ExperimentConfig(overlay="chord", k=0)
        ExperimentConfig(overlay="chord", k=None)

    def test_churn_rejects_long_warmup(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(overlay="chord", duration=100.0, warmup=200.0)

    def test_budget_mode_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="chord", budget_mode="clever")
        with pytest.raises(ConfigurationError):
            ExperimentConfig(overlay="chord", budget_total=-1)
        with pytest.raises(ConfigurationError):
            ChurnConfig(overlay="chord", rebalance_interval=0.0)

    def test_budget_defaults_and_labels(self):
        legacy = ExperimentConfig(overlay="chord", n=64)
        assert not legacy.budget_plan_active
        assert legacy.budget_label == ""
        assert legacy.effective_budget == 64 * legacy.effective_k

    def test_budget_total_alone_activates_the_plan(self):
        config = ExperimentConfig(overlay="chord", n=64, budget_total=100)
        assert config.budget_plan_active
        assert config.effective_budget == 100
        assert config.budget_label == " budget=uniform:100"
        allocated = ExperimentConfig(overlay="chord", n=64, budget_mode="allocated")
        assert allocated.budget_plan_active
        assert allocated.effective_budget == 64 * allocated.effective_k
        assert allocated.budget_label.startswith(" budget=allocated:")


class TestBudgetedRuns:
    def test_uniform_plan_at_full_budget_matches_legacy(self, stable_config):
        # The explicit uniform plan at K = n * k installs the same quotas
        # through the same recompute walk, so the numbers are identical.
        legacy = run_stable(stable_config("chord", n=48, bits=16, queries=800))
        k = ExperimentConfig(overlay="chord", n=48).effective_k
        planned = run_stable(
            stable_config(
                "chord",
                n=48,
                bits=16,
                queries=800,
                budget_mode="uniform",
                budget_total=48 * k,
            )
        )
        assert planned.optimized.mean_hops == legacy.optimized.mean_hops
        assert planned.baseline.mean_hops == legacy.baseline.mean_hops

    def test_allocated_stable_run_wins_and_labels(self, stable_config):
        result = run_stable(
            stable_config(
                "chord",
                n=48,
                bits=16,
                queries=800,
                num_rankings=4,
                budget_mode="allocated",
                budget_total=120,
            )
        )
        assert "budget=allocated:120" in result.label
        assert result.improvement > 0.0

    def test_allocated_churn_run_completes(self):
        result = run_churn(
            ChurnConfig(
                overlay="chord",
                n=32,
                bits=16,
                queries=400,
                seed=2,
                duration=250.0,
                warmup=50.0,
                budget_mode="allocated",
                rebalance_interval=60.0,
            )
        )
        assert "budget=allocated:" in result.label
        assert result.optimized.mean_hops > 0.0


class TestStableRunner:
    @pytest.mark.parametrize("overlay", ["chord", "pastry"])
    def test_optimal_beats_oblivious(self, overlay, stable_config):
        result = run_stable(stable_config(overlay))
        assert result.optimized.failures == 0
        assert result.baseline.failures == 0
        assert result.improvement > 5.0

    def test_reproducible(self, stable_config):
        first = run_stable(stable_config("chord"))
        second = run_stable(stable_config("chord"))
        assert first.optimized.mean_hops == second.optimized.mean_hops
        assert first.baseline.mean_hops == second.baseline.mean_hops

    def test_seed_changes_outcome_slightly(self, stable_config):
        a = run_stable(stable_config("chord", seed=2))
        b = run_stable(stable_config("chord", seed=3))
        # Different universes: identical values would suggest seed plumbing
        # is broken.
        assert a.optimized.mean_hops != b.optimized.mean_hops

    def test_more_pointers_help_more(self, stable_config):
        low = run_stable(stable_config("chord", k=2))
        high = run_stable(stable_config("chord", k=12))
        assert high.optimized.mean_hops <= low.optimized.mean_hops

    def test_higher_alpha_bigger_improvement(self, stable_config):
        mild = run_stable(stable_config("chord", alpha=0.91, seed=5))
        steep = run_stable(stable_config("chord", alpha=1.4, seed=5))
        assert steep.improvement > mild.improvement

    def test_pastry_greedy_mode_runs(self, stable_config):
        result = run_stable(stable_config("pastry", pastry_mode="greedy"))
        assert result.improvement > 0.0

    def test_workload_parameter_threads_through(self, stable_config):
        static = run_stable(stable_config("chord", queries=800))
        moving = run_stable(
            stable_config("chord", queries=800, workload="drifting-zipf:20")
        )
        assert "workload=" not in static.label
        assert "workload=drifting-zipf:20" in moving.label
        assert moving.baseline.mean_hops != static.baseline.mean_hops


class TestChurnRunner:
    def test_chord_churn_end_to_end(self):
        config = ChurnConfig(
            overlay="chord",
            n=48,
            bits=18,
            seed=4,
            duration=400.0,
            warmup=100.0,
        )
        result = run_churn(config)
        # Lookups happened during and after churn events.
        assert result.optimized.lookups > 500
        assert result.baseline.lookups > 500
        # The frequency-aware scheme still wins under churn.
        assert result.improvement > 0.0
        # Failure rates stay small thanks to stabilization + eviction.
        assert result.optimized.failure_rate < 0.1
        assert result.baseline.failure_rate < 0.1

    def test_pastry_churn_end_to_end(self):
        config = ChurnConfig(
            overlay="pastry",
            n=48,
            bits=18,
            seed=5,
            duration=300.0,
            warmup=75.0,
        )
        result = run_churn(config)
        assert result.optimized.lookups > 400
        assert result.improvement > 0.0
        assert result.optimized.failure_rate < 0.1

    def test_churn_reduces_benefit_versus_stable(self, stable_config):
        """Figure 5's qualitative claim: high churn shrinks (but does not
        erase) the improvement."""
        stable = run_stable(stable_config("chord", seed=6, queries=2500))
        churn = run_churn(
            ChurnConfig(
                overlay="chord",
                n=64,
                bits=18,
                seed=6,
                duration=500.0,
                warmup=100.0,
                mean_uptime=200.0,  # much harsher than the paper's 900 s
                mean_downtime=200.0,
            )
        )
        assert churn.improvement < stable.improvement


class TestLearnedFrequencies:
    def test_learned_mode_runs_and_wins(self, stable_config):
        config = stable_config("chord", learned_frequencies=True, warmup_queries=1500, seed=8)
        result = run_stable(config)
        assert result.improvement > 0.0

    def test_default_warmup_scales_with_n(self, stable_config):
        config = stable_config("chord", learned_frequencies=True)
        assert config.effective_warmup_queries == 40 * config.n
        explicit = stable_config("chord", learned_frequencies=True, warmup_queries=123)
        assert explicit.effective_warmup_queries == 123

    def test_learned_knows_less_than_converged(self, stable_config):
        """Finite observation gives the optimal scheme less to work with,
        so its hop count cannot beat the converged-knowledge run."""
        converged = run_stable(stable_config("chord", seed=9))
        learned = run_stable(
            stable_config("chord", seed=9, learned_frequencies=True, warmup_queries=600)
        )
        assert learned.optimized.mean_hops >= converged.optimized.mean_hops - 0.05


class TestFaultInjection:
    def test_stable_faults_deterministic_and_still_winning(self, stable_config):
        from repro.faults import FaultSchedule

        config = stable_config(
            "chord",
            seed=12,
            faults=FaultSchedule(loss_rate=0.05, crash_burst_size=4, stale_rate=0.01),
        )
        first = run_stable(config)
        second = run_stable(config)
        assert first.optimized.per_lookup == second.optimized.per_lookup
        assert first.baseline.per_lookup == second.baseline.per_lookup
        assert first.improvement > 0.0
        assert first.optimized.timeout_rate > 0.0
        assert "faults" in first.label

    def test_stable_fault_percentiles_available(self, stable_config):
        from repro.faults import FaultSchedule

        result = run_stable(stable_config("pastry", seed=4, faults=FaultSchedule(loss_rate=0.05)))
        percentiles = result.optimized.latency_percentiles()
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]

    def test_inactive_schedule_matches_no_schedule_bit_for_bit(self, stable_config):
        """An attached-but-empty FaultSchedule must take the shared-bench
        fast path and reproduce the fault-free numbers exactly."""
        from repro.faults import FaultSchedule

        plain = run_stable(stable_config("chord", seed=5))
        empty = run_stable(stable_config("chord", seed=5, faults=FaultSchedule()))
        assert plain.optimized.mean_hops == empty.optimized.mean_hops
        assert plain.baseline.mean_hops == empty.baseline.mean_hops

    def test_churn_with_fault_bursts_runs_and_wins(self):
        from repro.faults import FaultSchedule

        config = ChurnConfig(
            overlay="chord",
            n=32,
            bits=16,
            seed=10,
            duration=200.0,
            warmup=50.0,
            faults=FaultSchedule(
                loss_rate=0.02,
                crash_burst_size=3,
                crash_burst_interval=60.0,
                crash_burst_downtime=30.0,
                partition_fraction=0.1,
                partition_start=80.0,
                partition_duration=40.0,
                stale_rate=0.02,
            ),
        )
        first = run_churn(config)
        second = run_churn(config)
        assert first.optimized.per_lookup == second.optimized.per_lookup
        assert first.improvement > 0.0
