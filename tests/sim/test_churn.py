"""Unit tests for the churn process."""

import random

from repro.sim.churn import ChurnProcess
from repro.sim.events import EventScheduler


class FakeOverlay:
    """Minimal churn target recording the transition trace."""

    def __init__(self, node_ids):
        self.up = set(node_ids)
        self.down = set()
        self.trace = []

    def crash(self, node_id):
        assert node_id in self.up
        self.up.discard(node_id)
        self.down.add(node_id)
        self.trace.append(("crash", node_id))

    def rejoin(self, node_id):
        assert node_id in self.down
        self.down.discard(node_id)
        self.up.add(node_id)
        self.trace.append(("rejoin", node_id))

    def alive_count(self):
        return len(self.up)


def run_churn(n=20, duration=5000.0, seed=0, **kwargs):
    scheduler = EventScheduler()
    overlay = FakeOverlay(range(n))
    process = ChurnProcess(
        scheduler, overlay, list(range(n)), random.Random(seed), **kwargs
    )
    process.start()
    scheduler.run_until(duration)
    return overlay, process


class TestChurnProcess:
    def test_transitions_alternate_per_node(self):
        overlay, __ = run_churn()
        last = {}
        for action, node in overlay.trace:
            assert last.get(node) != action  # crash and rejoin alternate
            last[node] = action

    def test_event_rate_matches_mean_lifetime(self):
        """With mean 900s sessions over 20 nodes and 9000s, expect roughly
        duration/900 transitions per node on average."""
        overlay, process = run_churn(n=20, duration=9000.0, mean_uptime=900.0, mean_downtime=900.0)
        per_node = len(overlay.trace) / 20
        assert 4 <= per_node <= 16  # ~10 expected, generous bounds

    def test_min_alive_floor_respected(self):
        overlay, __ = run_churn(n=4, duration=20000.0, min_alive=3)
        # Replay the trace: alive count must never fall below the floor.
        alive = 4
        for action, __node in overlay.trace:
            alive += -1 if action == "crash" else 1
            assert alive >= 3

    def test_deterministic_given_seed(self):
        a, __ = run_churn(seed=7)
        b, __ = run_churn(seed=7)
        assert a.trace == b.trace

    def test_counts_match_trace(self):
        overlay, process = run_churn(seed=3)
        assert process.crashes == sum(1 for action, _ in overlay.trace if action == "crash")
        assert process.rejoins == sum(1 for action, _ in overlay.trace if action == "rejoin")

    def test_steady_state_alive_fraction(self):
        """Equal up/down means -> about half the population alive at the end
        of a long run."""
        overlay, __ = run_churn(n=100, duration=20000.0, seed=5)
        assert 25 <= overlay.alive_count() <= 75
