"""Tests for maintenance-cost accounting."""

import pytest

from repro.chord.ring import ChordRing
from repro.sim.maintenance import cost_benefit_curve, maintenance_rate, table_sizes
from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace


class TestTableSizes:
    def test_counts_all_neighbor_kinds(self):
        ring = ChordRing.build(16, space=IdSpace(14), seed=1)
        node_id = ring.alive_ids()[0]
        before = table_sizes(ring)[node_id]
        extra = next(i for i in ring.alive_ids() if i not in ring.node(node_id).neighbor_ids() and i != node_id)
        ring.node(node_id).set_auxiliary({extra})
        after = table_sizes(ring)[node_id]
        assert after == before + 1

    def test_rate_scales_with_interval(self):
        ring = ChordRing.build(16, space=IdSpace(14), seed=2)
        fast = maintenance_rate(ring, stabilize_interval=5.0)
        slow = maintenance_rate(ring, stabilize_interval=50.0)
        assert fast == pytest.approx(10 * slow)
        with pytest.raises(ConfigurationError):
            maintenance_rate(ring, stabilize_interval=0.0)


class TestCostBenefitCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return cost_benefit_curve(
            overlay="chord", n=48, bits=16, budgets=(0, 5, 15), queries=1200, seed=3
        )

    def test_budgets_in_order(self, curve):
        assert [point.k for point in curve] == [0, 5, 15]

    def test_zero_budget_means_identical_policies(self, curve):
        assert curve[0].improvement_pct == pytest.approx(0.0)

    def test_more_pointers_more_pings(self, curve):
        pings = [point.pings_per_second for point in curve]
        assert pings == sorted(pings)
        assert pings[-1] > pings[0]

    def test_improvement_positive_once_budget_exists(self, curve):
        assert curve[1].improvement_pct > 0
        assert curve[2].improvement_pct > 0

    def test_table_growth_roughly_matches_budget(self, curve):
        growth = curve[2].mean_table_size - curve[0].mean_table_size
        assert 10 <= growth <= 15  # <= k: some selections need fewer pointers

    def test_empty_budgets_rejected(self):
        with pytest.raises(ConfigurationError):
            cost_benefit_curve(n=16, bits=14, budgets=())
