"""Unit tests for the lookup metrics."""

import math
from dataclasses import dataclass

import pytest

from repro.sim.metrics import ComparisonResult, HopStatistics, percent_reduction
from repro.util.errors import ConfigurationError


@dataclass
class FakeLookup:
    hops: int
    timeouts: int = 0
    succeeded: bool = True

    @property
    def latency(self):
        return self.hops + self.timeouts


class TestHopStatistics:
    def test_mean_over_successes_only(self):
        stats = HopStatistics()
        stats.record(FakeLookup(hops=2))
        stats.record(FakeLookup(hops=4))
        stats.record(FakeLookup(hops=99, succeeded=False))
        assert stats.mean_hops == pytest.approx(3.0)
        assert stats.successes == 2
        assert stats.failures == 1
        assert stats.failure_rate == pytest.approx(1 / 3)

    def test_timeouts_count_toward_latency(self):
        stats = HopStatistics()
        stats.record(FakeLookup(hops=2, timeouts=3))
        assert stats.mean_hops == pytest.approx(5.0)
        assert stats.total_timeouts == 3

    def test_empty_stats_are_nan(self):
        stats = HopStatistics()
        assert math.isnan(stats.mean_hops)
        assert stats.failure_rate == 0.0

    def test_stddev_and_confidence(self):
        stats = HopStatistics()
        for hops in [1, 2, 3, 4, 5]:
            stats.record(FakeLookup(hops=hops))
        assert stats.stddev_hops == pytest.approx(math.sqrt(2.5))
        assert stats.confidence_halfwidth() == pytest.approx(1.96 * math.sqrt(2.5 / 5))

    def test_merge(self):
        a, b = HopStatistics(), HopStatistics()
        a.record(FakeLookup(hops=2))
        b.record(FakeLookup(hops=4))
        b.record(FakeLookup(hops=1, succeeded=False))
        a.merge(b)
        assert a.lookups == 3
        assert a.mean_hops == pytest.approx(3.0)

    def test_keep_samples(self):
        stats = HopStatistics(keep_samples=True)
        stats.record(FakeLookup(hops=2))
        stats.record(FakeLookup(hops=7, timeouts=1))
        assert stats.per_lookup == [2, 8]


class TestPercentReduction:
    def test_positive_when_optimized_wins(self):
        assert percent_reduction(4.0, 2.0) == pytest.approx(50.0)

    def test_negative_when_optimized_loses(self):
        assert percent_reduction(2.0, 3.0) == pytest.approx(-50.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            percent_reduction(0.0, 1.0)

    def test_nan_inputs_degrade_to_nan(self):
        # A 100%-loss cell has no successful lookups, so its mean is nan;
        # the comparison must report nan for that row, not crash the grid.
        assert math.isnan(percent_reduction(float("nan"), 2.0))
        assert math.isnan(percent_reduction(2.0, float("nan")))

    def test_all_failed_comparison_is_nan(self):
        ours, base = HopStatistics(), HopStatistics()
        ours.record(FakeLookup(hops=1, succeeded=False))
        base.record(FakeLookup(hops=1, succeeded=False))
        assert math.isnan(ComparisonResult("dead cell", ours, base).improvement)


class TestComparisonResult:
    def make(self):
        ours, base = HopStatistics(), HopStatistics()
        ours.record(FakeLookup(hops=1))
        base.record(FakeLookup(hops=2))
        return ComparisonResult("cell", ours, base)

    def test_improvement(self):
        assert self.make().improvement == pytest.approx(50.0)

    def test_summary_mentions_label_and_number(self):
        text = self.make().summary()
        assert "cell" in text
        assert "50.0%" in text


class TestPercentiles:
    def test_nearest_rank(self):
        stats = HopStatistics(keep_samples=True)
        for hops in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            stats.record(FakeLookup(hops=hops))
        assert stats.percentile(0.5) == 5.0
        assert stats.percentile(0.9) == 9.0
        assert stats.percentile(1.0) == 10.0
        assert stats.percentile(0.0) == 1.0

    def test_degrades_to_nan_without_samples(self):
        # Reporting paths call this on fast-path cells that never kept
        # samples; the column must degrade, not crash mid-report.
        stats = HopStatistics()
        stats.record(FakeLookup(hops=1))
        assert math.isnan(stats.percentile(0.5))
        assert all(math.isnan(value) for value in stats.latency_percentiles().values())

    def test_quantile_validated(self):
        stats = HopStatistics(keep_samples=True)
        with pytest.raises(ConfigurationError):
            stats.percentile(1.5)

    def test_empty_is_nan(self):
        stats = HopStatistics(keep_samples=True)
        assert math.isnan(stats.percentile(0.5))


class TestToHistogram:
    def test_shares_the_canonical_telemetry_edges(self):
        from repro.sim.metrics import LATENCY_BUCKET_EDGES
        from repro.telemetry.registry import Histogram

        stats = HopStatistics(keep_samples=True)
        assert stats.to_histogram()["edges"] == list(LATENCY_BUCKET_EDGES)
        assert Histogram().edges == LATENCY_BUCKET_EDGES

    def test_matches_a_telemetry_histogram_fed_the_same_samples(self):
        from repro.telemetry.registry import Histogram

        stats = HopStatistics(keep_samples=True)
        hist = Histogram()
        for hops in [1, 2, 2, 5, 9, 40, 200]:
            stats.record(FakeLookup(hops=hops))
            hist.observe(float(hops))
        snapshot = stats.to_histogram()
        assert snapshot["cumulative"] == hist.cumulative()
        assert snapshot["count"] == hist.count
        assert snapshot["sum"] == hist.sum

    def test_reconciles_with_percentile(self):
        # The q-quantile must land in the bucket whose cumulative count
        # first reaches ceil(q * n) — the histogram and the order
        # statistics describe the same distribution.
        stats = HopStatistics(keep_samples=True)
        for hops in [1, 2, 3, 4, 6, 8, 12, 20, 33, 70]:
            stats.record(FakeLookup(hops=hops))
        snapshot = stats.to_histogram()
        edges = snapshot["edges"] + [math.inf]
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 1.0):
            value = stats.percentile(q)
            rank = max(1, math.ceil(q * snapshot["count"]))
            bucket = next(
                index
                for index, cum in enumerate(snapshot["cumulative"])
                if cum >= rank
            )
            # The order-statistic quantile falls inside (or below the
            # upper edge of) the bucket holding that rank.
            assert value <= edges[bucket]
            if bucket > 0:
                assert value > edges[bucket - 1]

    def test_degrades_to_empty_without_samples(self):
        stats = HopStatistics()
        stats.record(FakeLookup(hops=3))
        snapshot = stats.to_histogram()
        assert snapshot["count"] == 0
        assert snapshot["sum"] == 0.0
        assert all(value == 0 for value in snapshot["cumulative"])

    def test_failures_excluded(self):
        stats = HopStatistics(keep_samples=True)
        stats.record(FakeLookup(hops=2))
        stats.record(FakeLookup(hops=50, succeeded=False))
        assert stats.to_histogram()["count"] == 1
