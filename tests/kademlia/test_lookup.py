"""Kademlia lookup tests: iterative FIND_NODE and recursive routing.

The iterative α-parallel lookup is fully deterministic given the network
state (XOR injectivity leaves no ties), so the same seed must replay to
the same query order, round count and result set at any α — the
seeded-replay contract the conformance battery's determinism tests extend
to whole figure documents.
"""

import random

import pytest

from repro.kademlia.network import KademliaNetwork
from repro.kademlia.routing import iterative_find_node
from repro.util.ids import IdSpace


def _network(n=48, bits=14, seed=11, **kwargs):
    return KademliaNetwork.build(n, space=IdSpace(bits), seed=seed, **kwargs)


class TestIterativeFindNode:
    @pytest.mark.parametrize("alpha", [1, 3])
    def test_finds_the_globally_closest_nodes(self, alpha):
        """The shortlist converges on the true XOR top-k over all live
        nodes (linear-scan oracle), for serial and parallel α."""
        network = _network()
        rng = random.Random(42)
        ids = network.alive_ids()
        for __ in range(15):
            source = ids[rng.randrange(len(ids))]
            key = rng.randrange(network.space.size)
            result = iterative_find_node(network, source, key, alpha=alpha)
            oracle = tuple(sorted(ids, key=lambda nid: nid ^ key)[: len(result.found)])
            assert result.found == oracle
            assert result.timeouts == 0
            assert len(result.found) == network.bucket_size

    @pytest.mark.parametrize("alpha", [1, 3])
    def test_seeded_replay_is_deterministic(self, alpha):
        """Identical network state and query -> identical query-order
        fingerprint, rounds and message count, every time."""
        fingerprints = []
        for __ in range(2):
            network = _network()
            rng = random.Random(7)
            runs = []
            for __ in range(10):
                source = network.alive_ids()[rng.randrange(network.alive_count())]
                key = rng.randrange(network.space.size)
                result = iterative_find_node(network, source, key, alpha=alpha)
                runs.append(
                    (result.queried, result.found, result.rounds, result.messages)
                )
            fingerprints.append(runs)
        assert fingerprints[0] == fingerprints[1]

    def test_alpha_one_queries_serially_closest_first(self):
        """At α=1 each round queries exactly one node; messages == rounds
        and the first query is the closest known contact."""
        network = _network()
        key = 12345
        source = network.alive_ids()[0]
        result = iterative_find_node(network, source, key, alpha=1)
        assert result.messages == result.rounds
        node = network.node(source)
        first_known = min(
            node.neighbor_ids() | {source} - {source}, key=lambda nid: nid ^ key
        )
        assert result.queried[0] == first_known

    def test_dead_peers_cost_timeouts_and_drop_out(self):
        network = _network(n=24)
        ids = network.alive_ids()
        source = ids[0]
        for victim in ids[1::3]:
            network.crash(victim)
        key = 999
        result = iterative_find_node(network, source, key, alpha=3)
        alive = set(network.alive_ids())
        assert set(result.found) <= alive
        assert result.timeouts >= 0
        # Every found node is genuinely among the closest live ones the
        # search could have reached (sanity, not the clean-state oracle).
        assert result.found == tuple(sorted(result.found, key=lambda nid: nid ^ key))


class TestRecursiveRoute:
    def test_pointer_class_accounting_in_traces(self):
        """Traced lookups label every forward with the pointer structure
        that nominated it (core before auxiliary)."""
        from repro.obs.recorder import LookupTracer

        network = _network(n=32)
        rng = random.Random(3)
        ids = network.alive_ids()
        # Install some auxiliaries so both classes appear.
        from repro.kademlia.network import optimal_policy

        for node_id in ids:
            network.seed_frequencies(
                node_id,
                {peer: float(rng.randint(1, 9)) for peer in ids if peer != node_id},
            )
        network.recompute_all_auxiliary(4, optimal_policy, random.Random(3))
        tracer = LookupTracer()
        classes = set()
        for __ in range(40):
            source = ids[rng.randrange(len(ids))]
            key = rng.randrange(network.space.size)
            result = network.lookup(source, key, record_access=False, trace=tracer)
            assert result.succeeded
        for trace in tracer.traces:
            for event in trace.events:
                assert event.pointer_class in ("core", "auxiliary")
                classes.add(event.pointer_class)
        assert "core" in classes  # the workhorse class must appear

    def test_route_replays_identically(self):
        """Same network, same queries -> byte-equal paths (route() draws
        no randomness at all)."""
        outcomes = []
        for __ in range(2):
            network = _network(n=32, seed=5)
            rng = random.Random(5)
            ids = network.alive_ids()
            paths = []
            for __ in range(20):
                source = ids[rng.randrange(len(ids))]
                key = rng.randrange(network.space.size)
                result = network.lookup(source, key, record_access=False)
                paths.append((tuple(result.path), result.hops, result.destination))
            outcomes.append(paths)
        assert outcomes[0] == outcomes[1]
