"""Unit tests for the Kademlia k-bucket routing table.

The structural claims the routing-correctness argument rests on:

* a full bucket splits *only* while it covers the owner's id — distant
  subtrees cap at ``bucket_size`` contacts, the owner's path keeps
  splitting (Maymounkov & Mazières §2.4);
* buckets order contacts least-recently-seen first and evict the LRU
  head when a distant bucket overflows;
* bucket ranges always partition the id space and never overflow their
  capacity, under arbitrary insert/remove sequences;
* because splitting peels sibling subtrees off the owner's path, every
  non-owner bucket covers exactly one XOR distance class.
"""

import random

from repro.kademlia.node import KBucket, RoutingTable
from repro.util.ids import IdSpace


def _space(bits=8):
    return IdSpace(bits)


class TestSplitPolicy:
    def test_splits_only_on_the_owner_branch(self):
        """Filling the half of the space away from the owner never splits
        that subtree: it stays one bucket of ``bucket_size`` contacts."""
        space = _space(8)
        table = RoutingTable(owner=0, space=space, bucket_size=4)
        # Ids in [128, 256) share prefix 0 with owner 0: the distant half.
        for node_id in range(128, 168):
            table.insert(node_id)
        distant = [b for b in table.buckets if b.low >= 128]
        assert len(distant) == 1
        assert distant[0].low == 128 and distant[0].high == 256
        assert len(distant[0].entries) == 4

    def test_owner_branch_keeps_splitting(self):
        """Contacts near the owner split down to fine granularity."""
        space = _space(8)
        table = RoutingTable(owner=0, space=space, bucket_size=2)
        for node_id in range(1, 17):
            table.insert(node_id)
        owner_bucket = table.bucket_for(0)
        # The bucket still covering the owner is small: splitting worked.
        assert owner_bucket.high - owner_bucket.low < 256
        # And near-owner contacts survive beyond one bucket's capacity.
        assert len(table) > 2

    def test_non_owner_buckets_cover_one_distance_class_each(self):
        space = _space(8)
        rng = random.Random(7)
        owner = rng.randrange(space.size)
        table = RoutingTable(owner=owner, space=space, bucket_size=3)
        for node_id in rng.sample(range(space.size), 120):
            table.insert(node_id)
        for bucket in table.buckets:
            if bucket.covers(owner):
                continue
            classes = {
                space.common_prefix_length(owner, entry) for entry in bucket.entries
            }
            assert len(classes) <= 1, (
                f"bucket [{bucket.low}, {bucket.high}) mixes distance "
                f"classes {sorted(classes)}"
            )


class TestLRUOrdering:
    def test_touch_moves_known_contact_to_fresh_end(self):
        bucket = KBucket(0, 256, 4)
        for node_id in (1, 2, 3):
            bucket.entries.append(node_id)
        assert bucket.touch(1)
        assert bucket.entries == [2, 3, 1]
        assert not bucket.touch(99)

    def test_full_distant_bucket_evicts_lru_head(self):
        space = _space(8)
        table = RoutingTable(owner=0, space=space, bucket_size=3)
        for node_id in (200, 210, 220):
            table.insert(node_id)
        table.insert(200)  # refresh: 200 is now freshest
        evicted = table.insert(230)
        assert evicted == 210  # the least-recently-seen entry
        assert set(table.bucket_for(230).entries) == {220, 200, 230}

    def test_refresh_never_evicts(self):
        space = _space(8)
        table = RoutingTable(owner=0, space=space, bucket_size=2)
        table.insert(200)
        table.insert(210)
        assert table.insert(200) is None  # known contact: refresh only
        assert len(table) == 2

    def test_split_preserves_relative_recency(self):
        bucket = KBucket(0, 8, 8)
        bucket.entries = [5, 1, 6, 2]  # LRU first
        lower, upper = bucket.split()
        assert lower.entries == [1, 2]
        assert upper.entries == [5, 6]


class TestStructuralInvariants:
    def test_random_sequences_keep_partition_and_capacity(self):
        """Under random insert/remove streams, bucket ranges partition the
        space, no bucket overflows, and no contact is duplicated."""
        space = _space(8)
        for seed in range(8):
            rng = random.Random(seed)
            owner = rng.randrange(space.size)
            table = RoutingTable(owner=owner, space=space, bucket_size=3)
            population = rng.sample(range(space.size), 100)
            for node_id in population:
                if rng.random() < 0.15 and len(table):
                    table.remove(rng.choice(table.contacts()))
                table.insert(node_id)
            # Ranges partition [0, size).
            edge = 0
            for bucket in table.buckets:
                assert bucket.low == edge
                edge = bucket.high
                assert len(bucket.entries) <= bucket.capacity
                for entry in bucket.entries:
                    assert bucket.covers(entry)
            assert edge == space.size
            contacts = table.contacts()
            assert len(contacts) == len(set(contacts))
            assert owner not in contacts

    def test_closest_matches_sorted_oracle(self):
        space = _space(8)
        rng = random.Random(3)
        table = RoutingTable(owner=17, space=space, bucket_size=4)
        for node_id in rng.sample(range(space.size), 60):
            table.insert(node_id)
        key = 99
        oracle = sorted(table.contacts(), key=lambda nid: nid ^ key)[:5]
        assert table.closest(key, 5) == oracle

    def test_insert_is_deterministic(self):
        space = _space(8)
        tables = []
        for __ in range(2):
            table = RoutingTable(owner=5, space=space, bucket_size=3)
            for node_id in range(0, 256, 7):
                table.insert(node_id)
            tables.append([(b.low, b.high, list(b.entries)) for b in table.buckets])
        assert tables[0] == tables[1]
