"""Kademlia network membership: build, join, crash/rejoin, maintenance.

The lookup and bucket mechanics live in test_lookup.py / test_kbuckets.py;
this file covers the network-level lifecycle — the protocol-faithful
``join_via`` in particular, whose bucket population comes from the join
lookup's surfaced contacts rather than the global view.
"""

import random

import pytest

from repro.kademlia.network import KademliaNetwork, optimal_policy
from repro.util.errors import ConfigurationError, NodeAbsentError
from repro.util.ids import IdSpace


def _network(n=32, bits=14, seed=7, **kwargs):
    return KademliaNetwork.build(n, space=IdSpace(bits), seed=seed, **kwargs)


class TestBuild:
    def test_default_space_is_160_bit(self):
        # The rejection-sampling path for spaces wider than ssize_t.
        network = KademliaNetwork.build(8, seed=3)
        assert network.space.bits == 160
        assert network.alive_count() == 8
        assert all(0 <= nid < network.space.size for nid in network.alive_ids())

    def test_rejects_overfull_space(self):
        with pytest.raises(ConfigurationError):
            KademliaNetwork.build(20, space=IdSpace(4))

    def test_responsible_is_xor_minimum(self):
        network = _network()
        ids = network.alive_ids()
        for key in (0, 17, network.space.size - 1):
            assert network.responsible(key) == min(ids, key=lambda nid: nid ^ key)

    def test_responsible_requires_live_nodes(self):
        network = KademliaNetwork(IdSpace(10))
        with pytest.raises(NodeAbsentError):
            network.responsible(5)


class TestAddNode:
    def test_duplicate_id_rejected(self):
        network = _network()
        with pytest.raises(ConfigurationError):
            network.add_node(network.alive_ids()[0])

    def test_out_of_space_id_rejected(self):
        network = _network(bits=10)
        with pytest.raises(ConfigurationError):
            network.add_node(network.space.size)

    def test_new_node_gets_ground_truth_core(self):
        network = _network()
        free = next(
            candidate
            for candidate in range(network.space.size)
            if candidate not in network.nodes
        )
        node = network.add_node(free)
        assert node.core == network.reference_core(free)


class TestJoinVia:
    def _free_id(self, network, seed=0):
        rng = random.Random(seed)
        while True:
            candidate = rng.randrange(network.space.size)
            if candidate not in network.nodes:
                return candidate

    def test_core_comes_from_the_join_lookup_surface(self):
        network = _network()
        newcomer = self._free_id(network)
        bootstrap = network.alive_ids()[0]
        node = network.join_via(newcomer, bootstrap)
        assert node.alive
        assert newcomer in network.alive_ids()
        # Contacts come from the join lookup's surface, so they are all
        # live and never include the newcomer itself.
        assert node.core
        assert all(network.nodes[contact].alive for contact in node.core)
        assert newcomer not in node.core
        # The lookup on the own id always reaches the XOR-closest
        # neighbours, so the newcomer knows its immediate vicinity.
        closest = min(
            (nid for nid in network.alive_ids() if nid != newcomer),
            key=lambda nid: nid ^ newcomer,
        )
        assert closest in node.core

    def test_joined_node_routes_and_is_found_after_stabilization(self):
        network = _network()
        newcomer = self._free_id(network, seed=1)
        network.join_via(newcomer, network.alive_ids()[-1])
        network.stabilize_all()
        # Others now know the newcomer: a lookup keyed on its id lands there.
        source = next(nid for nid in network.alive_ids() if nid != newcomer)
        result = network.find_node(source, newcomer)
        assert result.found[0] == newcomer
        assert result.timeouts == 0

    def test_dead_bootstrap_rejected(self):
        network = _network()
        victim = network.alive_ids()[3]
        network.crash(victim)
        with pytest.raises(NodeAbsentError):
            network.join_via(self._free_id(network), victim)
        with pytest.raises(NodeAbsentError):
            network.join_via(self._free_id(network), self._free_id(network, seed=2))

    def test_live_duplicate_rejected(self):
        network = _network()
        ids = network.alive_ids()
        with pytest.raises(ConfigurationError):
            network.join_via(ids[0], ids[1])

    def test_crashed_node_can_rejoin_via_bootstrap_with_fresh_state(self):
        network = _network()
        victim = network.alive_ids()[5]
        network.nodes[victim].record_access(victim ^ 1)
        network.crash(victim)
        network.stabilize_all()
        node = network.join_via(victim, network.alive_ids()[0])
        assert node.alive and victim in network.alive_ids()
        assert all(network.nodes[contact].alive for contact in node.core)
        assert node.auxiliary == set()


class TestCrashAndRejoin:
    def test_double_crash_and_double_rejoin_rejected(self):
        network = _network()
        victim = network.alive_ids()[0]
        network.crash(victim)
        with pytest.raises(NodeAbsentError):
            network.crash(victim)
        network.rejoin(victim)
        with pytest.raises(NodeAbsentError):
            network.rejoin(victim)

    def test_stabilize_dead_node_rejected(self):
        network = _network()
        victim = network.alive_ids()[0]
        network.crash(victim)
        with pytest.raises(NodeAbsentError):
            network.stabilize(victim)

    def test_recompute_at_dead_node_rejected(self):
        network = _network()
        victim = network.alive_ids()[0]
        network.crash(victim)
        with pytest.raises(NodeAbsentError):
            network.recompute_auxiliary(victim, 2, optimal_policy, random.Random(0))


class TestTelemetry:
    def test_spans_and_work_counters_recorded(self):
        from repro.telemetry.runtime import RoundTelemetry

        network = _network(n=16)
        telemetry = RoundTelemetry()
        network.attach_telemetry(telemetry)
        rng = random.Random(0)
        network.recompute_all_auxiliary(2, optimal_policy, rng)
        victim = network.alive_ids()[0]
        network.crash(victim)
        network.stabilize_all()
        spans = {
            family["labels"].get("span")
            for family in telemetry.registry.to_payload()
            if family["name"] == "repro_span_entries_total"
        }
        assert {"selection.recompute", "maintenance.stabilize"} <= spans

    def test_disabled_telemetry_is_detached(self):
        from repro.telemetry.runtime import RoundTelemetry

        network = _network(n=16)
        network.attach_telemetry(RoundTelemetry.disabled())
        assert network._telemetry is None
        network.attach_telemetry(None)
        assert network._telemetry is None
