"""Tests for the protocol-faithful Chord join (lookup-driven table build)."""

import pytest

from repro.chord.ring import ChordRing
from repro.util.errors import ConfigurationError, NodeAbsentError
from repro.util.ids import IdSpace


def fresh_id(ring, seed=0):
    import random

    rng = random.Random(seed)
    while True:
        candidate = rng.randrange(ring.space.size)
        if candidate not in ring.nodes:
            return candidate


class TestJoinVia:
    def test_join_matches_stabilized_tables(self):
        """On a stable ring, a lookup-driven join computes the same finger
        set a global-view stabilization round would."""
        ring = ChordRing.build(48, space=IdSpace(16), seed=1)
        newcomer = fresh_id(ring, seed=2)
        bootstrap = ring.alive_ids()[0]
        node = ring.join_via(newcomer, bootstrap)
        protocol_core = set(node.core)
        protocol_successors = list(node.successors)
        ring.stabilize(newcomer)
        assert protocol_core == node.core
        assert protocol_successors == node.successors

    def test_joined_node_can_lookup_immediately(self):
        ring = ChordRing.build(32, space=IdSpace(16), seed=3)
        newcomer = fresh_id(ring, seed=4)
        ring.join_via(newcomer, ring.alive_ids()[0])
        for key in range(0, 2**16, 7919):
            result = ring.lookup(newcomer, key, record_access=False)
            assert result.succeeded

    def test_responsibility_transfers_after_stabilization(self):
        """Keys the newcomer now owns are misrouted by oblivious peers
        until they stabilize — then everything is consistent again."""
        ring = ChordRing.build(32, space=IdSpace(16), seed=5)
        newcomer = fresh_id(ring, seed=6)
        bootstrap = ring.alive_ids()[0]
        ring.join_via(newcomer, bootstrap)
        key = newcomer  # the newcomer is now this key's predecessor
        assert ring.responsible(key) == newcomer
        early = ring.lookup(bootstrap, key, record_access=False)
        assert not early.succeeded  # nobody routes to the unknown newcomer yet
        ring.stabilize_all()
        late = ring.lookup(bootstrap, key, record_access=False)
        assert late.succeeded
        assert late.destination == newcomer

    def test_rejoin_after_crash_via_protocol(self):
        ring = ChordRing.build(24, space=IdSpace(16), seed=7)
        victim = ring.alive_ids()[3]
        bootstrap = ring.alive_ids()[0]
        ring.crash(victim)
        node = ring.join_via(victim, bootstrap)
        assert node.alive
        assert victim in ring.alive_ids()
        assert node.successors  # rebuilt through the overlay

    def test_join_existing_rejected(self):
        ring = ChordRing.build(8, space=IdSpace(16), seed=8)
        ids = ring.alive_ids()
        with pytest.raises(ConfigurationError):
            ring.join_via(ids[1], ids[0])

    def test_dead_bootstrap_rejected(self):
        ring = ChordRing.build(8, space=IdSpace(16), seed=9)
        victim = ring.alive_ids()[0]
        other = ring.alive_ids()[1]
        ring.crash(victim)
        newcomer = fresh_id(ring, seed=10)
        with pytest.raises(NodeAbsentError):
            ring.join_via(newcomer, victim)


class TestRefreshVia:
    def test_matches_global_stabilization_when_consistent(self):
        ring = ChordRing.build(32, space=IdSpace(16), seed=11)
        node_id = ring.alive_ids()[4]
        ring.refresh_via(node_id)
        protocol_core = set(ring.node(node_id).core)
        protocol_successors = list(ring.node(node_id).successors)
        ring.stabilize(node_id)
        assert protocol_core == ring.node(node_id).core
        assert protocol_successors == ring.node(node_id).successors

    def test_discovers_newcomer_only_through_routing(self):
        """A routed refresh cannot learn about a node no path leads to,
        but does learn it once the newcomer's successor region knows it."""
        ring = ChordRing.build(24, space=IdSpace(16), seed=12)
        observer = ring.alive_ids()[0]
        newcomer = next(i for i in range(2**16) if i not in ring.nodes)
        ring.join_via(newcomer, observer)
        # Propagate knowledge realistically: the newcomer's neighborhood
        # stabilizes first (global view models their local discovery)...
        ring.stabilize_all()
        # ...then the observer's routed refresh can find the newcomer.
        ring.refresh_via(observer)
        lookup = ring.lookup(observer, newcomer, record_access=False)
        assert lookup.succeeded
        assert lookup.destination == newcomer

    def test_refresh_drops_dead_auxiliaries(self):
        ring = ChordRing.build(16, space=IdSpace(16), seed=13)
        ids = ring.alive_ids()
        holder, target = ids[0], ids[7]
        ring.node(holder).set_auxiliary({target})
        ring.crash(target)
        ring.refresh_via(holder)
        assert target not in ring.node(holder).auxiliary

    def test_refresh_dead_node_raises(self):
        ring = ChordRing.build(8, space=IdSpace(16), seed=14)
        victim = ring.alive_ids()[0]
        ring.crash(victim)
        with pytest.raises(NodeAbsentError):
            ring.refresh_via(victim)
