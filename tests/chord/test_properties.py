"""Chord-specific property tests.

The cross-overlay behavioural contract — termination at the linear-scan
responsible node, strict per-hop progress, hop bounds, crash/rejoin
idempotence — lives in ``tests/conformance/test_overlay_battery.py``;
only what is Chord-specific remains here: the RingTable next-hop model
and the pointers-only-add-options guarantee.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.ring import ChordRing
from repro.chord.routing import RingTable
from repro.util.ids import IdSpace


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 255),
    st.lists(st.integers(0, 255), min_size=1, max_size=20, unique=True),
    st.integers(0, 255),
)
def test_ring_table_next_hop_matches_naive_model(owner, entries, key):
    """next_hop == argmax over entries in (owner, key] of the clockwise
    offset — validated against a brute-force reference."""
    space = IdSpace(8)
    table = RingTable(owner, space)
    for entry in entries:
        table.add(entry)
    usable = [
        entry
        for entry in entries
        if entry != owner and 0 < space.gap(owner, entry) <= space.gap(owner, key)
    ]
    expected = max(usable, key=lambda e: space.gap(owner, e), default=None)
    assert table.next_hop(key) == expected


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_auxiliary_pointers_never_slow_lookups_down(seed):
    """Installing optimal auxiliaries must not increase any node's average
    hop count over a fixed key sample (pointers only add options)."""
    import random as _random

    from repro.chord.ring import optimal_policy

    ring = ChordRing.build(32, space=IdSpace(14), seed=seed)
    rng = _random.Random(seed)
    ids = ring.alive_ids()
    source = ids[0]
    keys = [rng.randrange(2**14) for __ in range(30)]
    before = sum(ring.lookup(source, key, record_access=False).hops for key in keys)
    frequencies = {peer: float(rng.randint(1, 20)) for peer in ids[1:20]}
    ring.seed_frequencies(source, frequencies)
    ring.recompute_auxiliary(source, 4, optimal_policy, _random.Random(seed))
    after = sum(ring.lookup(source, key, record_access=False).hops for key in keys)
    assert after <= before
