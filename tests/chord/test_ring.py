"""Unit tests for Chord ring membership, fingers and auxiliary policies."""

import random

import pytest

from repro.chord.node import ChordNode
from repro.chord.ring import ChordRing, oblivious_policy, optimal_policy
from repro.util.errors import ConfigurationError, NodeAbsentError
from repro.util.ids import IdSpace


class TestBuild:
    def test_build_places_n_distinct_nodes(self):
        ring = ChordRing.build(32, space=IdSpace(16), seed=0)
        assert ring.alive_count() == 32
        assert len(set(ring.alive_ids())) == 32

    def test_build_rejects_overfull_space(self):
        with pytest.raises(ConfigurationError):
            ChordRing.build(20, space=IdSpace(4))

    def test_duplicate_node_rejected(self):
        ring = ChordRing(IdSpace(8))
        ring.add_node(5)
        with pytest.raises(ConfigurationError):
            ring.add_node(5)


class TestResponsibility:
    def test_key_assigned_to_predecessor(self):
        ring = ChordRing(IdSpace(8))
        for node_id in [10, 100, 200]:
            ring.add_node(node_id)
        assert ring.responsible(10) == 10  # exact hit: "equal to k"
        assert ring.responsible(50) == 10
        assert ring.responsible(150) == 100
        assert ring.responsible(250) == 200
        assert ring.responsible(5) == 200  # wraps around

    def test_empty_ring_raises(self):
        with pytest.raises(NodeAbsentError):
            ChordRing(IdSpace(8)).responsible(5)


class TestFingers:
    def test_paper_variant_fingers(self):
        """The i-th neighbor is the first node in [x + 2^i, x + 2^(i+1))."""
        ring = ChordRing(IdSpace(8))
        for node_id in [0, 3, 5, 9, 17, 33, 100, 200]:
            ring.add_node(node_id)
        ring.stabilize_all()
        node = ring.node(0)
        # Interval [1,2): empty; [2,4): 3; [4,8): 5; [8,16): 9; [16,32): 17;
        # [32,64): 33; [64,128): 100; [128,256): 200.
        assert node.core == {3, 5, 9, 17, 33, 100, 200}

    def test_successor_list(self):
        ring = ChordRing(IdSpace(8), successor_list_size=3)
        for node_id in [0, 3, 5, 9, 17]:
            ring.add_node(node_id)
        ring.stabilize_all()
        assert ring.node(0).successors == [3, 5, 9]

    def test_single_node_has_no_neighbors(self):
        ring = ChordRing(IdSpace(8))
        ring.add_node(42)
        ring.stabilize_all()
        assert ring.node(42).neighbor_ids() == set()


class TestChurnLifecycle:
    def test_crash_and_rejoin(self):
        ring = ChordRing.build(16, space=IdSpace(12), seed=1)
        victim = ring.alive_ids()[3]
        ring.crash(victim)
        assert not ring.node(victim).alive
        assert victim not in ring.alive_ids()
        with pytest.raises(NodeAbsentError):
            ring.crash(victim)
        ring.rejoin(victim)
        assert ring.node(victim).alive
        assert victim in ring.alive_ids()
        with pytest.raises(NodeAbsentError):
            ring.rejoin(victim)

    def test_crash_loses_state(self):
        ring = ChordRing.build(16, space=IdSpace(12), seed=2)
        victim = ring.alive_ids()[0]
        node = ring.node(victim)
        node.record_access(ring.alive_ids()[1])
        node.set_auxiliary({ring.alive_ids()[2]})
        ring.crash(victim)
        ring.rejoin(victim)
        assert node.auxiliary == set()
        assert node.frequency_snapshot() == {}

    def test_stabilize_drops_dead_auxiliaries(self):
        ring = ChordRing.build(16, space=IdSpace(12), seed=3)
        ids = ring.alive_ids()
        holder, target = ids[0], ids[5]
        ring.node(holder).set_auxiliary({target})
        ring.crash(target)
        ring.stabilize(holder)
        assert target not in ring.node(holder).auxiliary

    def test_stabilizing_dead_node_raises(self):
        ring = ChordRing.build(8, space=IdSpace(12), seed=4)
        victim = ring.alive_ids()[0]
        ring.crash(victim)
        with pytest.raises(NodeAbsentError):
            ring.stabilize(victim)


class TestSuccessorLiveness:
    """Regression: a crash burst at the top of the ring must not leave
    crashed ids in the walkers' successor answers (``_successor_of``)."""

    def make_burst_ring(self):
        # Node 100 only knows the three highest nodes (successor list
        # [200, 220, 240], fingers {200, 240}); crashing all of them wipes
        # its entire view.
        ring = ChordRing(IdSpace(8), successor_list_size=3)
        for node_id in [0, 100, 200, 220, 240]:
            ring.add_node(node_id)
        ring.stabilize_all()
        for victim in (200, 220, 240):
            ring.crash(victim)
        return ring

    def test_skips_crashed_entries_and_wraps_to_first_live(self):
        ring = self.make_burst_ring()
        node = ring.node(100)
        assert all(not ring.node(s).alive for s in node.successors)  # stale view
        successor = ring._successor_of(node, ring.space.add(100, 1))
        # The old code returned 200 (crashed); failover must wrap past the
        # burst to the first live node, 0.
        assert successor == 0

    def test_refresh_after_burst_installs_only_live_successors(self):
        ring = self.make_burst_ring()
        ring.refresh_via(100)
        node = ring.node(100)
        assert node.successors == [0]
        assert all(ring.node(s).alive for s in node.successors)

    def test_lookup_fails_over_after_refresh(self):
        ring = self.make_burst_ring()
        ring.refresh_via(100)
        result = ring.lookup(100, 5, record_access=False)
        assert result.succeeded
        assert result.destination == 0

    def test_all_other_nodes_dead_returns_none(self):
        ring = ChordRing(IdSpace(8), successor_list_size=2)
        for node_id in [0, 100, 200]:
            ring.add_node(node_id)
        ring.stabilize_all()
        ring.crash(0)
        ring.crash(200)
        assert ring._successor_of(ring.node(100), 101) is None


class TestAuxiliaryPolicies:
    def test_optimal_policy_installs_hot_peer(self):
        ring = ChordRing.build(32, space=IdSpace(16), seed=5)
        ids = ring.alive_ids()
        source = ids[0]
        node = ring.node(source)
        core_like = node.core | set(node.successors)
        hot = next(
            peer
            for peer in sorted(ids[1:], key=lambda i: -ring.space.gap(source, i))
            if peer not in core_like
        )
        ring.seed_frequencies(source, {hot: 100.0})
        result = ring.recompute_auxiliary(source, k=1, policy=optimal_policy, rng=random.Random(0))
        assert result.auxiliary == {hot}
        assert node.auxiliary == {hot}

    def test_oblivious_policy_spends_budget(self):
        ring = ChordRing.build(64, space=IdSpace(16), seed=6)
        source = ring.alive_ids()[0]
        frequencies = {peer: 1.0 for peer in ring.alive_ids()[1:33]}
        ring.seed_frequencies(source, frequencies)
        result = ring.recompute_auxiliary(source, k=6, policy=oblivious_policy, rng=random.Random(0))
        assert len(result.auxiliary) == 6

    def test_optimal_beats_oblivious_cost(self):
        ring = ChordRing.build(64, space=IdSpace(16), seed=7)
        source = ring.alive_ids()[0]
        rng = random.Random(1)
        frequencies = {peer: float(rng.randint(1, 50)) for peer in ring.alive_ids()[1:40]}
        ring.seed_frequencies(source, frequencies)
        optimal = ring.recompute_auxiliary(source, k=4, policy=optimal_policy, rng=random.Random(2))
        oblivious = ring.recompute_auxiliary(source, k=4, policy=oblivious_policy, rng=random.Random(2))
        assert optimal.cost <= oblivious.cost

    def test_auxiliary_used_in_routing(self):
        """An auxiliary pointer at the destination makes the lookup 1 hop."""
        ring = ChordRing.build(64, space=IdSpace(16), seed=8)
        ids = ring.alive_ids()
        source = ids[0]
        destination = max(ids, key=lambda i: ring.space.gap(source, i))
        without = ring.lookup(source, destination, record_access=False).hops
        ring.node(source).set_auxiliary({destination})
        with_aux = ring.lookup(source, destination, record_access=False).hops
        assert with_aux == 1
        assert with_aux <= without


class TestNodeUnit:
    def test_evict(self):
        space = IdSpace(8)
        node = ChordNode(0, space)
        node.core = {5, 9}
        node.successors = [5]
        node.auxiliary = {9, 20}
        node._rebuild_table()
        node.evict(9)
        assert 9 not in node.neighbor_ids()
        assert node.table.next_hop(9) == 5

    def test_record_access_ignores_self(self):
        node = ChordNode(3, IdSpace(8))
        node.record_access(3)
        assert node.frequency_snapshot() == {}

    def test_frequency_snapshot_limit(self):
        node = ChordNode(0, IdSpace(8))
        for peer, count in [(1, 5), (2, 3), (3, 1)]:
            for __ in range(count):
                node.record_access(peer)
        assert set(node.frequency_snapshot(limit=2)) == {1, 2}
