"""Unit tests for the Chord ring table and routing primitives."""

import pytest

from repro.chord.ring import ChordRing
from repro.chord.routing import RingTable
from repro.util.errors import NodeAbsentError
from repro.util.ids import IdSpace


class TestRingTable:
    def test_add_remove_contains(self):
        table = RingTable(owner=0, space=IdSpace(8))
        table.add(5)
        table.add(9)
        table.add(5)  # duplicate ignored
        assert len(table) == 2
        assert 5 in table and 9 in table
        table.remove(5)
        assert 5 not in table
        table.remove(5)  # idempotent

    def test_owner_never_added(self):
        table = RingTable(owner=7, space=IdSpace(8))
        table.add(7)
        assert len(table) == 0

    def test_next_hop_is_closest_preceding(self):
        table = RingTable(owner=0, space=IdSpace(8))
        for entry in [4, 64, 128]:
            table.add(entry)
        assert table.next_hop(100) == 64
        assert table.next_hop(64) == 64
        assert table.next_hop(3) is None  # nothing in (0, 3]
        assert table.next_hop(200) == 128

    def test_next_hop_wraparound(self):
        table = RingTable(owner=200, space=IdSpace(8))
        table.add(250)
        table.add(10)
        # Key 5 (gap 61 from owner): entry 250 (gap 50) precedes it.
        assert table.next_hop(5) == 250
        # Key 30 (gap 86): entry 10 (gap 66) is closest preceding.
        assert table.next_hop(30) == 10

    def test_next_hop_empty(self):
        assert RingTable(0, IdSpace(8)).next_hop(5) is None


class TestStableLookups:
    @pytest.fixture(scope="class")
    def ring(self):
        return ChordRing.build(64, space=IdSpace(16), seed=3)

    def test_every_lookup_succeeds_and_is_correct(self, ring):
        ids = ring.alive_ids()
        for key in range(0, 2**16, 1371):
            result = ring.lookup(ids[0], key)
            assert result.succeeded
            assert result.destination == ring.responsible(key)
            assert result.timeouts == 0

    def test_hop_bound(self, ring):
        """Steady-state Chord lookups take at most ~log2(space) hops."""
        ids = ring.alive_ids()
        for source in ids[:10]:
            for key in range(0, 2**16, 4093):
                result = ring.lookup(source, key)
                assert result.hops <= ring.space.bits

    def test_lookup_own_key_is_zero_hops(self, ring):
        source = ring.alive_ids()[0]
        result = ring.lookup(source, source)
        assert result.succeeded
        assert result.hops == 0

    def test_path_starts_at_source(self, ring):
        source = ring.alive_ids()[5]
        result = ring.lookup(source, 12345)
        assert result.path[0] == source
        assert result.latency == result.hops + result.timeouts

    def test_lookup_from_dead_node_raises(self):
        ring = ChordRing.build(8, space=IdSpace(12), seed=4)
        victim = ring.alive_ids()[0]
        ring.crash(victim)
        with pytest.raises(NodeAbsentError):
            ring.lookup(victim, 5)

    def test_record_access_feeds_tracker(self):
        ring = ChordRing.build(16, space=IdSpace(12), seed=5)
        source = ring.alive_ids()[0]
        key = (source + 1000) % 2**12
        destination = ring.responsible(key)
        ring.lookup(source, key)
        if destination != source:
            assert ring.node(source).tracker.frequency(destination) == 1.0


class TestChurnLookups:
    def test_timeouts_then_recovery(self):
        ring = ChordRing.build(64, space=IdSpace(16), seed=6)
        ids = ring.alive_ids()
        # Crash a quarter of the ring without stabilizing anyone.
        for victim in ids[::4]:
            ring.crash(victim)
        survivors = ring.alive_ids()
        outcomes = [ring.lookup(survivors[i % len(survivors)], key)
                    for i, key in enumerate(range(0, 2**16, 911))]
        # Lookups may time out against stale entries but the ring
        # self-heals by evicting them; most queries must still succeed.
        success_rate = sum(r.succeeded for r in outcomes) / len(outcomes)
        assert success_rate > 0.8
        # After global stabilization everything works again.
        ring.stabilize_all()
        for key in range(0, 2**16, 911):
            result = ring.lookup(survivors[0], key)
            assert result.succeeded
            assert result.timeouts == 0

    def test_eviction_learns_from_timeouts(self):
        ring = ChordRing.build(32, space=IdSpace(16), seed=7)
        ids = ring.alive_ids()
        source = ids[0]
        victim = ring.node(source).successors[0]
        ring.crash(victim)
        key = victim  # route straight at the dead successor
        first = ring.lookup(source, key)
        assert first.timeouts >= 1
        assert victim not in ring.node(source).neighbor_ids()
