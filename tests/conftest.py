"""Shared fixtures for the whole test tree.

``small_universe`` is the one way tests build overlay instances: a
factory fixture taking ``(overlay, n, bits, seed)`` — the same copy-
pasted defaults half the suite used to re-declare locally. Using the
factory keeps universe parameters greppable in one place and gives every
test file the same meaning for "a small ring".
"""

from __future__ import annotations

import pytest

from repro.chord.ring import ChordRing
from repro.kademlia.network import KademliaNetwork
from repro.pastry.network import PastryNetwork
from repro.util.ids import IdSpace


@pytest.fixture
def small_universe():
    """Factory for small stabilized overlays: ``small_universe("chord")``.

    Extra keyword arguments forward to the overlay's ``build`` (e.g.
    ``successor_list_size`` for Chord, ``leaf_radius`` for Pastry).
    """

    def build(overlay: str = "chord", n: int = 32, bits: int = 16, seed: int = 3, **kwargs):
        space = IdSpace(bits)
        if overlay == "chord":
            return ChordRing.build(n, space=space, seed=seed, **kwargs)
        if overlay == "pastry":
            return PastryNetwork.build(n, space=space, seed=seed, **kwargs)
        if overlay == "kademlia":
            return KademliaNetwork.build(n, space=space, seed=seed, **kwargs)
        raise ValueError(f"unknown overlay {overlay!r}")

    return build
