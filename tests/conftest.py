"""Shared fixtures for the whole test tree.

``small_universe`` is the one way tests build overlay instances: a
factory fixture taking ``(overlay, n, bits, seed)`` — the same copy-
pasted defaults half the suite used to re-declare locally. Using the
factory keeps universe parameters greppable in one place and gives every
test file the same meaning for "a small ring".

``stable_config`` is its experiment-level sibling: a factory for small
stable-mode :class:`~repro.sim.runner.ExperimentConfig` objects,
parameterized by workload scenario name. It replaces the ``small_stable``
/ ``base_config`` helpers that ``tests/sim`` and ``tests/experiments``
each used to re-declare with their own Zipf-stream defaults.
"""

from __future__ import annotations

import pytest

from repro.chord.ring import ChordRing
from repro.kademlia.network import KademliaNetwork
from repro.pastry.network import PastryNetwork
from repro.util.ids import IdSpace


@pytest.fixture
def small_universe():
    """Factory for small stabilized overlays: ``small_universe("chord")``.

    Extra keyword arguments forward to the overlay's ``build`` (e.g.
    ``successor_list_size`` for Chord, ``leaf_radius`` for Pastry).
    """

    def build(overlay: str = "chord", n: int = 32, bits: int = 16, seed: int = 3, **kwargs):
        space = IdSpace(bits)
        if overlay == "chord":
            return ChordRing.build(n, space=space, seed=seed, **kwargs)
        if overlay == "pastry":
            return PastryNetwork.build(n, space=space, seed=seed, **kwargs)
        if overlay == "kademlia":
            return KademliaNetwork.build(n, space=space, seed=seed, **kwargs)
        raise ValueError(f"unknown overlay {overlay!r}")

    return build


@pytest.fixture(scope="session")
def stable_config():
    """Factory for small stable-mode experiment configs, parameterized by
    workload name: ``stable_config("chord", workload="drifting-zipf:30")``.

    Defaults match the historical ``tests/sim`` miniature (n=64, bits=18,
    1500 queries, seed 2); every :class:`ExperimentConfig` field is
    overridable by keyword. Session-scoped so class-scoped fixtures may
    depend on it — the factory itself is stateless.
    """
    from repro.sim.runner import ExperimentConfig

    def build(overlay: str = "chord", workload: str = "static-zipf", **overrides):
        defaults = dict(
            overlay=overlay, n=64, bits=18, queries=1500, seed=2, workload=workload
        )
        defaults.update(overrides)
        return ExperimentConfig(**defaults)

    return build
