"""End-to-end protocol integration: overlays grown purely by join messages.

The unit tests use global-view construction (``build``); these grow whole
networks through :meth:`join_via` only — every table entry a node holds
was learned through routed lookups and stabilization, never injected —
and then run the paper's comparison on the organically-grown overlay.
"""

import random

import pytest

from repro.chord.ring import ChordRing, optimal_policy
from repro.pastry.network import PastryNetwork
from repro.util.ids import IdSpace


def grow_chord(n, bits=16, seed=0, stabilize_every=4):
    """A ring bootstrapped from two nodes, grown join-by-join."""
    rng = random.Random(seed)
    ids = rng.sample(range(2**bits), n)
    ring = ChordRing(IdSpace(bits))
    ring.add_node(ids[0])
    ring.add_node(ids[1])
    ring.stabilize_all()
    for index, node_id in enumerate(ids[2:], start=2):
        bootstrap = ids[rng.randrange(index)]
        ring.join_via(node_id, bootstrap)
        if index % stabilize_every == 0:
            ring.stabilize_all()  # periodic maintenance, as deployed
    ring.stabilize_all()
    return ring


def grow_pastry(n, bits=16, seed=0, stabilize_every=4):
    rng = random.Random(seed)
    ids = rng.sample(range(2**bits), n)
    network = PastryNetwork(IdSpace(bits))
    network.add_node(ids[0])
    network.add_node(ids[1])
    network.stabilize_all()
    for index, node_id in enumerate(ids[2:], start=2):
        bootstrap = ids[rng.randrange(index)]
        network.join_via(node_id, bootstrap)
        if index % stabilize_every == 0:
            network.stabilize_all()
    network.stabilize_all()
    return network


class TestOrganicChord:
    @pytest.fixture(scope="class")
    def ring(self):
        return grow_chord(48, seed=3)

    def test_all_lookups_correct(self, ring):
        rng = random.Random(3)
        ids = ring.alive_ids()
        for __ in range(60):
            source = ids[rng.randrange(len(ids))]
            key = rng.randrange(2**16)
            result = ring.lookup(source, key, record_access=False)
            assert result.succeeded
            assert result.destination == ring.responsible(key)

    def test_selection_works_on_grown_ring(self, ring):
        rng = random.Random(4)
        source = ring.alive_ids()[0]
        frequencies = {peer: float(rng.randint(1, 30)) for peer in ring.alive_ids()[1:30]}
        ring.seed_frequencies(source, frequencies)
        result = ring.recompute_auxiliary(source, 5, optimal_policy, random.Random(5))
        assert len(result.auxiliary) == 5


class TestOrganicPastry:
    @pytest.fixture(scope="class")
    def network(self):
        return grow_pastry(48, seed=6)

    def test_all_lookups_correct(self, network):
        rng = random.Random(6)
        ids = network.alive_ids()
        for __ in range(60):
            source = ids[rng.randrange(len(ids))]
            key = rng.randrange(2**16)
            result = network.lookup(source, key, record_access=False)
            assert result.succeeded
            assert result.destination == network.responsible(key)


class TestGrownUnderInterleavedChurn:
    def test_join_crash_interleaving_stays_consistent(self):
        """Joins, crashes and rejoins interleaved; after final maintenance
        everything routes correctly again."""
        ring = grow_chord(24, seed=9)
        rng = random.Random(9)
        ids = ring.alive_ids()
        for step in range(12):
            victim = ids[rng.randrange(len(ids))]
            if ring.node(victim).alive and ring.alive_count() > 4:
                ring.crash(victim)
            elif not ring.node(victim).alive:
                bootstrap = rng.choice(ring.alive_ids())
                ring.join_via(victim, bootstrap)
            if step % 3 == 0:
                ring.stabilize_all()
        ring.stabilize_all()
        survivors = ring.alive_ids()
        for __ in range(40):
            source = survivors[rng.randrange(len(survivors))]
            key = rng.randrange(2**16)
            result = ring.lookup(source, key, record_access=False)
            assert result.succeeded
            assert result.destination == ring.responsible(key)
