"""Unit tests for the timing harness and statistics."""

import pytest

from repro.perf.harness import BenchTiming, measure, percentile
from repro.util.errors import ConfigurationError


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_median_even_is_lower_of_middle_pair(self):
        # Nearest-rank: no interpolation.
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0

    def test_extremes(self):
        samples = [float(i) for i in range(1, 11)]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 10.0

    def test_p95(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0.95) == 95.0

    def test_empty_is_nan(self):
        assert percentile([], 0.5) != percentile([], 0.5)  # NaN

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 1.5)


class TestMeasure:
    def test_counts_calls(self):
        calls = []
        timing = measure("t", lambda: calls.append(1), repeats=5, warmup=2)
        assert len(calls) == 7
        assert timing.repeats == 5
        assert timing.warmup == 2

    def test_ordering_invariants(self):
        timing = measure("t", lambda: sum(range(500)), repeats=9, warmup=1)
        assert 0 <= timing.min_s <= timing.median_s <= timing.p95_s <= timing.max_s
        assert timing.min_s <= timing.mean_s <= timing.max_s
        assert timing.ops_per_s > 0

    def test_round_trips_through_dict(self):
        timing = measure("t", lambda: None, repeats=3, warmup=0)
        restored = BenchTiming.from_dict("t", timing.to_dict())
        assert restored == timing

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            measure("t", lambda: None, repeats=0)
        with pytest.raises(ConfigurationError):
            measure("t", lambda: None, warmup=-1)
