"""End-to-end check of ``python -m repro bench`` at test scale.

Runs the bench machinery with the micro/macro suites monkeypatched down
to trivially fast stand-ins — the CLI surface, document assembly,
baseline comparison, and exit codes are what's under test, not timings.
"""

import json

import pytest

import repro.cli as cli
import repro.perf.runner as runner_module
from repro.perf.harness import measure
from repro.perf.runner import BENCH_SCHEMA, run_bench, write_bench


@pytest.fixture
def tiny_bench(monkeypatch):
    def fake_micro(smoke=False):
        return {
            "pastry_cost_scalar_n1024": measure("s", lambda: sum(range(200)), repeats=3, warmup=0),
            "pastry_cost_vectorized_n1024": measure("v", lambda: None, repeats=3, warmup=0),
        }

    def fake_macro(smoke=False):
        return {"cell": measure("cell", lambda: None, repeats=1, warmup=0)}

    monkeypatch.setattr(runner_module, "micro_benchmarks", fake_micro)
    monkeypatch.setattr(runner_module, "macro_benchmarks", fake_macro)

    def fake_identity(jobs, smoke=False):
        return {"jobs": jobs, "sweep_cells": 0, "serial_s": 0.0, "parallel_s": 0.0,
                "identical": True}

    monkeypatch.setattr(runner_module, "parallel_identity_check", fake_identity)


class TestRunBench:
    def test_document_shape(self, tiny_bench):
        document = run_bench(smoke=True, jobs=1)
        assert document["schema"] == BENCH_SCHEMA
        assert document["mode"] == "smoke"
        assert "pastry_cost_scalar_n1024" in document["micro"]
        assert document["parallel"]["identical"] is True
        # The paired kernel entries produce a speedup ratio.
        assert document["speedups"]["pastry_cost_n1024"] > 0

    def test_write_is_stable_json(self, tiny_bench, tmp_path):
        document = run_bench(smoke=True, jobs=1)
        path = write_bench(document, tmp_path / "bench.json")
        assert json.loads(path.read_text())["schema"] == BENCH_SCHEMA


class TestBenchCommand:
    def test_smoke_run_writes_output(self, tiny_bench, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = cli.main(["bench", "--smoke", "--jobs", "1", "--output", str(out)])
        assert code == 0
        assert json.loads(out.read_text())["mode"] == "smoke"
        assert "vectorized speedups" in capsys.readouterr().out

    def test_check_passes_against_self(self, tiny_bench, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert cli.main(["bench", "--smoke", "--jobs", "1", "--output", str(out)]) == 0
        assert cli.main(["bench", "--smoke", "--jobs", "1", "--check", str(out),
                         "--threshold", "1000"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tiny_bench, tmp_path, capsys):
        baseline = {
            "schema": BENCH_SCHEMA,
            "micro": {"pastry_cost_scalar_n1024": {
                "repeats": 3, "warmup": 0, "min_s": 1e-9, "median_s": 1e-9,
                "mean_s": 1e-9, "p95_s": 1e-9, "max_s": 1e-9}},
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        code = cli.main(["bench", "--smoke", "--jobs", "1", "--check", str(path)])
        assert code == 1
        assert "regression" in capsys.readouterr().err
