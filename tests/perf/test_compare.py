"""Unit tests for bench-document loading and regression detection."""

import json

import pytest

from repro.perf.compare import Regression, find_regressions, load_bench
from repro.util.errors import ConfigurationError


def _document(micro_medians):
    return {
        "schema": "BENCH_v1",
        "micro": {
            name: {"repeats": 5, "warmup": 1, "min_s": median, "median_s": median,
                   "mean_s": median, "p95_s": median, "max_s": median}
            for name, median in micro_medians.items()
        },
        "macro": {},
    }


class TestLoadBench:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_document({"a": 0.01})))
        assert load_bench(path)["micro"]["a"]["median_s"] == 0.01

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_bench(tmp_path / "absent.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_bench(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"schema": "BENCH_v0", "micro": {}}))
        with pytest.raises(ConfigurationError):
            load_bench(path)


class TestFindRegressions:
    def test_flags_slowdowns_past_threshold(self):
        baseline = _document({"fast": 0.001, "slow": 0.010})
        current = _document({"fast": 0.001, "slow": 0.025})
        regressions = find_regressions(baseline, current, threshold=2.0)
        assert [r.name for r in regressions] == ["slow"]
        assert regressions[0].ratio == pytest.approx(2.5)

    def test_within_threshold_passes(self):
        baseline = _document({"a": 0.010})
        current = _document({"a": 0.019})
        assert find_regressions(baseline, current, threshold=2.0) == []

    def test_speedups_never_flagged(self):
        baseline = _document({"a": 0.010})
        current = _document({"a": 0.001})
        assert find_regressions(baseline, current) == []

    def test_only_common_names_compared(self):
        baseline = _document({"renamed_old": 0.001})
        current = _document({"renamed_new": 1.0})
        assert find_regressions(baseline, current) == []

    def test_sorted_worst_first(self):
        baseline = _document({"a": 0.001, "b": 0.001})
        current = _document({"a": 0.003, "b": 0.010})
        regressions = find_regressions(baseline, current)
        assert [r.name for r in regressions] == ["b", "a"]

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            find_regressions(_document({}), _document({}), threshold=1.0)

    def test_describe_mentions_ratio(self):
        regression = Regression("kern", baseline_median_s=0.001, current_median_s=0.004)
        assert "4.00x" in regression.describe()
