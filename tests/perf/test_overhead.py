"""Unit tests for the disabled-tracing overhead bench (cheap pieces only;
the full gated measurement runs via ``repro bench`` in CI)."""

from repro.perf.overhead import OVERHEAD_THRESHOLD, _build_workload, _trial_ratio


class TestWorkload:
    def test_deterministic_lookup_stream(self):
        overlay_a, pairs_a = _build_workload("chord", 32, 40)
        overlay_b, pairs_b = _build_workload("chord", 32, 40)
        assert pairs_a == pairs_b
        assert overlay_a.alive_ids() == overlay_b.alive_ids()

    def test_sources_are_alive_nodes(self):
        overlay, pairs = _build_workload("pastry", 32, 40)
        alive = set(overlay.alive_ids())
        assert all(source in alive for source, _ in pairs)


class TestTrialRatio:
    def test_ratio_is_a_sane_positive_number(self):
        overlay, pairs = _build_workload("chord", 32, 40)
        ratio = _trial_ratio(overlay, pairs, chunk=5, rounds=2)
        # One tiny trial is noisy, but a 3x swing would mean the variants
        # are not running the same workload at all.
        assert 1 / 3 < ratio < 3


class TestGate:
    def test_threshold_is_the_two_percent_claim(self):
        assert OVERHEAD_THRESHOLD == 1.02
