"""Registry shape and scenario schema round-trips."""

import pytest

from repro.util.errors import ConfigurationError
from repro.verify import REGISTRY, Scenario, generate_scenario
from repro.verify.invariants import invariants_for
from repro.verify.scenarios import OVERLAYS, STEP_OPS


class TestRegistry:
    def test_every_invariant_is_scope_dot_property(self):
        for name, invariant in REGISTRY.items():
            scope, __, prop = name.partition(".")
            assert prop, name
            assert invariant.name == name
            assert invariant.scope == scope
            assert invariant.description

    def test_covers_the_eight_layers(self):
        scopes = {invariant.scope for invariant in REGISTRY.values()}
        assert scopes == {
            "selection",
            "routing",
            "state",
            "trace",
            "engine",
            "kademlia",
            "budget",
            "cachestats",
        }
        assert len(REGISTRY) == 18

    def test_overlay_applicability(self):
        for invariant in REGISTRY.values():
            assert set(invariant.overlays) <= set(OVERLAYS)
        # Nesting (Lemma 4.1) needs the prefix cost structure: Pastry, and
        # Kademlia, whose XOR distance classes are prefix lengths.
        assert REGISTRY["selection.nesting"].overlays == ("pastry", "kademlia")
        # Per-overlay structural invariants stay overlay-pinned.
        assert REGISTRY["state.successor_lists"].overlays == ("chord",)
        assert REGISTRY["state.leaf_sets"].overlays == ("pastry",)
        assert REGISTRY["kademlia.table_coherence"].overlays == ("kademlia",)
        # The routing and responsibility oracles cover all three overlays.
        assert set(REGISTRY["routing.progress"].overlays) == set(OVERLAYS)
        assert set(REGISTRY["state.responsibility"].overlays) == set(OVERLAYS)

    def test_invariants_for_filters_both_axes(self):
        chord_state = invariants_for("state", "chord")
        assert "state.successor_lists" in chord_state
        assert "state.leaf_sets" not in chord_state
        assert invariants_for("selection", "chord") == sorted(
            name
            for name, inv in REGISTRY.items()
            if inv.scope == "selection" and "chord" in inv.overlays
        )


class TestScenarioSchema:
    def test_round_trips_through_dict(self):
        scenario = generate_scenario(7, 3)
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario

    def test_generated_scenarios_are_valid_and_deterministic(self):
        for index in range(10):
            a = generate_scenario(1, index)
            b = generate_scenario(1, index)
            assert a == b
            assert a.overlay == OVERLAYS[index % len(OVERLAYS)]
            assert all(op in STEP_OPS for op, __ in a.steps)

    def test_different_seeds_differ(self):
        assert generate_scenario(1, 0) != generate_scenario(2, 0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"overlay": "tapestry"},
            {"n": 1},
            {"n": 100, "bits": 5},
            {"k": -1},
            {"alpha": 0.0},
            {"loss_rate": 1.0},
            {"steps": ()},
            {"steps": (("explode", 1),)},
            {"steps": (("lookups", -3),)},
        ],
    )
    def test_rejects_malformed_scenarios(self, overrides):
        fields = dict(
            overlay="chord",
            seed=0,
            n=12,
            bits=12,
            k=2,
            alpha=1.2,
            loss_rate=0.0,
            steps=(("lookups", 5),),
        )
        fields.update(overrides)
        with pytest.raises(ConfigurationError):
            Scenario(**fields)
