"""``repro check`` CLI: green runs, JSON documents, repro write + replay."""

import dataclasses
import json

from repro.cli import main
from repro.core import chord_selection


def miscosted(solver):
    def broken(problem):
        result = solver(problem)
        return dataclasses.replace(result, cost=result.cost + 0.5)

    return broken


class TestCheckCommand:
    def test_green_run_writes_check_document(self, tmp_path, capsys):
        out = tmp_path / "check.json"
        code = main(["check", "--scenarios", "4", "--seed", "0", "--json", str(out)])
        assert code == 0
        assert "all invariants held" in capsys.readouterr().out
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["schema"] == "CHECK_v1"
        assert document["passed"] is True
        assert document["scenarios"] == 4
        assert all(count >= 0 for count in document["checks"].values())

    def test_failing_run_writes_replayable_repro(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(
            chord_selection,
            "select_chord_fast",
            miscosted(chord_selection.select_chord_fast),
        )
        repro_path = tmp_path / "failure.json"
        code = main(
            [
                "check",
                "--scenarios",
                "2",
                "--seed",
                "0",
                "--overlay",
                "chord",
                "--repro",
                str(repro_path),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "selection.equivalence" in captured.err
        document = json.loads(repro_path.read_text(encoding="utf-8"))
        assert document["schema"] == "VERIFY_REPRO_v1"

        # Replay under the mutation: the violation reproduces (exit 1).
        assert main(["check", "--replay", str(repro_path)]) == 1
        # Replay after the fix: green (exit 0).
        monkeypatch.undo()
        assert main(["check", "--replay", str(repro_path)]) == 0
        assert "replay PASSED" in capsys.readouterr().out
