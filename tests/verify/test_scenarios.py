"""Scenario engine: green runs, determinism, and check-document identity."""

import json

from repro.obs.manifest import strip_volatile
from repro.verify import Scenario, check_scenarios, run_scenario
from repro.verify.scenarios import generate_scenario


def scripted(overlay, **overrides):
    fields = dict(
        overlay=overlay,
        seed=11,
        n=16,
        bits=12,
        k=2,
        alpha=1.2,
        loss_rate=0.0,
        steps=(
            ("recompute", 0),
            ("lookups", 12),
            ("crash_burst", 3),
            ("lookups", 8),
            ("corrupt", 2),
            ("stabilize", 0),
            ("recompute", 0),
            ("lookups", 12),
        ),
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestRunScenario:
    def test_scripted_scenario_is_green_on_both_overlays(self):
        for overlay in ("chord", "pastry"):
            report = run_scenario(scripted(overlay))
            assert report.passed, report.violations
            assert report.lookups == 32
            # Every layer of the registry actually got exercised.
            scopes = {name.split(".")[0] for name, n in report.checks.items() if n}
            assert scopes == {
                "selection",
                "routing",
                "state",
                "trace",
                "engine",
                "cachestats",
            }

    def test_report_is_deterministic(self):
        scenario = generate_scenario(5, 1)
        first = run_scenario(scenario).to_dict()
        second = run_scenario(scenario).to_dict()
        assert first == second

    def test_lossy_scenario_checks_retry_bounds(self):
        report = run_scenario(scripted("chord", loss_rate=0.15))
        assert report.passed, report.violations
        assert report.checks["routing.retry_bounds"] > 0


class TestCheckScenarios:
    def test_small_search_is_green_and_bit_identical(self):
        first = check_scenarios(count=6, seed=0)
        second = check_scenarios(count=6, seed=0)
        assert first["passed"] and first["scenarios_failed"] == 0
        assert first["lookups"] > 0
        canonical = lambda doc: json.dumps(strip_volatile(doc), sort_keys=True)
        assert canonical(first) == canonical(second)

    def test_overlay_pin_restricts_applicable_invariants(self):
        document = check_scenarios(count=2, seed=0, overlay="chord")
        assert document["overlay"] == "chord"
        assert "state.leaf_sets" not in document["checks"]
        assert document["checks"]["state.successor_lists"] > 0
