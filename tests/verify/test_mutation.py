"""Mutation tests: deliberately broken code must be caught, shrunk and
replayable.

This is the acceptance gate for the whole subsystem: plant a bug in a
solver or a router, watch the invariant search flag it, shrink the
failing scenario, write the repro JSON, and confirm the JSON replays to
the same violation while the bug is in — and goes green once it is out.
"""

import dataclasses

import pytest

from repro.core import chord_selection, kademlia_selection, pastry_selection
from repro.util.errors import ConfigurationError
from repro.verify import (
    check_scenarios,
    failure_document,
    load_failure,
    replay_failure,
    run_scenario,
    shrink,
)
from repro.verify.scenarios import generate_scenario, generate_scenarios


def miscosted(solver, delta=0.5):
    """A solver whose reported cost is off by ``delta`` (selection kept)."""

    def broken(problem):
        result = solver(problem)
        return dataclasses.replace(result, cost=result.cost + delta)

    return broken


def first_chord_scenario_with_selection(master_seed=0, count=20):
    for scenario in generate_scenarios(count, master_seed, "chord"):
        if any(op == "recompute" for op, __ in scenario.steps):
            return scenario
    raise AssertionError("no chord scenario with a recompute step")


class TestMutationIsCaught:
    def test_overspending_allocator_flagged_as_infeasible(self, monkeypatch):
        from repro.core import budget as budget_mod

        scenario = next(iter(generate_scenarios(1, 0, "chord")))
        assert any(op == "allocate" for op, __ in scenario.steps)
        assert run_scenario(scenario).passed
        real = budget_mod.allocate_greedy

        def overspending(curves, total):
            allocation = real(curves, total)
            # One extra pointer: either the spent total now exceeds the
            # budget, or some node's quota exceeds its capacity.
            node = min(allocation.quotas)
            allocation.quotas[node] += 1
            return allocation

        monkeypatch.setattr(budget_mod, "allocate_greedy", overspending)
        report = run_scenario(scenario)
        assert not report.passed
        assert any(
            violation.invariant == "budget.feasibility"
            for violation in report.violations
        )

    def test_broken_fast_solver_flagged_as_equivalence(self, monkeypatch):
        scenario = first_chord_scenario_with_selection()
        assert run_scenario(scenario).passed
        monkeypatch.setattr(
            chord_selection,
            "select_chord_fast",
            miscosted(chord_selection.select_chord_fast),
        )
        report = run_scenario(scenario)
        assert not report.passed
        assert report.violations[0].invariant == "selection.equivalence"

    def test_broken_pastry_greedy_flagged(self, monkeypatch):
        scenario = next(iter(generate_scenarios(2, 0, "pastry")))
        monkeypatch.setattr(
            pastry_selection,
            "select_pastry_greedy",
            miscosted(pastry_selection.select_pastry_greedy),
        )
        report = run_scenario(scenario)
        assert not report.passed
        assert any(
            violation.invariant in ("selection.equivalence", "selection.nesting")
            for violation in report.violations
        )

    def test_broken_kademlia_greedy_flagged(self, monkeypatch):
        scenario = next(iter(generate_scenarios(2, 0, "kademlia")))
        assert run_scenario(scenario).passed
        monkeypatch.setattr(
            kademlia_selection,
            "select_kademlia_greedy",
            miscosted(kademlia_selection.select_kademlia_greedy),
        )
        report = run_scenario(scenario)
        assert not report.passed
        assert any(
            violation.invariant in ("selection.equivalence", "selection.nesting")
            for violation in report.violations
        )


class TestShrinkAndReplay:
    def test_shrink_rejects_a_passing_scenario(self):
        scenario = first_chord_scenario_with_selection()
        with pytest.raises(ConfigurationError):
            shrink(scenario, "selection.equivalence")

    def test_end_to_end_catch_shrink_replay(self, monkeypatch, tmp_path):
        scenario = first_chord_scenario_with_selection()
        monkeypatch.setattr(
            chord_selection,
            "select_chord_fast",
            miscosted(chord_selection.select_chord_fast),
        )
        result = shrink(scenario, "selection.equivalence")
        # The shrunk repro is genuinely smaller and still violating.
        assert result.scenario.n <= scenario.n
        assert len(result.scenario.steps) <= len(scenario.steps)
        assert result.violation.invariant == "selection.equivalence"

        document = failure_document(scenario, result)
        path = tmp_path / "failure.json"
        import json

        path.write_text(json.dumps(document, sort_keys=True, indent=2))
        loaded = load_failure(path)
        assert loaded["invariant"] == "selection.equivalence"
        assert loaded["original"] == scenario.to_dict()

        # While the bug is in: the repro file reproduces the violation.
        replayed = replay_failure(loaded)
        assert not replayed.passed
        assert replayed.violations[0].invariant == "selection.equivalence"

        # Bug out: the same file replays green.
        monkeypatch.undo()
        assert replay_failure(loaded).passed

    def test_check_scenarios_shrinks_the_failure(self, monkeypatch):
        monkeypatch.setattr(
            chord_selection,
            "select_chord_fast",
            miscosted(chord_selection.select_chord_fast),
        )
        document = check_scenarios(count=4, seed=0, overlay="chord", shrink_budget=40)
        assert not document["passed"]
        assert document["scenarios_failed"] > 0
        failure = document["failures"][0]
        assert failure["schema"] == "VERIFY_REPRO_v1"
        assert failure["invariant"] == "selection.equivalence"
        shrunk = failure["scenario"]
        original = failure["original"]
        assert (shrunk["n"], len(shrunk["steps"])) <= (
            original["n"],
            len(original["steps"]),
        )


class TestKademliaMutation:
    def test_unfiltered_candidate_breaks_progress(self, monkeypatch):
        """A router that forwards to the best contact even when it is *not*
        strictly closer must trip ``routing.progress`` (the XOR distance no
        longer shrinks on every hop)."""
        from repro.kademlia import routing as kademlia_routing

        def no_filter(node, key):
            best = None
            best_distance = None
            for neighbor in node.core | node.auxiliary:
                distance = neighbor ^ key
                if best_distance is None or distance < best_distance:
                    best = neighbor
                    best_distance = distance
            return best  # may equal a contact farther than the node itself

        scenario = next(iter(generate_scenarios(2, 0, "kademlia")))
        assert run_scenario(scenario).passed
        monkeypatch.setattr(kademlia_routing, "_best_candidate", no_filter)
        report = run_scenario(scenario)
        assert not report.passed
        assert any(
            violation.invariant in ("routing.progress", "routing.termination")
            for violation in report.violations
        )

    def test_stale_class_index_breaks_table_coherence(self, monkeypatch):
        """A ``set_auxiliary`` that leaves replaced pointers filed in the
        per-class index must trip ``kademlia.table_coherence``."""
        from repro.kademlia.node import KademliaNode

        def sloppy(self, pointers):
            # Forgets to unfile dropped pointers from ``classes``.
            self.auxiliary = {p for p in pointers if p != self.node_id}
            for pointer in self.auxiliary:
                self._add_to_class(pointer)

        caught = False
        monkeypatch.setattr(KademliaNode, "set_auxiliary", sloppy)
        # Not every scenario replaces a pointer (a tiny population can
        # re-select the same set every round); scan until one does.
        for scenario in generate_scenarios(12, 0, "kademlia"):
            report = run_scenario(scenario)
            if report.passed:
                continue
            assert any(
                violation.invariant == "kademlia.table_coherence"
                for violation in report.violations
            )
            monkeypatch.undo()
            assert run_scenario(scenario).passed  # bug out -> green again
            caught = True
            break
        assert caught, "no scenario tripped the planted class-index bug"

    def test_kademlia_failure_shrinks_to_repro_schema(self, monkeypatch):
        monkeypatch.setattr(
            kademlia_selection,
            "select_kademlia_greedy",
            miscosted(kademlia_selection.select_kademlia_greedy),
        )
        document = check_scenarios(
            count=4, seed=0, overlay="kademlia", shrink_budget=40
        )
        assert not document["passed"]
        failure = document["failures"][0]
        assert failure["schema"] == "VERIFY_REPRO_v1"
        assert failure["scenario"]["overlay"] == "kademlia"


class TestCachestatsMutation:
    def _scenario_with_credit(self, mutant_active_check, count=12):
        """First chord scenario whose lookups actually earn auxiliary
        credit — a scenario where every credit is zero cannot distinguish
        single from double crediting."""
        for scenario in generate_scenarios(count, 0, "chord"):
            if mutant_active_check(scenario):
                return scenario
        raise AssertionError("no scenario tripped the planted crediting bug")

    def test_double_crediting_recorder_caught(self, monkeypatch):
        """A recorder that credits every hop twice must trip
        ``cachestats.conservation``: the credits no longer telescope to
        oblivious - residual - observed hops."""
        from repro.obs import attribution as attribution_module

        monkeypatch.setattr(
            attribution_module, "_credit", lambda r_from, r_to: 2 * (r_from - r_to - 1)
        )

        def fires(scenario):
            report = run_scenario(scenario)
            return not report.passed and all(
                violation.invariant == "cachestats.conservation"
                for violation in report.violations
            )

        scenario = self._scenario_with_credit(fires)
        monkeypatch.undo()
        assert run_scenario(scenario).passed  # bug out -> green again

    def test_double_crediting_shrinks_to_repro_and_replays(self, monkeypatch, tmp_path):
        from repro.obs import attribution as attribution_module

        monkeypatch.setattr(
            attribution_module, "_credit", lambda r_from, r_to: 2 * (r_from - r_to - 1)
        )
        scenario = self._scenario_with_credit(
            lambda candidate: not run_scenario(candidate).passed
        )
        result = shrink(scenario, "cachestats.conservation", budget=60)
        assert result.scenario.n <= scenario.n
        assert len(result.scenario.steps) <= len(scenario.steps)
        assert result.violation.invariant == "cachestats.conservation"

        document = failure_document(scenario, result)
        assert document["schema"] == "VERIFY_REPRO_v1"
        path = tmp_path / "cachestats_failure.json"
        import json

        path.write_text(json.dumps(document, sort_keys=True, indent=2))
        loaded = load_failure(path)

        # Bug in: the repro file reproduces the conservation violation.
        replayed = replay_failure(loaded)
        assert not replayed.passed
        assert replayed.violations[0].invariant == "cachestats.conservation"

        # Bug out: the same file replays green.
        monkeypatch.undo()
        assert replay_failure(loaded).passed

    def test_hit_inflating_recorder_caught(self, monkeypatch):
        """A recorder that books phantom hits must trip the hits <= uses
        side of ``cachestats.conservation``."""
        from repro.obs import attribution as attribution_module

        original = attribution_module.AttributionRecorder.record_lookup

        def inflating(self, result, events):
            original(self, result, events)
            for event in events:
                if event.delivered:
                    self._pointer(
                        event.forwarder, event.target, event.pointer_class
                    ).hits += 1

        scenario = generate_scenario(0, 0, "chord")
        assert run_scenario(scenario).passed
        monkeypatch.setattr(
            attribution_module.AttributionRecorder, "record_lookup", inflating
        )
        report = run_scenario(scenario)
        assert not report.passed
        assert any(
            violation.invariant == "cachestats.conservation"
            for violation in report.violations
        )


class TestRoutingMutation:
    def test_tampered_recorder_breaks_reconciliation(self, monkeypatch):
        """A recorder that silently drops lookups must trip
        ``trace.reconciliation`` (counters no longer cover the stream)."""
        from repro.obs import recorder as recorder_module

        original = recorder_module.LookupTracer.record_lookup
        calls = iter(range(10**9))

        def leaky(self, result, events):
            if next(calls) % 5 != 4:  # drop every fifth lookup on the floor
                original(self, result, events)

        scenario = generate_scenario(0, 0, "chord")
        assert run_scenario(scenario).passed
        monkeypatch.setattr(recorder_module.LookupTracer, "record_lookup", leaky)
        report = run_scenario(scenario)
        assert not report.passed
        assert any(
            violation.invariant == "trace.reconciliation"
            for violation in report.violations
        )
