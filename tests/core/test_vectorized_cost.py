"""Vectorized kernels must match the scalar references exactly.

Property-based: hypothesis generates random id spaces, frequency maps,
and pointer sets; the NumPy and scalar evaluators must agree to 1e-9
(the only permitted difference is float summation order).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import (
    _MAX_VECTOR_BITS,
    VECTORIZE_THRESHOLD,
    chord_cost,
    chord_cost_scalar,
    chord_cost_vectorized,
    chord_sorted_offsets,
    pastry_cost,
    pastry_cost_scalar,
    pastry_cost_vectorized,
)
from repro.util.ids import IdSpace

np = pytest.importorskip("numpy")


@st.composite
def cost_instances(draw):
    """(space, source, frequencies, core, auxiliary) with distinct ids."""
    bits = draw(st.integers(min_value=4, max_value=48))
    space = IdSpace(bits)
    universe = st.integers(min_value=0, max_value=space.size - 1)
    peers = draw(st.lists(universe, min_size=1, max_size=40, unique=True))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=len(peers),
            max_size=len(peers),
        )
    )
    frequencies = dict(zip(peers, weights))
    source = draw(universe)
    core = draw(st.lists(universe, min_size=0, max_size=12, unique=True))
    auxiliary = draw(st.lists(universe, min_size=0, max_size=8, unique=True))
    return space, source, frequencies, core, auxiliary


class TestPastryEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(cost_instances())
    def test_matches_scalar(self, instance):
        space, _, frequencies, core, auxiliary = instance
        scalar = pastry_cost_scalar(space, frequencies, core, auxiliary)
        vectorized = pastry_cost_vectorized(space, frequencies, core, auxiliary)
        assert vectorized == pytest.approx(scalar, abs=1e-9, rel=1e-9)

    def test_empty_pointers(self):
        space = IdSpace(8)
        frequencies = {3: 2.0, 77: 1.5}
        assert pastry_cost_vectorized(space, frequencies, [], []) == pytest.approx(
            pastry_cost_scalar(space, frequencies, [], [])
        )


class TestChordEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(cost_instances())
    def test_matches_scalar(self, instance):
        space, source, frequencies, core, auxiliary = instance
        scalar = chord_cost_scalar(space, source, frequencies, core, auxiliary)
        vectorized = chord_cost_vectorized(space, source, frequencies, core, auxiliary)
        assert vectorized == pytest.approx(scalar, abs=1e-9, rel=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(cost_instances())
    def test_precomputed_offsets_match(self, instance):
        space, source, frequencies, core, auxiliary = instance
        offsets = chord_sorted_offsets(space, source, core, auxiliary)
        direct = chord_cost_vectorized(space, source, frequencies, core, auxiliary)
        hoisted = chord_cost_vectorized(
            space, source, frequencies, core, auxiliary, sorted_offsets=offsets
        )
        assert hoisted == pytest.approx(direct, abs=1e-9, rel=1e-9)
        scalar = chord_cost_scalar(
            space, source, frequencies, core, auxiliary, sorted_offsets=offsets
        )
        assert scalar == pytest.approx(direct, abs=1e-9, rel=1e-9)

    def test_empty_pointers(self):
        space = IdSpace(8)
        frequencies = {3: 2.0, 77: 1.5}
        assert chord_cost_vectorized(space, 5, frequencies, [], []) == pytest.approx(
            chord_cost_scalar(space, 5, frequencies, [], [])
        )

    def test_source_excluded_from_pointers(self):
        # A pointer equal to the source has gap 0 and must be ignored.
        space = IdSpace(8)
        frequencies = {i: 1.0 for i in range(10, 90)}
        scalar = chord_cost_scalar(space, 42, frequencies, [42, 50], [60])
        vectorized = chord_cost_vectorized(space, 42, frequencies, [42, 50], [60])
        assert vectorized == pytest.approx(scalar)


class TestDispatch:
    def test_large_instances_use_vector_path(self):
        space = IdSpace(16)
        frequencies = {i * 37 % space.size: float(i % 11 + 1) for i in range(VECTORIZE_THRESHOLD + 8)}
        core, auxiliary = [5, 900], [2000]
        assert pastry_cost(space, frequencies, core, auxiliary) == pytest.approx(
            pastry_cost_scalar(space, frequencies, core, auxiliary)
        )
        assert chord_cost(space, 1, frequencies, core, auxiliary) == pytest.approx(
            chord_cost_scalar(space, 1, frequencies, core, auxiliary)
        )

    def test_wide_id_spaces_stay_scalar(self):
        # frexp bit lengths are only exact below 2**53; dispatch must not
        # route a 128-bit space to the vector path.
        space = IdSpace(128)
        assert space.bits > _MAX_VECTOR_BITS
        frequencies = {(1 << 100) + i: 1.0 for i in range(VECTORIZE_THRESHOLD + 8)}
        pointers = [1 << 90]
        assert pastry_cost(space, frequencies, pointers, []) == pytest.approx(
            pastry_cost_scalar(space, frequencies, pointers, [])
        )
        assert chord_cost(space, 7, frequencies, pointers, []) == pytest.approx(
            chord_cost_scalar(space, 7, frequencies, pointers, [])
        )
