"""Cross-cutting property tests on the selection layer.

These encode the paper's structural claims as executable properties:

* optimality dominance: optimal <= oblivious <= empty set, in eq.-1 cost;
* the nesting property (P) of Section IV-B, observed on actual outputs;
* marginal gains: each extra pointer helps, but by (weakly) less.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chord_selection import select_chord_fast
from repro.core.cost import evaluate
from repro.core.oblivious import select_chord_oblivious, select_pastry_oblivious
from repro.core.pastry_selection import select_pastry_greedy
from tests.helpers import random_problem


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_optimal_dominates_oblivious_and_empty(seed):
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=30, cores=3, k=5)
    empty_chord = evaluate(problem, [], "chord")
    empty_pastry = evaluate(problem, [], "pastry")

    chord_opt = select_chord_fast(problem)
    chord_obl = select_chord_oblivious(problem, random.Random(seed))
    assert chord_opt.cost <= chord_obl.cost + 1e-9
    assert chord_obl.cost <= empty_chord + 1e-9  # extra pointers never hurt

    pastry_opt = select_pastry_greedy(problem)
    pastry_obl = select_pastry_oblivious(problem, random.Random(seed))
    assert pastry_opt.cost <= pastry_obl.cost + 1e-9
    assert pastry_obl.cost <= empty_pastry + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_pastry_nesting_property_on_outputs(seed):
    """Property (P): with deterministic tie-breaking, the greedy's j-pointer
    selection contains its (j-1)-pointer selection."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=10, peers=25, cores=2, k=0)
    previous: frozenset[int] = frozenset()
    for k in range(1, 7):
        current = select_pastry_greedy(problem.with_k(k)).auxiliary
        assert previous <= current
        previous = current


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_diminishing_returns_chord(seed):
    """Marginal gain of the j-th pointer is non-increasing (Lemma 4.1's
    Chord analogue, implied by the DP's optimality)."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=25, cores=2, k=0)
    costs = [select_chord_fast(problem.with_k(k)).cost for k in range(6)]
    gains = [costs[i] - costs[i + 1] for i in range(5)]
    for earlier, later in zip(gains, gains[1:]):
        assert later <= earlier + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_diminishing_returns_pastry(seed):
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=25, cores=2, k=0)
    costs = [select_pastry_greedy(problem.with_k(k)).cost for k in range(6)]
    gains = [costs[i] - costs[i + 1] for i in range(5)]
    for earlier, later in zip(gains, gains[1:]):
        assert later <= earlier + 1e-9


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_scaling_frequencies_preserves_selection_cost_ratio(seed):
    """Eq. 1 is linear in the frequencies: doubling every weight doubles
    the optimal cost and permits the same optimal pointer set."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=10, peers=15, cores=2, k=3)
    doubled = problem.__class__(
        space=problem.space,
        source=problem.source,
        frequencies={peer: 2 * weight for peer, weight in problem.frequencies.items()},
        core_neighbors=problem.core_neighbors,
        k=problem.k,
    )
    for solver in (select_chord_fast, select_pastry_greedy):
        base = solver(problem)
        scaled = solver(doubled)
        assert scaled.cost == pytest.approx(2 * base.cost)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_selection_deterministic(seed):
    """Same problem -> identical selection (no hidden randomness)."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=20, cores=2, k=4)
    assert select_chord_fast(problem).auxiliary == select_chord_fast(problem).auxiliary
    assert select_pastry_greedy(problem).auxiliary == select_pastry_greedy(problem).auxiliary
