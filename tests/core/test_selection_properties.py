"""Cross-cutting property tests on the selection layer.

These encode the paper's structural claims as executable properties:

* optimality dominance: optimal <= oblivious <= empty set, in eq.-1 cost;
* the nesting property (P) of Section IV-B, observed on actual outputs;
* marginal gains: each extra pointer helps, but by (weakly) less;
* the three-way oracle: the DP, the Lemma-4.1 greedy and the exponential
  brute force must agree on optimal cost (Pastry), and the Monge-D&C fast
  path must match the quadratic DP (Chord) — including on adversarial
  weight profiles (ties everywhere, zero-frequency peers).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chord_selection import select_chord_dp, select_chord_fast
from repro.core.cost import brute_force_optimal, evaluate
from repro.core.oblivious import select_chord_oblivious, select_pastry_oblivious
from repro.core.pastry_selection import select_pastry_dp, select_pastry_greedy
from tests.helpers import random_problem


def with_weights(problem, weights):
    """Copy ``problem`` with a replacement frequency map."""
    return problem.__class__(
        space=problem.space,
        source=problem.source,
        frequencies=weights,
        core_neighbors=problem.core_neighbors,
        k=problem.k,
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_optimal_dominates_oblivious_and_empty(seed):
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=30, cores=3, k=5)
    empty_chord = evaluate(problem, [], "chord")
    empty_pastry = evaluate(problem, [], "pastry")

    chord_opt = select_chord_fast(problem)
    chord_obl = select_chord_oblivious(problem, random.Random(seed))
    assert chord_opt.cost <= chord_obl.cost + 1e-9
    assert chord_obl.cost <= empty_chord + 1e-9  # extra pointers never hurt

    pastry_opt = select_pastry_greedy(problem)
    pastry_obl = select_pastry_oblivious(problem, random.Random(seed))
    assert pastry_opt.cost <= pastry_obl.cost + 1e-9
    assert pastry_obl.cost <= empty_pastry + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_pastry_nesting_property_on_outputs(seed):
    """Property (P): with deterministic tie-breaking, the greedy's j-pointer
    selection contains its (j-1)-pointer selection."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=10, peers=25, cores=2, k=0)
    previous: frozenset[int] = frozenset()
    for k in range(1, 7):
        current = select_pastry_greedy(problem.with_k(k)).auxiliary
        assert previous <= current
        previous = current


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_diminishing_returns_chord(seed):
    """Marginal gain of the j-th pointer is non-increasing (Lemma 4.1's
    Chord analogue, implied by the DP's optimality)."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=25, cores=2, k=0)
    costs = [select_chord_fast(problem.with_k(k)).cost for k in range(6)]
    gains = [costs[i] - costs[i + 1] for i in range(5)]
    for earlier, later in zip(gains, gains[1:]):
        assert later <= earlier + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_diminishing_returns_pastry(seed):
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=25, cores=2, k=0)
    costs = [select_pastry_greedy(problem.with_k(k)).cost for k in range(6)]
    gains = [costs[i] - costs[i + 1] for i in range(5)]
    for earlier, later in zip(gains, gains[1:]):
        assert later <= earlier + 1e-9


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_scaling_frequencies_preserves_selection_cost_ratio(seed):
    """Eq. 1 is linear in the frequencies: doubling every weight doubles
    the optimal cost and permits the same optimal pointer set."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=10, peers=15, cores=2, k=3)
    doubled = problem.__class__(
        space=problem.space,
        source=problem.source,
        frequencies={peer: 2 * weight for peer, weight in problem.frequencies.items()},
        core_neighbors=problem.core_neighbors,
        k=problem.k,
    )
    for solver in (select_chord_fast, select_pastry_greedy):
        base = solver(problem)
        scaled = solver(doubled)
        assert scaled.cost == pytest.approx(2 * base.cost)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_pastry_three_way_oracle(seed):
    """The paper's two polynomial Pastry algorithms and the exponential
    ground truth must land on the same optimal eq.-2 cost. Integer weights
    keep every cost an exact float, so equality needs no tolerance."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=6, peers=7, cores=2, k=3)
    dp = select_pastry_dp(problem)
    greedy = select_pastry_greedy(problem)
    brute = brute_force_optimal(problem, "pastry")
    assert math.isclose(dp.cost, brute.cost, abs_tol=1e-9)
    assert math.isclose(greedy.cost, brute.cost, abs_tol=1e-9)
    # The returned sets must actually realize the claimed cost.
    assert math.isclose(evaluate(problem, dp.auxiliary, "pastry"), dp.cost, abs_tol=1e-9)
    assert math.isclose(
        evaluate(problem, greedy.auxiliary, "pastry"), greedy.cost, abs_tol=1e-9
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_chord_fast_matches_dp_with_ties_and_zero_frequencies(seed):
    """Differential oracle for the Chord fast path (span oracle + Monge
    divide & conquer) against the O(n^2 k) DP, on the adversarial weight
    profile: heavy ties plus peers the source never queries (weight 0),
    where tie-breaking bugs and empty-span edge cases would surface."""
    rng = random.Random(seed)
    base = random_problem(rng, bits=8, peers=12, cores=2, k=4)
    tied = with_weights(
        base,
        {peer: float(rng.choice((0, 0, 1, 2))) for peer in base.frequencies},
    )
    fast = select_chord_fast(tied)
    dp = select_chord_dp(tied)
    assert math.isclose(fast.cost, dp.cost, abs_tol=1e-9)
    assert math.isclose(evaluate(tied, fast.auxiliary, "chord"), fast.cost, abs_tol=1e-9)
    assert math.isclose(evaluate(tied, dp.auxiliary, "chord"), dp.cost, abs_tol=1e-9)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_chord_fast_matches_brute_force_on_tiny_instances(seed):
    rng = random.Random(seed)
    base = random_problem(rng, bits=6, peers=6, cores=2, k=2)
    tied = with_weights(
        base,
        {peer: float(rng.choice((0, 1, 1, 3))) for peer in base.frequencies},
    )
    fast = select_chord_fast(tied)
    brute = brute_force_optimal(tied, "chord")
    assert math.isclose(fast.cost, brute.cost, abs_tol=1e-9)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_selection_deterministic(seed):
    """Same problem -> identical selection (no hidden randomness)."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=20, cores=2, k=4)
    assert select_chord_fast(problem).auxiliary == select_chord_fast(problem).auxiliary
    assert select_pastry_greedy(problem).auxiliary == select_pastry_greedy(problem).auxiliary
