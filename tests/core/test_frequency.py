"""Unit tests for the frequency trackers (exact, Space-Saving, Lossy Counting)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.frequency import ExactFrequencyTable, LossyCountingSketch, SpaceSavingSketch
from repro.util.errors import ConfigurationError


class TestExactFrequencyTable:
    def test_counts_observations(self):
        table = ExactFrequencyTable()
        table.observe(1)
        table.observe(1)
        table.observe(2, weight=3.0)
        assert table.frequency(1) == 2.0
        assert table.frequency(2) == 3.0
        assert table.frequency(99) == 0.0
        assert table.total == 5.0
        assert len(table) == 2

    def test_observe_many(self):
        table = ExactFrequencyTable()
        table.observe_many([5, 5, 7])
        assert table.frequency(5) == 2.0
        assert table.frequency(7) == 1.0

    def test_sliding_window_evicts(self):
        table = ExactFrequencyTable(window=3)
        for peer in [1, 2, 3, 4]:
            table.observe(peer)
        assert table.frequency(1) == 0.0  # fell out of the window
        assert table.frequency(4) == 1.0
        assert table.total == 3.0

    def test_window_keeps_repeats(self):
        table = ExactFrequencyTable(window=3)
        for peer in [1, 1, 1, 1]:
            table.observe(peer)
        assert table.frequency(1) == 3.0

    def test_forget(self):
        table = ExactFrequencyTable(window=10)
        table.observe_many([1, 2, 1])
        table.forget(1)
        assert table.frequency(1) == 0.0
        assert table.total == 1.0

    def test_snapshot_limit_prefers_heavy_hitters(self):
        table = ExactFrequencyTable()
        table.observe(1, weight=10)
        table.observe(2, weight=5)
        table.observe(3, weight=1)
        assert set(table.snapshot(limit=2)) == {1, 2}
        assert table.snapshot() == {1: 10.0, 2: 5.0, 3: 1.0}

    def test_rejects_negative_weight(self):
        with pytest.raises(ConfigurationError):
            ExactFrequencyTable().observe(1, weight=-1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            ExactFrequencyTable(window=0)


class TestSpaceSaving:
    def test_tracks_within_capacity_exactly(self):
        sketch = SpaceSavingSketch(capacity=4)
        for peer in [1, 1, 2, 3]:
            sketch.observe(peer)
        assert sketch.frequency(1) == 2.0
        assert sketch.error_bound(1) == 0.0

    def test_eviction_inherits_floor(self):
        sketch = SpaceSavingSketch(capacity=2)
        sketch.observe(1)
        sketch.observe(2)
        sketch.observe(3)  # evicts the minimum (deterministically peer 1)
        assert len(sketch) == 2
        assert sketch.frequency(3) == 2.0  # floor 1 + its own observation
        assert sketch.error_bound(3) == 1.0

    def test_overestimate_invariant(self):
        """Space-Saving never under-counts and over-counts by <= total/capacity."""
        rng = random.Random(0)
        stream = [rng.randint(0, 30) for _ in range(2000)]
        truth = {}
        for peer in stream:
            truth[peer] = truth.get(peer, 0) + 1
        sketch = SpaceSavingSketch(capacity=10)
        for peer in stream:
            sketch.observe(peer)
        for peer, estimate in sketch.snapshot().items():
            assert estimate >= truth.get(peer, 0)
            assert estimate - truth.get(peer, 0) <= len(stream) / 10

    def test_heavy_hitter_survives(self):
        """A peer holding >1/capacity of the stream is always monitored."""
        sketch = SpaceSavingSketch(capacity=5)
        rng = random.Random(1)
        for _ in range(1000):
            sketch.observe(777 if rng.random() < 0.5 else rng.randint(0, 100))
        assert sketch.frequency(777) > 0

    def test_guaranteed_top_orders_by_estimate(self):
        sketch = SpaceSavingSketch(capacity=4)
        for __ in range(50):
            sketch.observe(1)
        for __ in range(10):
            sketch.observe(2)
        sketch.observe(3)
        assert sketch.guaranteed_top()[0] == 1

    def test_forget(self):
        sketch = SpaceSavingSketch(capacity=4)
        sketch.observe(1)
        sketch.forget(1)
        assert sketch.frequency(1) == 0.0


class TestLossyCounting:
    def test_exact_until_first_prune(self):
        sketch = LossyCountingSketch(epsilon=0.1)  # bucket width 10
        for peer in [1, 1, 2]:
            sketch.observe(peer)
        assert sketch.frequency(1) == 2.0
        assert sketch.frequency(2) == 1.0

    def test_prunes_rare_items(self):
        sketch = LossyCountingSketch(epsilon=0.25)  # bucket width 4
        for peer in [1, 2, 3, 4, 5, 6, 7, 8]:
            sketch.observe(peer)
        # Singletons from the first bucket are pruned at its boundary.
        assert sketch.frequency(1) == 0.0

    def test_undercount_bounded(self):
        rng = random.Random(2)
        stream = [rng.randint(0, 20) for _ in range(3000)]
        truth = {}
        for peer in stream:
            truth[peer] = truth.get(peer, 0) + 1
        epsilon = 0.01
        sketch = LossyCountingSketch(epsilon=epsilon)
        for peer in stream:
            sketch.observe(peer)
        for peer, count in truth.items():
            estimate = sketch.frequency(peer)
            assert estimate <= count
            assert count - estimate <= epsilon * len(stream)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_bad_epsilon(self, bad):
        with pytest.raises(ConfigurationError):
            LossyCountingSketch(epsilon=bad)


@given(st.lists(st.integers(0, 15), min_size=1, max_size=300))
def test_trackers_agree_on_small_streams(stream):
    """With ample capacity all three trackers report the exact counts."""
    exact = ExactFrequencyTable()
    saving = SpaceSavingSketch(capacity=16)
    lossy = LossyCountingSketch(epsilon=0.001)
    for peer in stream:
        exact.observe(peer)
        saving.observe(peer)
        lossy.observe(peer)
    assert exact.snapshot() == saving.snapshot() == lossy.snapshot()
