"""Property tests for the XOR-metric (Kademlia) auxiliary selection.

Mirrors ``test_selection_properties.py`` for the third overlay. The load-
bearing fact: Kademlia's XOR distance class ``bitlength(u XOR v)`` equals
``bits - lcp(u, v)``, so the paper's prefix-trie machinery (Section IV-B)
applies verbatim — and these properties hold for exactly the same reason
they hold on Pastry:

* three-way oracle: DP == greedy == exponential brute force in eq.-1 cost;
* the nesting property (Lemma 4.1) on actual greedy outputs;
* cost monotone non-increasing (and with diminishing returns) in k;
* the scalar cost oracle and the vectorized fast path agree exactly.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import brute_force_optimal, evaluate
from repro.core.kademlia_selection import (
    kademlia_cost_scalar,
    kademlia_cost_vectorized,
    select_kademlia_dp,
    select_kademlia_greedy,
)
from repro.core.oblivious import select_kademlia_oblivious
from tests.helpers import random_problem


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_three_way_oracle(seed):
    """DP, Lemma-4.1 greedy and the exponential ground truth agree on the
    optimal eq.-1 cost; integer weights keep the comparison exact."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=6, peers=7, cores=2, k=3)
    dp = select_kademlia_dp(problem)
    greedy = select_kademlia_greedy(problem)
    brute = brute_force_optimal(problem, "kademlia")
    assert math.isclose(dp.cost, brute.cost, abs_tol=1e-9)
    assert math.isclose(greedy.cost, brute.cost, abs_tol=1e-9)
    # The returned sets must actually realize the claimed cost.
    assert math.isclose(
        evaluate(problem, dp.auxiliary, "kademlia"), dp.cost, abs_tol=1e-9
    )
    assert math.isclose(
        evaluate(problem, greedy.auxiliary, "kademlia"), greedy.cost, abs_tol=1e-9
    )
    assert dp.algorithm == "kademlia-dp"
    assert greedy.algorithm == "kademlia-greedy"


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_nesting_property_on_outputs(seed):
    """Property (P): the greedy's j-pointer selection contains its
    (j-1)-pointer selection — Lemma 4.1 transfers to the XOR metric."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=10, peers=25, cores=2, k=0)
    previous: frozenset[int] = frozenset()
    for k in range(1, 7):
        current = select_kademlia_greedy(problem.with_k(k)).auxiliary
        assert previous <= current
        previous = current


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_cost_monotone_with_diminishing_returns(seed):
    """Optimal cost never rises in k, and marginal gains weakly shrink."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=25, cores=2, k=0)
    costs = [select_kademlia_greedy(problem.with_k(k)).cost for k in range(6)]
    for earlier, later in zip(costs, costs[1:]):
        assert later <= earlier + 1e-9
    gains = [costs[i] - costs[i + 1] for i in range(5)]
    for earlier, later in zip(gains, gains[1:]):
        assert later <= earlier + 1e-9


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_optimal_dominates_oblivious_and_empty(seed):
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=30, cores=3, k=5)
    optimal = select_kademlia_greedy(problem)
    oblivious = select_kademlia_oblivious(problem, random.Random(seed))
    empty = evaluate(problem, [], "kademlia")
    assert optimal.cost <= oblivious.cost + 1e-9
    assert oblivious.cost <= empty + 1e-9  # extra pointers never hurt
    assert oblivious.algorithm == "kademlia-oblivious"


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_scalar_oracle_matches_vectorized_path(seed):
    """The independent scalar cost loop and the NumPy kernel agree exactly
    on the same pointer sets (the PR-1 oracle-dispatch contract)."""
    numpy = None
    try:
        import numpy  # noqa: F401
    except ImportError:
        pass
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=20, cores=2, k=4)
    for auxiliary in (
        frozenset(),
        select_kademlia_greedy(problem).auxiliary,
        frozenset(list(problem.frequencies)[:2]),
    ):
        scalar = kademlia_cost_scalar(
            problem.space, problem.frequencies, problem.core_neighbors, auxiliary
        )
        assert math.isclose(
            evaluate(problem, auxiliary, "kademlia"), scalar, abs_tol=1e-9
        )
        if numpy is not None:
            vectorized = kademlia_cost_vectorized(
                problem.space, problem.frequencies, problem.core_neighbors, auxiliary
            )
            assert math.isclose(vectorized, scalar, abs_tol=1e-9)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_selection_deterministic(seed):
    """Same problem -> identical selection (no hidden randomness)."""
    rng = random.Random(seed)
    problem = random_problem(rng, bits=12, peers=20, cores=2, k=4)
    assert (
        select_kademlia_greedy(problem).auxiliary
        == select_kademlia_greedy(problem).auxiliary
    )
    assert select_kademlia_dp(problem).auxiliary == select_kademlia_dp(problem).auxiliary
