"""Tests for the frequency-oblivious baselines."""

import random

import pytest

from repro.core.cost import chord_cost, pastry_cost
from repro.core.oblivious import (
    select_chord_oblivious,
    select_pastry_oblivious,
    select_uniform_random,
)
from tests.helpers import problem_from_lists, random_problem


class TestChordOblivious:
    def test_budget_spent_when_candidates_allow(self):
        rng = random.Random(0)
        problem = random_problem(rng, bits=10, peers=60, cores=4, k=8)
        result = select_chord_oblivious(problem, random.Random(1))
        assert len(result.auxiliary) == 8
        assert result.auxiliary <= problem.candidates

    def test_deterministic_given_rng(self):
        rng = random.Random(0)
        problem = random_problem(rng, bits=10, peers=40, cores=2, k=6)
        a = select_chord_oblivious(problem, random.Random(9))
        b = select_chord_oblivious(problem, random.Random(9))
        assert a.auxiliary == b.auxiliary

    def test_spreads_over_distance_ranges(self):
        # Plant one candidate in each of several finger ranges.
        space_bits = 10
        weights = {2**i + 1: 1.0 for i in range(2, 9)}
        problem = problem_from_lists(space_bits, 0, weights, [], k=len(weights))
        result = select_chord_oblivious(problem, random.Random(3))
        assert result.auxiliary == set(weights)

    def test_cost_is_reported_correctly(self):
        rng = random.Random(4)
        problem = random_problem(rng, bits=8, peers=20, cores=2, k=4)
        result = select_chord_oblivious(problem, random.Random(5))
        expected = chord_cost(
            problem.space,
            problem.source,
            problem.frequencies,
            problem.core_neighbors,
            result.auxiliary,
        )
        assert result.cost == pytest.approx(expected)

    def test_small_candidate_pool(self):
        problem = problem_from_lists(8, 0, {5: 1.0}, [], k=4)
        result = select_chord_oblivious(problem, random.Random(0))
        assert result.auxiliary == {5}


class TestPastryOblivious:
    def test_budget_spent(self):
        rng = random.Random(1)
        problem = random_problem(rng, bits=10, peers=60, cores=4, k=8)
        result = select_pastry_oblivious(problem, random.Random(2))
        assert len(result.auxiliary) == 8
        assert result.auxiliary <= problem.candidates

    def test_spreads_over_prefix_classes(self):
        # Candidates at every shared-prefix length with source 0.
        weights = {1 << i: 1.0 for i in range(8)}
        problem = problem_from_lists(8, 0, weights, [], k=8)
        result = select_pastry_oblivious(problem, random.Random(3))
        assert result.auxiliary == set(weights)

    def test_cost_is_reported_correctly(self):
        rng = random.Random(5)
        problem = random_problem(rng, bits=8, peers=20, cores=2, k=4)
        result = select_pastry_oblivious(problem, random.Random(6))
        expected = pastry_cost(
            problem.space, problem.frequencies, problem.core_neighbors, result.auxiliary
        )
        assert result.cost == pytest.approx(expected)


class TestUniformRandom:
    def test_respects_budget_and_candidates(self):
        rng = random.Random(2)
        problem = random_problem(rng, bits=10, peers=30, cores=3, k=5)
        for overlay in ("pastry", "chord"):
            result = select_uniform_random(problem, random.Random(7), overlay)
            assert len(result.auxiliary) == 5
            assert result.auxiliary <= problem.candidates
