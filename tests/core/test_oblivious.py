"""Tests for the frequency-oblivious baselines."""

import random

import pytest

from repro.core.cost import chord_cost, pastry_cost
from repro.core.oblivious import (
    _class_quotas,
    select_chord_oblivious,
    select_pastry_oblivious,
    select_uniform_random,
)
from tests.helpers import problem_from_lists, random_problem


class TestClassQuotas:
    """Pin the per-class budget split: the remainder of ``k // classes``
    must be distributed, not silently dropped (the old ``max(1, k //
    class_count)`` handed it to the uniform top-up)."""

    def test_remainder_spread_over_first_classes(self):
        assert _class_quotas(7, 3) == [3, 2, 2]
        assert _class_quotas(11, 4) == [3, 3, 3, 2]

    def test_exact_division_is_flat(self):
        assert _class_quotas(6, 3) == [2, 2, 2]

    def test_budget_below_one_per_class_degenerates_to_ones(self):
        # The caller's running ``k - len(chosen)`` cap stops after k draws.
        assert _class_quotas(2, 5) == [1, 1, 1, 1, 1]

    def test_quotas_sum_to_k_when_base_positive(self):
        for k in range(3, 30):
            for classes in range(1, k + 1):
                assert sum(_class_quotas(k, classes)) == k

    def test_no_classes(self):
        assert _class_quotas(4, 0) == []

    def test_chord_selection_honors_quotas_end_to_end(self):
        # Four candidates in each of three finger ranges, k = 7: the
        # far-to-near visit takes 3 from the farthest range, 2 and 2 from
        # the nearer two — no remainder leaks to the uniform top-up.
        weights = {p: 1.0 for p in (300, 301, 302, 303, 150, 151, 152, 153, 70, 71, 72, 73)}
        problem = problem_from_lists(10, 0, weights, [], k=7)
        result = select_chord_oblivious(problem, random.Random(2))
        counts = {
            bucket: sum(1 for p in result.auxiliary if p.bit_length() - 1 == bucket)
            for bucket in (8, 7, 6)
        }
        assert counts == {8: 3, 7: 2, 6: 2}

    def test_pastry_selection_honors_quotas_end_to_end(self):
        # Four candidates in each of three shared-prefix classes with
        # source 0; short prefixes are visited first and get the remainder.
        weights = {p: 1.0 for p in (128, 129, 130, 131, 64, 65, 66, 67, 32, 33, 34, 35)}
        problem = problem_from_lists(8, 0, weights, [], k=7)
        result = select_pastry_oblivious(problem, random.Random(2))
        counts = {
            shared: sum(
                1
                for p in result.auxiliary
                if problem.space.common_prefix_length(0, p) == shared
            )
            for shared in (0, 1, 2)
        }
        assert counts == {0: 3, 1: 2, 2: 2}


class TestChordOblivious:
    def test_budget_spent_when_candidates_allow(self):
        rng = random.Random(0)
        problem = random_problem(rng, bits=10, peers=60, cores=4, k=8)
        result = select_chord_oblivious(problem, random.Random(1))
        assert len(result.auxiliary) == 8
        assert result.auxiliary <= problem.candidates

    def test_deterministic_given_rng(self):
        rng = random.Random(0)
        problem = random_problem(rng, bits=10, peers=40, cores=2, k=6)
        a = select_chord_oblivious(problem, random.Random(9))
        b = select_chord_oblivious(problem, random.Random(9))
        assert a.auxiliary == b.auxiliary

    def test_spreads_over_distance_ranges(self):
        # Plant one candidate in each of several finger ranges.
        space_bits = 10
        weights = {2**i + 1: 1.0 for i in range(2, 9)}
        problem = problem_from_lists(space_bits, 0, weights, [], k=len(weights))
        result = select_chord_oblivious(problem, random.Random(3))
        assert result.auxiliary == set(weights)

    def test_cost_is_reported_correctly(self):
        rng = random.Random(4)
        problem = random_problem(rng, bits=8, peers=20, cores=2, k=4)
        result = select_chord_oblivious(problem, random.Random(5))
        expected = chord_cost(
            problem.space,
            problem.source,
            problem.frequencies,
            problem.core_neighbors,
            result.auxiliary,
        )
        assert result.cost == pytest.approx(expected)

    def test_small_candidate_pool(self):
        problem = problem_from_lists(8, 0, {5: 1.0}, [], k=4)
        result = select_chord_oblivious(problem, random.Random(0))
        assert result.auxiliary == {5}


class TestPastryOblivious:
    def test_budget_spent(self):
        rng = random.Random(1)
        problem = random_problem(rng, bits=10, peers=60, cores=4, k=8)
        result = select_pastry_oblivious(problem, random.Random(2))
        assert len(result.auxiliary) == 8
        assert result.auxiliary <= problem.candidates

    def test_spreads_over_prefix_classes(self):
        # Candidates at every shared-prefix length with source 0.
        weights = {1 << i: 1.0 for i in range(8)}
        problem = problem_from_lists(8, 0, weights, [], k=8)
        result = select_pastry_oblivious(problem, random.Random(3))
        assert result.auxiliary == set(weights)

    def test_cost_is_reported_correctly(self):
        rng = random.Random(5)
        problem = random_problem(rng, bits=8, peers=20, cores=2, k=4)
        result = select_pastry_oblivious(problem, random.Random(6))
        expected = pastry_cost(
            problem.space, problem.frequencies, problem.core_neighbors, result.auxiliary
        )
        assert result.cost == pytest.approx(expected)


class TestUniformRandom:
    def test_respects_budget_and_candidates(self):
        rng = random.Random(2)
        problem = random_problem(rng, bits=10, peers=30, cores=3, k=5)
        for overlay in ("pastry", "chord"):
            result = select_uniform_random(problem, random.Random(7), overlay)
            assert len(result.auxiliary) == 5
            assert result.auxiliary <= problem.candidates
