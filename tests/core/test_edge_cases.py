"""Edge-case tests across the selection layer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chord_selection import select_chord, select_chord_dp, select_chord_fast
from repro.core.pastry_selection import select_pastry, select_pastry_greedy
from repro.core.trie import PeerTrie
from repro.core.types import SelectionProblem
from repro.util.ids import IdSpace
from tests.helpers import problem_from_lists, random_problem


class TestTinySpaces:
    def test_one_bit_space(self):
        space = IdSpace(1)
        problem = SelectionProblem(
            space=space, source=0, frequencies={1: 5.0}, core_neighbors=frozenset(), k=1
        )
        for solver in (select_chord, select_pastry):
            result = solver(problem)
            assert result.auxiliary == {1}

    def test_one_bit_trie(self):
        trie = PeerTrie(IdSpace(1))
        trie.insert(0, 1.0)
        trie.insert(1, 2.0)
        assert trie.total_frequency() == pytest.approx(3.0)
        trie.remove(0)
        assert [leaf.peer for leaf in trie.leaves()] == [1]

    def test_two_node_world(self):
        problem = problem_from_lists(4, 0, {8: 3.0}, [], k=0)
        assert select_chord(problem).auxiliary == frozenset()
        assert select_pastry(problem).auxiliary == frozenset()


class TestScaleInvariance:
    """Section IV: "the choice of k pointers remains the same even if the
    distances are scaled by a constant factor" — and likewise scaling all
    frequencies must not change the chosen set (only the cost)."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from([2.0, 10.0, 0.5]))
    def test_frequency_scaling_keeps_selection(self, seed, factor):
        rng = random.Random(seed)
        problem = random_problem(rng, bits=10, peers=15, cores=2, k=3)
        scaled = SelectionProblem(
            space=problem.space,
            source=problem.source,
            frequencies={p: w * factor for p, w in problem.frequencies.items()},
            core_neighbors=problem.core_neighbors,
            k=problem.k,
        )
        assert select_pastry_greedy(problem).auxiliary == select_pastry_greedy(scaled).auxiliary
        assert select_chord_fast(problem).auxiliary == select_chord_fast(scaled).auxiliary


class TestDegenerateBudgets:
    def test_all_peers_are_core(self):
        problem = problem_from_lists(8, 0, {5: 1.0, 9: 2.0}, [5, 9], k=3)
        for solver in (select_chord, select_pastry):
            result = solver(problem)
            assert result.auxiliary == frozenset()
            # Both peers served at distance 0: cost is just the +1 terms.
            assert result.cost == pytest.approx(3.0)

    def test_huge_k_on_small_instance(self):
        problem = problem_from_lists(8, 0, {5: 1.0, 9: 2.0, 77: 3.0}, [], k=10_000)
        for solver in (select_chord_dp, select_chord_fast, select_pastry_greedy):
            result = solver(problem)
            assert result.auxiliary == {5, 9, 77}
            assert result.cost == pytest.approx(6.0)

    def test_zero_weight_peers_are_pickable_but_pointless(self):
        problem = problem_from_lists(8, 0, {5: 0.0, 9: 10.0}, [], k=1)
        for solver in (select_chord, select_pastry):
            result = solver(problem)
            # The optimum must zero out the only weighted peer.
            assert 9 in result.auxiliary
            assert result.cost == pytest.approx(10.0)


class TestSingleCandidateRegression:
    """A lone candidate at the far side of the ring used to exercise the
    D&C solver's admissibility clamp."""

    def test_chord_single_far_candidate(self):
        space_bits = 12
        far = (1 << space_bits) - 1
        problem = problem_from_lists(space_bits, 0, {far: 7.0}, [1], k=1)
        dp = select_chord_dp(problem)
        fast = select_chord_fast(problem)
        assert dp.auxiliary == fast.auxiliary == {far}
        assert dp.cost == pytest.approx(fast.cost) == pytest.approx(7.0)
