"""Unit tests for SelectionProblem / SelectionResult validation."""

import pytest

from repro.core.types import SelectionProblem, SelectionResult
from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace


def make(**overrides):
    defaults = dict(
        space=IdSpace(8),
        source=1,
        frequencies={2: 1.0, 3: 2.0},
        core_neighbors=frozenset({4}),
        k=1,
    )
    defaults.update(overrides)
    return SelectionProblem(**defaults)


class TestSelectionProblem:
    def test_valid_construction(self):
        problem = make()
        assert problem.candidates == {2, 3}

    def test_candidates_exclude_core(self):
        problem = make(frequencies={2: 1.0, 4: 5.0})
        assert problem.candidates == {2}

    def test_rejects_source_in_frequencies(self):
        with pytest.raises(ConfigurationError):
            make(frequencies={1: 1.0})

    def test_rejects_source_as_core(self):
        with pytest.raises(ConfigurationError):
            make(core_neighbors=frozenset({1}))

    def test_rejects_negative_k(self):
        with pytest.raises(ConfigurationError):
            make(k=-1)

    def test_rejects_out_of_space_ids(self):
        with pytest.raises(ConfigurationError):
            make(frequencies={999: 1.0})
        with pytest.raises(ConfigurationError):
            make(core_neighbors=frozenset({999}))
        with pytest.raises(ConfigurationError):
            make(source=999)

    def test_rejects_negative_frequency(self):
        with pytest.raises(ConfigurationError):
            make(frequencies={2: -1.0})

    def test_rejects_bad_delay_bound(self):
        with pytest.raises(ConfigurationError):
            make(delay_bounds={2: 0})
        with pytest.raises(ConfigurationError):
            make(delay_bounds={2: 1.5})

    def test_with_k_copies(self):
        problem = make()
        bigger = problem.with_k(5)
        assert bigger.k == 5
        assert bigger.frequencies == problem.frequencies
        assert problem.k == 1  # original untouched


class TestSelectionResult:
    def test_valid(self):
        result = SelectionResult(frozenset({1, 2}), 10.0, "test")
        assert result.auxiliary == {1, 2}

    def test_rejects_negative_cost(self):
        with pytest.raises(ConfigurationError):
            SelectionResult(frozenset(), -1.0, "test")

    def test_rejects_nan_cost(self):
        with pytest.raises(ConfigurationError):
            SelectionResult(frozenset(), float("nan"), "test")
