"""The global budget allocator: greedy exactness, nesting, rebalancing.

The heap allocator's claims are structural, so they are pinned as
properties:

* greedy == brute force (the exponential oracle) on tiny instances;
* allocations **nest** — the budget-``K+1`` split is the budget-``K``
  split plus exactly one grant — and total cost is monotone in ``K``;
* at equal total budget the greedy split never costs more than the
  paper's uniform split, on all three overlays over seeded frequencies;
* the uniform baseline spreads remainders deterministically;
* the rebalancer conserves the spent total and respects ``max_moves``.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import budget as budget_mod
from repro.core.budget import (
    BudgetRebalancer,
    CostCurve,
    allocate_brute_force,
    allocate_greedy,
    allocate_overlay,
    allocate_uniform,
    curves_for_problems,
    install_allocation,
    overlay_problems,
    selector_for,
)
from repro.core.types import SelectionProblem
from repro.util.errors import ConfigurationError
from tests.helpers import random_problem

OVERLAYS = ("chord", "pastry", "kademlia")


def tiny_curves(seed: int, nodes: int = 4, peers: int = 6, overlay: str = "chord"):
    """A handful of independent curves over random integer-weight problems."""
    rng = random.Random(seed)
    problems = {
        node: random_problem(rng, bits=10, peers=peers, cores=2, k=0)
        for node in range(nodes)
    }
    return curves_for_problems(problems, overlay)


def seed_overlay_frequencies(overlay, seed: int, peers_per_node: int = 10) -> None:
    """Deterministic heterogeneous demand: each node observes a different
    random subset of peers with different weights, so curves differ."""
    rng = random.Random(seed)
    ids = overlay.alive_ids()
    for node_id in ids:
        pool = [peer for peer in ids if peer != node_id]
        sample = rng.sample(pool, min(peers_per_node, len(pool)))
        overlay.seed_frequencies(
            node_id, {peer: float(rng.randint(1, 50)) for peer in sample}
        )


class TestGreedyExactness:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(0, 9),
        st.sampled_from(("chord", "pastry")),
    )
    def test_greedy_matches_brute_force(self, seed, total, overlay):
        curves = tiny_curves(seed, nodes=3, peers=3, overlay=overlay)
        greedy = allocate_greedy(curves, total)
        oracle = allocate_brute_force(curves, total)
        assert greedy.spent == oracle.spent
        assert greedy.total_cost == pytest.approx(oracle.total_cost, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_allocations_nest_and_cost_is_monotone(self, seed):
        curves = tiny_curves(seed, nodes=4, peers=5)
        previous = allocate_greedy(curves, 0)
        capacity = sum(curve.capacity for curve in curves.values())
        for total in range(1, min(capacity, 12) + 1):
            current = allocate_greedy(curves, total)
            deltas = {
                node: current.quotas[node] - previous.quotas[node] for node in curves
            }
            assert all(delta in (0, 1) for delta in deltas.values())
            assert sum(deltas.values()) == 1  # exactly one new grant
            assert current.total_cost <= previous.total_cost + 1e-9
            previous = current

    def test_spends_exactly_min_of_total_and_capacity(self):
        curves = tiny_curves(7, nodes=3, peers=3)
        capacity = sum(curve.capacity for curve in curves.values())
        shy = allocate_greedy(curves, capacity - 1)
        assert shy.spent == capacity - 1
        greedy = allocate_greedy(curves, capacity + 5)
        assert greedy.spent == capacity
        assert all(
            greedy.quotas[node] <= curves[node].capacity for node in curves
        )

    def test_deterministic_pure_function_of_curves(self):
        a = allocate_greedy(tiny_curves(11), 8)
        b = allocate_greedy(tiny_curves(11), 8)
        assert a.quotas == b.quotas
        assert a.costs == b.costs


class TestUniformBaseline:
    def test_remainder_goes_to_ascending_node_ids(self):
        curves = tiny_curves(3, nodes=4, peers=5)
        allocation = allocate_uniform(curves, 4 * 2 + 3)  # base 2, remainder 3
        quotas = [allocation.quotas[node] for node in sorted(curves)]
        assert quotas == [3, 3, 3, 2]
        assert allocation.spent == 11

    def test_capacity_clamp_redistributes(self):
        rng = random.Random(0)
        problems = {
            0: random_problem(rng, bits=10, peers=2, cores=1, k=0),
            1: random_problem(rng, bits=10, peers=8, cores=1, k=0),
        }
        curves = curves_for_problems(problems, "chord")
        cap0 = curves[0].capacity
        allocation = allocate_uniform(curves, cap0 + 6)
        assert allocation.quotas[0] == cap0  # saturated, surplus flows on
        assert allocation.spent == min(
            cap0 + 6, sum(curve.capacity for curve in curves.values())
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 20))
    def test_allocated_never_worse_than_uniform(self, seed, total):
        curves = tiny_curves(seed, nodes=4, peers=5)
        greedy = allocate_greedy(curves, total)
        uniform = allocate_uniform(curves, total)
        assert greedy.spent == uniform.spent
        assert greedy.total_cost <= uniform.total_cost + 1e-9


class TestCostCurve:
    def test_costs_monotone_and_gains_non_negative(self):
        rng = random.Random(5)
        curve = CostCurve(random_problem(rng, bits=10, peers=8, cores=2, k=0), "chord")
        for k in range(curve.capacity):
            assert curve.cost(k + 1) <= curve.cost(k) + 1e-9
            assert curve.gain(k) >= 0.0
        assert curve.gain(curve.capacity) == 0.0  # saturated

    def test_load_scales_cost_linearly(self):
        rng = random.Random(6)
        problem = random_problem(rng, bits=10, peers=8, cores=2, k=0)
        plain = CostCurve(problem, "chord")
        heavy = CostCurve(problem, "chord", load=2.0)
        assert heavy.cost(3) == pytest.approx(2.0 * plain.cost(3))

    def test_k_clamped_to_capacity(self):
        rng = random.Random(8)
        curve = CostCurve(random_problem(rng, bits=10, peers=4, cores=1, k=0), "chord")
        assert curve.result(curve.capacity + 5).auxiliary == curve.result(
            curve.capacity
        ).auxiliary

    def test_rejects_non_positive_load(self):
        rng = random.Random(9)
        problem = random_problem(rng, bits=10, peers=4, cores=1, k=0)
        with pytest.raises(ConfigurationError):
            CostCurve(problem, "chord", load=0.0)

    def test_unknown_overlay_rejected(self):
        with pytest.raises(ConfigurationError):
            selector_for("tapestry")


class TestBruteForceOracle:
    def test_refuses_large_instances(self):
        with pytest.raises(ConfigurationError):
            allocate_brute_force(tiny_curves(0, nodes=3), 11)
        rng = random.Random(1)
        problems = {
            node: random_problem(rng, bits=10, peers=3, cores=1, k=0)
            for node in range(7)
        }
        with pytest.raises(ConfigurationError):
            allocate_brute_force(curves_for_problems(problems, "chord"), 4)


class TestOverlayIntegration:
    @pytest.mark.parametrize("overlay_kind", OVERLAYS)
    def test_allocated_never_worse_than_uniform_on_overlay(
        self, small_universe, overlay_kind
    ):
        overlay = small_universe(overlay_kind, n=24, bits=16, seed=4)
        seed_overlay_frequencies(overlay, seed=4)
        problems = overlay_problems(overlay_kind, overlay, 64)
        curves = curves_for_problems(problems, overlay_kind)
        total = 2 * len(problems)
        greedy = allocate_greedy(curves, total)
        uniform = allocate_uniform(curves, total)
        assert greedy.spent == uniform.spent
        assert greedy.total_cost <= uniform.total_cost + 1e-9

    @pytest.mark.parametrize("overlay_kind", OVERLAYS)
    def test_install_allocation_applies_quotas(self, small_universe, overlay_kind):
        from repro.chord.ring import optimal_policy

        overlay = small_universe(overlay_kind, n=20, bits=16, seed=2)
        seed_overlay_frequencies(overlay, seed=2, peers_per_node=8)
        allocation = allocate_overlay(overlay_kind, overlay, 3 * 20, 64)
        install_allocation(overlay, allocation, optimal_policy, random.Random(0), 64)
        for node_id in overlay.alive_ids():
            assert len(overlay.node(node_id).auxiliary) <= allocation.quota(node_id)

    def test_overlay_problems_skips_frequency_free_nodes(self, small_universe):
        overlay = small_universe("chord", n=16, bits=16, seed=1)
        ids = overlay.alive_ids()
        overlay.seed_frequencies(ids[0], {ids[1]: 5.0})
        problems = overlay_problems("chord", overlay, 64)
        assert set(problems) == {ids[0]}
        assert problems[ids[0]].k == 0


class TestRebalancer:
    def build(self, seed: int = 0, nodes: int = 4):
        rng = random.Random(seed)
        problems = {
            node: random_problem(rng, bits=10, peers=6, cores=2, k=0)
            for node in range(nodes)
        }
        curves = curves_for_problems(problems, "chord")
        allocation = allocate_greedy(curves, 2 * nodes)
        rebalancer = BudgetRebalancer.from_allocation(allocation, max_moves=2)
        rebalancer.baseline(problems)
        return problems, allocation, rebalancer

    def drifted(self, problems):
        """Shift one node's demand hard toward a single peer."""
        drifted = dict(problems)
        node, problem = sorted(drifted.items())[0]
        hot = max(problem.frequencies)
        drifted[node] = SelectionProblem(
            space=problem.space,
            source=problem.source,
            frequencies={hot: 500.0},
            core_neighbors=problem.core_neighbors,
            k=0,
        )
        return drifted

    def test_no_drift_means_no_moves(self):
        problems, __, rebalancer = self.build()
        assert rebalancer.rebalance(problems, "chord") == []
        assert rebalancer.moves_applied == 0
        assert rebalancer.rounds == 1

    def test_moves_bounded_and_total_conserved(self):
        problems, allocation, rebalancer = self.build()
        spent_before = sum(rebalancer.quotas.values())
        moves = rebalancer.rebalance(self.drifted(problems), "chord")
        assert len(moves) <= rebalancer.max_moves
        assert sum(rebalancer.quotas.values()) == spent_before
        assert all(rebalancer.quotas[node] >= 0 for node in rebalancer.quotas)
        # The quotas dict is the allocation's own dict, shared by reference.
        assert rebalancer.quotas is allocation.quotas

    def test_moves_improve_predicted_cost(self):
        problems, __, rebalancer = self.build()
        drifted = self.drifted(problems)
        curves = curves_for_problems(drifted, "chord")
        before = sum(
            curves[node].cost(rebalancer.quotas.get(node, 0)) for node in curves
        )
        moves = rebalancer.rebalance(drifted, "chord")
        after = sum(
            curves[node].cost(rebalancer.quotas.get(node, 0)) for node in curves
        )
        if moves:
            assert after < before - 1e-12
            assert all(move.gain > 0 for move in moves)

    def test_rebase_quiets_subsequent_rounds(self):
        problems, __, rebalancer = self.build()
        drifted = self.drifted(problems)
        rebalancer.rebalance(drifted, "chord")
        # Same snapshots again: detectors were rebased, nothing drifts.
        assert rebalancer.rebalance(drifted, "chord") == []

    def test_never_baselined_node_counts_as_drifted(self):
        rng = random.Random(3)
        problems = {
            node: random_problem(rng, bits=10, peers=6, cores=2, k=0)
            for node in range(3)
        }
        curves = curves_for_problems(problems, "chord")
        rebalancer = BudgetRebalancer.from_allocation(allocate_greedy(curves, 6))
        # No baseline() call: the first round sees every node as stale and
        # is allowed to move budget (it may find no improving move).
        rebalancer.rebalance(problems, "chord")
        assert rebalancer.rounds == 1

    def test_telemetry_counters_labelled(self):
        from repro.telemetry.runtime import RoundTelemetry

        problems, __, rebalancer = self.build()
        telemetry = RoundTelemetry()
        rebalancer.rebalance(problems, "chord", telemetry=telemetry)
        moves = rebalancer.rebalance(self.drifted(problems), "chord", telemetry=telemetry)
        family = telemetry.registry.counter(
            "repro_budget_rebalance_total", "Budget-rebalancer activity by kind."
        )
        assert family.labels(kind="round").value == 2.0
        assert family.labels(kind="skipped").value == 1.0
        if moves:
            assert family.labels(kind="moves").value == float(len(moves))
