"""Tests for the Chord auxiliary-neighbor selection algorithms."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chord_selection import select_chord, select_chord_dp, select_chord_fast
from repro.core.cost import brute_force_optimal, chord_cost
from repro.util.errors import ConfigurationError, InfeasibleConstraintError
from tests.helpers import problem_from_lists, random_problem


def assert_valid(problem, result):
    assert result.auxiliary <= problem.candidates
    assert len(result.auxiliary) <= problem.k
    recomputed = chord_cost(
        problem.space,
        problem.source,
        problem.frequencies,
        problem.core_neighbors,
        result.auxiliary,
    )
    assert result.cost == pytest.approx(recomputed)


class TestHandPicked:
    def test_far_hot_peer_gets_pointer(self):
        # Core at gap 1; hot peer far away benefits most from a pointer.
        problem = problem_from_lists(8, 0, {200: 50.0, 3: 1.0}, [1], k=1)
        for solver in (select_chord_dp, select_chord_fast):
            result = solver(problem)
            assert result.auxiliary == {200}
            assert_valid(problem, result)

    def test_pointer_serves_following_peers(self):
        # Peers clustered at 100..103; one pointer at 100 serves them all
        # within bit_length(3) = 2 hops.
        weights = {100: 5.0, 101: 5.0, 102: 5.0, 103: 5.0}
        problem = problem_from_lists(8, 0, weights, [1], k=1)
        result = select_chord_dp(problem)
        assert result.auxiliary == {100}
        assert_valid(problem, result)

    def test_k_zero(self):
        problem = problem_from_lists(8, 0, {5: 2.0}, [1], k=0)
        result = select_chord(problem)
        assert result.auxiliary == frozenset()
        assert_valid(problem, result)

    def test_budget_exceeds_candidates(self):
        problem = problem_from_lists(8, 0, {5: 1.0, 9: 1.0}, [], k=7)
        result = select_chord(problem)
        assert result.auxiliary == {5, 9}
        assert_valid(problem, result)

    def test_empty_frequencies(self):
        problem = problem_from_lists(8, 0, {}, [1], k=2)
        result = select_chord(problem)
        assert result.auxiliary == frozenset()
        assert result.cost == 0.0

    def test_wraparound_source(self):
        problem = problem_from_lists(8, 250, {3: 10.0, 249: 1.0}, [251], k=1)
        result = select_chord_dp(problem)
        assert_valid(problem, result)
        # Peer 249 has gap 255 (almost a full loop): serving it well is
        # expensive; the hot peer at gap 9 should win the single pointer.
        assert result.auxiliary == {3}


class TestOptimality:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_dp_matches_brute_force(self, seed):
        rng = random.Random(seed)
        problem = random_problem(rng, bits=6, peers=7, cores=rng.randint(0, 2), k=rng.randint(0, 3))
        reference = brute_force_optimal(problem, "chord")
        result = select_chord_dp(problem)
        assert result.cost == pytest.approx(reference.cost)
        assert_valid(problem, result)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000))
    def test_fast_matches_dp(self, seed):
        rng = random.Random(seed)
        problem = random_problem(
            rng, bits=10, peers=rng.randint(5, 50), cores=rng.randint(0, 5), k=rng.randint(0, 6)
        )
        dp = select_chord_dp(problem)
        fast = select_chord_fast(problem)
        assert fast.cost == pytest.approx(dp.cost)
        assert_valid(problem, fast)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_fast_matches_dp_dense_ring(self, seed):
        """Dense id spaces exercise gap collisions in the span oracle."""
        rng = random.Random(seed)
        problem = random_problem(rng, bits=7, peers=60, cores=6, k=8)
        dp = select_chord_dp(problem)
        fast = select_chord_fast(problem)
        assert fast.cost == pytest.approx(dp.cost)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_cost_monotone_in_k(self, seed):
        rng = random.Random(seed)
        problem = random_problem(rng, bits=8, peers=20, cores=2, k=0)
        costs = [select_chord_fast(problem.with_k(k)).cost for k in range(6)]
        assert costs == sorted(costs, reverse=True)


class TestQoS:
    def test_bound_forces_nearby_pointer(self):
        # Peer 128 (gap 128) is cold but bounded to 3 hops:
        # 1 + bit_length(gap from pointer) <= 3 requires a pointer within
        # gap difference <= 3 of it.
        problem = problem_from_lists(
            8,
            0,
            {128: 0.1, 3: 100.0, 5: 90.0, 126: 1.0},
            [1],
            k=1,
            bounds={128: 3},
        )
        result = select_chord_dp(problem)
        assert result.auxiliary <= {126, 128}
        assert result.auxiliary  # a pointer was forced despite hot peers at 3/5

    def test_infeasible_raises(self):
        problem = problem_from_lists(8, 0, {128: 1.0}, [1], k=0, bounds={128: 2})
        with pytest.raises(InfeasibleConstraintError):
            select_chord_dp(problem)

    def test_matches_brute_force_with_bounds(self):
        rng = random.Random(13)
        for __ in range(20):
            base = random_problem(rng, bits=6, peers=6, cores=1, k=2)
            bounded = rng.choice(sorted(base.frequencies))
            problem = problem_from_lists(
                6,
                base.source,
                dict(base.frequencies),
                sorted(base.core_neighbors),
                k=2,
                bounds={bounded: rng.randint(2, 5)},
            )
            try:
                reference = brute_force_optimal(problem, "chord")
            except InfeasibleConstraintError:
                with pytest.raises(InfeasibleConstraintError):
                    select_chord_dp(problem)
                continue
            result = select_chord_dp(problem)
            assert result.cost == pytest.approx(reference.cost)

    def test_fast_rejects_bounds(self):
        problem = problem_from_lists(8, 0, {5: 1.0}, [], k=1, bounds={5: 3})
        with pytest.raises(ConfigurationError):
            select_chord_fast(problem)

    def test_dispatcher_routes_bounds_to_dp(self):
        problem = problem_from_lists(8, 0, {128: 1.0}, [], k=1, bounds={128: 2})
        result = select_chord(problem)
        assert result.auxiliary == {128}
