"""Tests for the Pastry auxiliary-neighbor selection algorithms."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import brute_force_optimal, pastry_cost
from repro.core.pastry_selection import (
    IncrementalPastrySelector,
    select_pastry,
    select_pastry_dp,
    select_pastry_greedy,
)
from repro.util.errors import ConfigurationError, InfeasibleConstraintError
from repro.util.ids import IdSpace
from tests.helpers import problem_from_lists, random_problem


def assert_valid(problem, result):
    """Result invariants every solver must satisfy."""
    assert result.auxiliary <= problem.candidates
    assert len(result.auxiliary) <= problem.k
    recomputed = pastry_cost(
        problem.space, problem.frequencies, problem.core_neighbors, result.auxiliary
    )
    assert result.cost == pytest.approx(recomputed)


class TestHandPicked:
    def test_hot_peer_wins(self):
        problem = problem_from_lists(
            8, 0, {0b11110000: 50.0, 0b00000011: 1.0}, [0b00000111], k=1
        )
        for solver in (select_pastry_dp, select_pastry_greedy):
            result = solver(problem)
            assert result.auxiliary == {0b11110000}
            assert_valid(problem, result)

    def test_core_subtree_needs_no_pointer(self):
        # Peer shares a long prefix with the core neighbor: pointing at a
        # hot peer elsewhere is more valuable.
        problem = problem_from_lists(
            8,
            0,
            {0b11110001: 5.0, 0b00111100: 4.0},
            [0b11110000],
            k=1,
        )
        result = select_pastry_greedy(problem)
        assert result.auxiliary == {0b00111100}
        assert_valid(problem, result)

    def test_k_zero_returns_core_only_cost(self):
        problem = problem_from_lists(8, 0, {0b11110000: 2.0}, [0b00001111], k=0)
        result = select_pastry(problem)
        assert result.auxiliary == frozenset()
        assert_valid(problem, result)

    def test_budget_larger_than_candidates(self):
        problem = problem_from_lists(8, 0, {1: 1.0, 2: 1.0}, [], k=10)
        result = select_pastry(problem)
        assert result.auxiliary == {1, 2}
        assert_valid(problem, result)

    def test_empty_frequencies(self):
        problem = problem_from_lists(8, 0, {}, [1], k=3)
        result = select_pastry(problem)
        assert result.auxiliary == frozenset()
        assert result.cost == 0.0


class TestOptimality:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        problem = random_problem(rng, bits=6, peers=7, cores=rng.randint(0, 2), k=rng.randint(0, 3))
        reference = brute_force_optimal(problem, "pastry")
        for solver in (select_pastry_dp, select_pastry_greedy):
            result = solver(problem)
            assert result.cost == pytest.approx(reference.cost)
            assert_valid(problem, result)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_greedy_equals_dp_on_larger_instances(self, seed):
        rng = random.Random(seed)
        problem = random_problem(rng, bits=10, peers=40, cores=4, k=6)
        dp = select_pastry_dp(problem)
        greedy = select_pastry_greedy(problem)
        assert greedy.cost == pytest.approx(dp.cost)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_cost_monotone_in_k(self, seed):
        rng = random.Random(seed)
        problem = random_problem(rng, bits=8, peers=20, cores=2, k=0)
        costs = [select_pastry(problem.with_k(k)).cost for k in range(6)]
        assert costs == sorted(costs, reverse=True)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_nesting_property_of_selections(self, seed):
        """Property (P): the optimal j-1 set is a subset of the optimal j set.

        The greedy reconstruction follows recorded splits, so the nesting
        must surface in the actual selections it emits.
        """
        rng = random.Random(seed)
        problem = random_problem(rng, bits=8, peers=15, cores=2, k=0)
        previous = frozenset()
        for k in range(1, 6):
            result = select_pastry_greedy(problem.with_k(k))
            # Equal-cost ties may swap members; verify cost-nesting instead:
            # the previous set plus one new member must cost the same as the
            # new optimum when sizes grow by one.
            assert len(result.auxiliary) >= len(previous)
            previous = result.auxiliary


class TestQoS:
    def test_bound_forces_pointer(self):
        # Peer 0b11110000 is cold but bounded: it must get a nearby pointer.
        problem = problem_from_lists(
            8,
            0,
            {0b11110000: 0.1, 0b00000011: 100.0, 0b00000101: 90.0},
            [0b00111111],
            k=1,
            bounds={0b11110000: 2},
        )
        result = select_pastry_dp(problem)
        # Within 2 hops => distance <= 1 => pointer inside the height-1
        # subtree around the bounded peer; only the peer itself qualifies.
        assert 0b11110000 in result.auxiliary

    def test_infeasible_raises(self):
        problem = problem_from_lists(
            8, 0, {0b11110000: 1.0, 0b00001111: 1.0}, [], k=0,
            bounds={0b11110000: 3},
        )
        with pytest.raises(InfeasibleConstraintError):
            select_pastry_dp(problem)

    def test_matches_brute_force_with_bounds(self):
        rng = random.Random(7)
        for __ in range(20):
            problem = random_problem(rng, bits=6, peers=6, cores=1, k=2)
            peers = sorted(problem.frequencies)
            bounded = rng.choice(peers)
            problem = problem_from_lists(
                6,
                problem.source,
                dict(problem.frequencies),
                sorted(problem.core_neighbors),
                k=2,
                bounds={bounded: rng.randint(2, 5)},
            )
            try:
                reference = brute_force_optimal(problem, "pastry")
            except InfeasibleConstraintError:
                with pytest.raises(InfeasibleConstraintError):
                    select_pastry_dp(problem)
                continue
            result = select_pastry_dp(problem)
            assert result.cost == pytest.approx(reference.cost)

    def test_greedy_rejects_bounds(self):
        problem = problem_from_lists(8, 0, {1: 1.0}, [], k=1, bounds={1: 3})
        with pytest.raises(ConfigurationError):
            select_pastry_greedy(problem)

    def test_dispatcher_routes_bounds_to_dp(self):
        problem = problem_from_lists(8, 0, {0b10000000: 1.0}, [], k=1, bounds={0b10000000: 2})
        result = select_pastry(problem)
        assert 0b10000000 in result.auxiliary


class TestIncremental:
    def test_matches_fresh_computation(self):
        rng = random.Random(3)
        space = IdSpace(8)
        selector = IncrementalPastrySelector(space, source=0, core_neighbors=[0b10000001], k=3)
        for __ in range(40):
            selector.observe(rng.randrange(1, 256), rng.randint(1, 9))
        incremental = selector.selection()
        fresh = select_pastry_greedy(selector.problem())
        assert incremental.cost == pytest.approx(fresh.cost)

    def test_popularity_shift_updates_selection(self):
        selector = IncrementalPastrySelector(IdSpace(8), source=0, core_neighbors=[], k=1)
        selector.observe(0b11110000, 10.0)
        selector.observe(0b00001111, 1.0)
        assert selector.selection().auxiliary == {0b11110000}
        selector.observe(0b00001111, 100.0)
        assert selector.selection().auxiliary == {0b00001111}

    def test_remove_peer(self):
        selector = IncrementalPastrySelector(IdSpace(8), source=0, core_neighbors=[], k=1)
        selector.observe(0b11110000, 10.0)
        selector.observe(0b00001111, 1.0)
        selector.remove_peer(0b11110000)
        assert selector.selection().auxiliary == {0b00001111}

    def test_randomized_equivalence_under_churn(self):
        rng = random.Random(11)
        space = IdSpace(8)
        selector = IncrementalPastrySelector(space, source=0, core_neighbors=[77], k=4)
        alive = set()
        for step in range(120):
            action = rng.random()
            if action < 0.6 or not alive:
                peer = rng.randrange(1, 256)
                if peer == 77:
                    continue
                selector.observe(peer, float(rng.randint(1, 5)))
                alive.add(peer)
            elif action < 0.8:
                peer = rng.choice(sorted(alive))
                selector.set_frequency(peer, float(rng.randint(1, 20)))
            else:
                peer = rng.choice(sorted(alive))
                selector.remove_peer(peer)
                alive.discard(peer)
            if step % 10 == 0:
                incremental = selector.selection()
                fresh = select_pastry_greedy(selector.problem())
                assert incremental.cost == pytest.approx(fresh.cost)

    def test_observe_source_is_ignored(self):
        selector = IncrementalPastrySelector(IdSpace(8), source=5, core_neighbors=[], k=1)
        selector.observe(5, 10.0)
        assert selector.selection().auxiliary == frozenset()

    def test_set_k_rebuilds(self):
        selector = IncrementalPastrySelector(IdSpace(8), source=0, core_neighbors=[], k=1)
        selector.observe(0b11110000, 5.0)
        selector.observe(0b00001111, 4.0)
        selector.set_k(2)
        assert selector.selection().auxiliary == {0b11110000, 0b00001111}

    def test_delay_bound_via_incremental(self):
        selector = IncrementalPastrySelector(IdSpace(8), source=0, core_neighbors=[], k=1)
        selector.observe(0b00000011, 100.0)
        selector.observe(0b11110000, 0.5)
        selector.set_delay_bound(0b11110000, 2)
        assert 0b11110000 in selector.selection().auxiliary
        selector.clear_delay_bounds()
        assert selector.selection().auxiliary == {0b00000011}

    def test_rejects_source_as_core(self):
        with pytest.raises(ConfigurationError):
            IncrementalPastrySelector(IdSpace(8), source=5, core_neighbors=[5], k=1)
