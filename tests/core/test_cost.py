"""Unit tests for the objective-function evaluators."""

import pytest

from repro.core.cost import (
    brute_force_optimal,
    chord_cost,
    chord_peer_distance,
    evaluate,
    pastry_cost,
    pastry_peer_distance,
)
from repro.util.errors import ConfigurationError, InfeasibleConstraintError
from repro.util.ids import IdSpace
from tests.helpers import problem_from_lists


class TestPastryDistance:
    def test_picks_best_pointer(self):
        space = IdSpace(4)
        # 0b1011 vs pointers 0b1111 (lcp 1 -> 3) and 0b1000 (lcp 2 -> 2).
        assert pastry_peer_distance(space, 0b1011, [0b1111, 0b1000]) == 2

    def test_exact_match_is_zero(self):
        space = IdSpace(4)
        assert pastry_peer_distance(space, 7, [7, 3]) == 0

    def test_no_pointers_is_worst_case(self):
        space = IdSpace(4)
        assert pastry_peer_distance(space, 7, []) == 4


class TestChordDistance:
    def test_only_preceding_pointers_serve(self):
        space = IdSpace(4)
        # Source 0, peer at 5. Pointer at 6 overshoots and cannot help.
        assert chord_peer_distance(space, 0, 5, [6]) == 4
        # Pointer at 4 serves at bit_length(1) = 1.
        assert chord_peer_distance(space, 0, 5, [4, 6]) == 1

    def test_pointer_on_peer_is_zero(self):
        space = IdSpace(4)
        assert chord_peer_distance(space, 0, 5, [5]) == 0

    def test_wraparound(self):
        space = IdSpace(4)
        # Source 14, peer 2 (gap 4); pointer at 1 (gap 3) serves at distance 1.
        assert chord_peer_distance(space, 14, 2, [1]) == 1

    def test_source_itself_not_a_pointer(self):
        space = IdSpace(4)
        assert chord_peer_distance(space, 0, 5, [0]) == 4


class TestCosts:
    def test_pastry_cost_sums_weighted_distances(self):
        space = IdSpace(4)
        freqs = {0b1011: 2.0, 0b0001: 1.0}
        # Core at 0b1111: distances are 3 (to 1011) and 4 (to 0001).
        expected = 2.0 * (1 + 3) + 1.0 * (1 + 4)
        assert pastry_cost(space, freqs, [0b1111], []) == pytest.approx(expected)

    def test_pastry_cost_improves_with_auxiliary(self):
        space = IdSpace(4)
        freqs = {0b1011: 2.0}
        base = pastry_cost(space, freqs, [0b0111], [])
        better = pastry_cost(space, freqs, [0b0111], [0b1010])
        assert better < base

    def test_chord_cost_uses_closest_preceding(self):
        space = IdSpace(4)
        freqs = {5: 1.0, 9: 1.0}
        # Core at 1 (gap 1). Peer 5: gap 4, served from 1 at bit_length(4)=3.
        # Peer 9: gap 9, served from 1 at bit_length(8)=4.
        expected = 1.0 * (1 + 3) + 1.0 * (1 + 4)
        assert chord_cost(space, 0, freqs, [1], []) == pytest.approx(expected)

    def test_chord_cost_with_no_usable_pointer(self):
        space = IdSpace(4)
        assert chord_cost(space, 0, {5: 1.0}, [], []) == pytest.approx(1 + 4)

    def test_evaluate_dispatch(self):
        problem = problem_from_lists(4, 0, {5: 1.0}, [1], k=1)
        assert evaluate(problem, [], "chord") == pytest.approx(
            chord_cost(problem.space, 0, problem.frequencies, [1], [])
        )
        assert evaluate(problem, [], "pastry") == pytest.approx(
            pastry_cost(problem.space, problem.frequencies, [1], [])
        )
        # Kademlia's XOR distance class is a prefix length: same cost model.
        assert evaluate(problem, [], "kademlia") == pytest.approx(
            pastry_cost(problem.space, problem.frequencies, [1], [])
        )
        with pytest.raises(ConfigurationError):
            evaluate(problem, [], "tapestry")


class TestBruteForce:
    def test_selects_obvious_winner(self):
        # One very hot peer far from the core neighbor.
        problem = problem_from_lists(
            6, 0, {0b111000: 100.0, 0b000001: 1.0}, [0b000010], k=1
        )
        result = brute_force_optimal(problem, "pastry")
        assert result.auxiliary == {0b111000}

    def test_never_selects_core(self):
        problem = problem_from_lists(6, 0, {3: 5.0}, [3], k=1)
        result = brute_force_optimal(problem, "chord")
        assert result.auxiliary == frozenset()

    def test_respects_budget(self):
        problem = problem_from_lists(6, 0, {1: 1.0, 2: 1.0, 3: 1.0}, [], k=2)
        result = brute_force_optimal(problem, "pastry")
        assert len(result.auxiliary) <= 2

    def test_infeasible_bounds_raise(self):
        problem = problem_from_lists(
            6, 0, {0b100000: 1.0, 0b010000: 1.0}, [], k=0,
            bounds={0b100000: 1},
        )
        with pytest.raises(InfeasibleConstraintError):
            brute_force_optimal(problem, "pastry")
