"""Tests for the QoS-class layer."""

import pytest

from repro.core.pastry_selection import select_pastry
from repro.core.qos import QosClass, QosPolicy
from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace


def make_policy():
    policy = QosPolicy()
    policy.add_class(QosClass("voip", max_hops=2, description="interactive voice"))
    policy.add_class(QosClass("iptv", max_hops=4))
    return policy


class TestQosClass:
    def test_valid(self):
        qos = QosClass("voip", 2)
        assert qos.max_hops == 2

    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_rejects_bad_bounds(self, bad):
        with pytest.raises(ConfigurationError):
            QosClass("voip", bad)

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            QosClass("", 2)


class TestQosPolicy:
    def test_assign_and_bounds(self):
        policy = make_policy()
        policy.assign(100, "voip")
        policy.assign(200, "iptv")
        assert policy.bounds() == {100: 2, 200: 4}
        assert policy.bound_for(100) == 2
        assert policy.bound_for(999) is None

    def test_assign_unknown_class_rejected(self):
        policy = make_policy()
        with pytest.raises(ConfigurationError):
            policy.assign(1, "best-effort")

    def test_unassign(self):
        policy = make_policy()
        policy.assign(100, "voip")
        policy.unassign(100)
        assert policy.bounds() == {}
        policy.unassign(100)  # idempotent

    def test_members(self):
        policy = make_policy()
        policy.assign(1, "voip")
        policy.assign(2, "voip")
        policy.assign(3, "iptv")
        assert policy.members("voip") == {1, 2}
        with pytest.raises(ConfigurationError):
            policy.members("bulk")

    def test_reassignment_keeps_latest(self):
        policy = make_policy()
        policy.assign(1, "voip")
        policy.assign(1, "iptv")
        assert policy.bound_for(1) == 4

    def test_apply_builds_bounded_problem(self):
        policy = make_policy()
        policy.assign(0b11110000, "voip")
        problem = policy.apply(
            IdSpace(8),
            source=0,
            frequencies={0b11110000: 0.5, 0b00000011: 50.0},
            core_neighbors=frozenset(),
            k=1,
        )
        assert problem.delay_bounds == {0b11110000: 2}
        result = select_pastry(problem)
        assert 0b11110000 in result.auxiliary  # the bound forces the pointer

    def test_apply_drops_source_bound(self):
        policy = make_policy()
        policy.assign(0, "voip")
        problem = policy.apply(IdSpace(8), 0, {5: 1.0}, frozenset(), k=1)
        assert problem.delay_bounds == {}

    def test_minimum_pointers_needed(self):
        space = IdSpace(8)
        policy = make_policy()
        policy.assign(0b11110000, "voip")   # far from core: needs a pointer
        policy.assign(0b00000011, "iptv")   # near core 0b00000001: satisfied
        needed = policy.minimum_pointers_needed(space, frozenset({0b00000001}))
        assert needed == 1
