"""Tests for drift detection and change-triggered recomputation."""

import pytest

from repro.core.drift import DriftDetector, RecomputationTrigger, coverage_drift, l1_drift
from repro.util.errors import ConfigurationError


class TestL1Drift:
    def test_identical_is_zero(self):
        assert l1_drift({1: 2.0, 2: 2.0}, {1: 4.0, 2: 4.0}) == pytest.approx(0.0)

    def test_disjoint_is_one(self):
        assert l1_drift({1: 1.0}, {2: 1.0}) == pytest.approx(1.0)

    def test_partial_shift(self):
        # Half the mass moved from peer 1 to peer 2.
        assert l1_drift({1: 1.0}, {1: 0.5, 2: 0.5}) == pytest.approx(0.5)

    def test_empty_cases(self):
        assert l1_drift({}, {}) == 0.0
        assert l1_drift({}, {1: 1.0}) == 1.0
        assert l1_drift({1: 1.0}, {}) == 1.0

    def test_scale_invariant(self):
        a = {1: 1.0, 2: 3.0}
        b = {1: 3.0, 2: 1.0}
        assert l1_drift(a, b) == pytest.approx(l1_drift({k: 10 * v for k, v in a.items()}, b))


class TestCoverageDrift:
    def test_no_loss(self):
        assert coverage_drift([1], {1: 5.0, 2: 0.0}, previous_coverage=1.0) == pytest.approx(0.0)

    def test_full_loss(self):
        assert coverage_drift([1], {2: 5.0}, previous_coverage=1.0) == pytest.approx(1.0)

    def test_gain_counts_as_drift(self):
        # Mass concentrating onto the selected set is still a distribution
        # shift: the snapshot behind the last selection is stale, and a
        # fresh run might cover even more. The old clamp-to-zero behaviour
        # silently suppressed recomputation here.
        assert coverage_drift([1], {1: 5.0}, previous_coverage=0.3) == pytest.approx(0.7)

    def test_empty_current(self):
        assert coverage_drift([1], {}, previous_coverage=1.0) == 0.0

    def test_concentration_shift_triggers_recomputation(self):
        # Regression for the trigger never firing when coverage *rose*:
        # selection happened when peer 1 held 30% of the mass; later the
        # workload concentrates almost entirely onto peer 1. The trigger
        # must fire so the node re-optimizes for the new distribution.
        trigger = RecomputationTrigger(threshold=0.5, metric="coverage")
        trigger.committed(0.0, {1: 3.0, 2: 7.0}, selected=[1])
        assert trigger.should_recompute(1.0, {1: 9.5, 2: 0.5})


class TestDriftDetector:
    def test_rejects_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            DriftDetector("chi-squared")

    def test_l1_score_after_rebase(self):
        detector = DriftDetector("l1")
        detector.rebase({1: 1.0}, selected=[1])
        assert detector.score({1: 1.0}) == pytest.approx(0.0)
        assert detector.score({2: 1.0}) == pytest.approx(1.0)

    def test_coverage_score(self):
        detector = DriftDetector("coverage")
        detector.rebase({1: 8.0, 2: 2.0}, selected=[1])
        assert detector.score({1: 8.0, 2: 2.0}) == pytest.approx(0.0)
        # Peer 1's share collapses from 80% to 20%: coverage fell by 0.6.
        assert detector.score({1: 2.0, 2: 8.0}) == pytest.approx(0.6)


class TestRecomputationTrigger:
    def test_first_call_always_fires(self):
        trigger = RecomputationTrigger(threshold=0.5)
        assert trigger.should_recompute(0.0, {1: 1.0})

    def test_no_fire_below_threshold(self):
        trigger = RecomputationTrigger(threshold=0.5)
        trigger.committed(0.0, {1: 1.0}, [1])
        assert not trigger.should_recompute(1.0, {1: 1.0, 2: 0.1})
        assert trigger.suppressed == 1

    def test_fires_on_big_shift(self):
        trigger = RecomputationTrigger(threshold=0.5)
        trigger.committed(0.0, {1: 1.0}, [1])
        assert trigger.should_recompute(1.0, {2: 1.0})

    def test_min_interval_rate_limits(self):
        trigger = RecomputationTrigger(threshold=0.0, min_interval=10.0)
        trigger.committed(0.0, {1: 1.0}, [1])
        assert not trigger.should_recompute(5.0, {2: 1.0})  # too soon
        assert trigger.should_recompute(15.0, {2: 1.0})

    def test_counters(self):
        trigger = RecomputationTrigger(threshold=0.9, min_interval=1.0)
        trigger.committed(0.0, {1: 1.0}, [1])
        trigger.should_recompute(0.5, {2: 1.0})
        trigger.should_recompute(2.0, {1: 1.0})
        assert trigger.fired == 1
        assert trigger.suppressed == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RecomputationTrigger(threshold=1.5)
        with pytest.raises(ConfigurationError):
            RecomputationTrigger(min_interval=-1.0)
