"""Unit tests for the path-compressed peer trie."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trie import PeerTrie
from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace


def build(bits=8, entries=()):
    trie = PeerTrie(IdSpace(bits))
    for peer, freq in entries:
        trie.insert(peer, freq)
    return trie


def check_invariants(trie):
    """Structural invariants of a compressed binary trie."""
    space = trie.space
    seen_leaves = []
    for vertex in trie.postorder():
        if vertex.is_leaf:
            assert vertex.depth == space.bits
            assert vertex.prefix == vertex.peer
            seen_leaves.append(vertex.peer)
        else:
            if vertex is not trie.root:
                # Path compression: internal non-root vertices branch.
                assert len(vertex.children) == 2
            for bit, child in vertex.children.items():
                assert child.parent is vertex
                assert child.depth > vertex.depth
                # The child's prefix extends the parent's and starts with `bit`.
                assert child.prefix >> (child.depth - vertex.depth) == vertex.prefix
                assert child.bit_within_prefix(vertex.depth) == bit
        # Aggregates match a recomputation from scratch.
        freq = vertex.frequency_sum
        vertex.refresh_aggregates()
        if not vertex.is_leaf:
            assert vertex.frequency_sum == pytest.approx(freq)
    assert sorted(seen_leaves) == sorted(leaf.peer for leaf in trie.leaves())
    return seen_leaves


class TestInsert:
    def test_single_insert(self):
        trie = build(entries=[(5, 2.0)])
        assert 5 in trie
        assert len(trie) == 1
        assert trie.leaf(5).frequency == 2.0
        check_invariants(trie)

    def test_split_creates_branch(self):
        trie = build(entries=[(0b10110000, 1.0), (0b10100000, 1.0)])
        check_invariants(trie)
        # Lowest common ancestor sits at the first differing bit (depth 3).
        leaf = trie.leaf(0b10110000)
        assert leaf.parent.depth == 3

    def test_reinsert_updates_payload(self):
        trie = build(entries=[(5, 2.0)])
        trie.insert(5, 7.0)
        assert trie.leaf(5).frequency == 7.0
        assert len(trie) == 1

    def test_core_flag_is_sticky(self):
        trie = build()
        trie.insert(5, 1.0, is_core=True)
        trie.insert(5, 3.0)
        assert trie.leaf(5).is_core

    def test_rejects_negative_frequency(self):
        with pytest.raises(ConfigurationError):
            build().insert(5, -1.0)

    def test_rejects_out_of_range_id(self):
        with pytest.raises(ConfigurationError):
            build(bits=4).insert(16)


class TestAggregates:
    def test_frequency_sum_propagates(self):
        trie = build(entries=[(1, 2.0), (2, 3.0), (200, 5.0)])
        assert trie.total_frequency() == pytest.approx(10.0)

    def test_core_and_eligible_counts(self):
        trie = build()
        trie.insert(1, 1.0)
        trie.insert(2, 1.0, is_core=True)
        assert trie.root.eligible_count == 1
        assert trie.root.has_core

    def test_update_frequency(self):
        trie = build(entries=[(1, 2.0), (130, 3.0)])
        trie.update_frequency(1, 10.0)
        assert trie.total_frequency() == pytest.approx(13.0)

    def test_add_frequency(self):
        trie = build(entries=[(1, 2.0)])
        trie.add_frequency(1, 0.5)
        assert trie.leaf(1).frequency == pytest.approx(2.5)
        with pytest.raises(ConfigurationError):
            trie.add_frequency(1, -10.0)


class TestRemove:
    def test_remove_leaf_and_recompress(self):
        trie = build(entries=[(0b10110000, 1.0), (0b10100000, 1.0), (0b00000001, 1.0)])
        trie.remove(0b10110000)
        assert 0b10110000 not in trie
        assert len(trie) == 2
        check_invariants(trie)

    def test_remove_last_leaf(self):
        trie = build(entries=[(5, 1.0)])
        trie.remove(5)
        assert len(trie) == 0
        assert trie.total_frequency() == 0.0

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            build().remove(3)


class TestQosMarkers:
    def test_set_required_marks_right_height(self):
        trie = build(bits=8, entries=[(0b10110000, 1.0), (0b10100000, 1.0)])
        trie.set_required(0b10110000, max_distance=4)
        marked = [v for v in trie.postorder() if v.required]
        assert len(marked) == 1
        # Height of the marked subtree (bits - depth) must not exceed the bound.
        assert trie.space.bits - marked[0].depth <= 4

    def test_zero_distance_marks_leaf(self):
        trie = build(bits=8, entries=[(7, 1.0)])
        trie.set_required(7, max_distance=0)
        assert trie.leaf(7).required

    def test_clear_required(self):
        trie = build(bits=8, entries=[(7, 1.0)])
        trie.set_required(7, max_distance=2)
        trie.clear_required()
        assert not any(v.required for v in trie.postorder())


class TestTraversal:
    def test_postorder_children_first(self):
        trie = build(entries=[(1, 1.0), (2, 1.0), (200, 1.0)])
        order = list(trie.postorder())
        position = {id(v): i for i, v in enumerate(order)}
        for vertex in order:
            for child in vertex.children.values():
                assert position[id(child)] < position[id(vertex)]
        assert order[-1] is trie.root

    def test_leaves_sorted(self):
        trie = build(entries=[(9, 1.0), (1, 1.0), (5, 1.0)])
        assert [leaf.peer for leaf in trie.leaves()] == [1, 5, 9]

    def test_path_to_root(self):
        trie = build(entries=[(1, 1.0), (2, 1.0)])
        path = trie.path_to_root(trie.leaf(1))
        assert path[0].peer == 1
        assert path[-1] is trie.root


class TestNotifications:
    def test_paths_reported_leaf_first(self):
        events = []
        trie = PeerTrie(IdSpace(8), on_path_change=lambda path: events.append(list(path)))
        trie.insert(3, 1.0)
        trie.insert(200, 1.0)
        assert events  # every mutation reports
        for path in events:
            assert path[-1] is trie.root
            depths = [v.depth for v in path]
            assert depths == sorted(depths, reverse=True)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.booleans()), min_size=1, max_size=60))
def test_random_insert_remove_matches_reference(operations):
    """Fuzz inserts/removes against a plain dict reference model."""
    trie = PeerTrie(IdSpace(8))
    reference = {}
    rng = random.Random(0)
    for peer, remove in operations:
        if remove and reference:
            victim = rng.choice(sorted(reference))
            trie.remove(victim)
            del reference[victim]
        else:
            freq = float(rng.randint(0, 9))
            trie.insert(peer, freq)
            reference[peer] = freq
    assert sorted(leaf.peer for leaf in trie.leaves()) == sorted(reference)
    assert trie.total_frequency() == pytest.approx(sum(reference.values()))
    check_invariants(trie)
