"""FaultPlane unit tests: determinism, partitions, bursts, corruption."""

import random

from repro.faults import FaultPlane, FaultSchedule


def make_plane(schedule: FaultSchedule, seed: int = 7) -> FaultPlane:
    return FaultPlane(schedule, random.Random(seed))


class TestDeliver:
    def test_lossless_plane_delivers_everything(self):
        plane = make_plane(FaultSchedule())
        assert all(plane.deliver(1, 2) for _ in range(200))
        assert plane.dropped == 0
        assert plane.delivered == 200

    def test_loss_stream_is_seed_deterministic(self):
        schedule = FaultSchedule(loss_rate=0.3)
        a = make_plane(schedule, seed=5)
        b = make_plane(schedule, seed=5)
        assert [a.deliver(1, 2) for _ in range(500)] == [b.deliver(1, 2) for _ in range(500)]

    def test_loss_rate_is_roughly_honored(self):
        plane = make_plane(FaultSchedule(loss_rate=0.2), seed=11)
        outcomes = [plane.deliver(1, 2) for _ in range(2000)]
        drop_fraction = outcomes.count(False) / len(outcomes)
        assert 0.15 < drop_fraction < 0.25
        assert plane.dropped + plane.delivered == 2000


class TestPartition:
    def test_cut_blocks_only_crossing_messages(self):
        plane = make_plane(FaultSchedule(partition_fraction=0.5))
        plane.start_partition([1, 2, 3, 4])
        inside = plane.partitioned
        outside = [n for n in [1, 2, 3, 4] if n not in inside]
        a, b = sorted(inside)[0], outside[0]
        assert not plane.deliver(a, b)  # crossing: blocked
        assert not plane.deliver(b, a)  # crossing, either direction
        assert plane.deliver(outside[0], outside[1])  # same side: flows
        assert plane.deliver(*sorted(inside)[:2])
        assert plane.blocked == 2

    def test_blocked_messages_consume_no_random_draws(self):
        """Partition checks must not shift the loss stream: a plane that
        blocks some crossing messages first must afterwards flip the same
        coins as one that never saw them."""
        schedule = FaultSchedule(loss_rate=0.4, partition_fraction=0.5)
        blocked = make_plane(schedule, seed=3)
        blocked.partitioned = frozenset({1})
        for _ in range(50):
            assert not blocked.deliver(1, 2)  # all blocked, zero draws
        blocked.end_partition()
        clean = make_plane(schedule, seed=3)
        assert [blocked.deliver(5, 6) for _ in range(300)] == [
            clean.deliver(5, 6) for _ in range(300)
        ]

    def test_end_partition_heals(self):
        plane = make_plane(FaultSchedule(partition_fraction=0.5))
        plane.start_partition([1, 2])
        plane.end_partition()
        assert plane.deliver(1, 2)

    def test_zero_fraction_is_a_noop(self):
        plane = make_plane(FaultSchedule())
        assert plane.start_partition([1, 2, 3]) == frozenset()


class TestChooseBurst:
    def test_burst_is_sorted_and_deterministic(self):
        schedule = FaultSchedule(crash_burst_size=4)
        a = make_plane(schedule, seed=9).choose_burst(list(range(20)))
        b = make_plane(schedule, seed=9).choose_burst(list(range(20)))
        assert a == b == sorted(a)
        assert len(a) == 4

    def test_burst_respects_min_alive_floor(self):
        plane = make_plane(FaultSchedule(crash_burst_size=10))
        victims = plane.choose_burst([1, 2, 3, 4], min_alive=2)
        assert len(victims) == 2

    def test_disabled_burst_is_empty(self):
        plane = make_plane(FaultSchedule())
        assert plane.choose_burst(list(range(10))) == []
        assert plane.bursts == 0


class TestCorruptPointer:
    def test_prefers_a_dead_target(self, small_universe):
        ring = small_universe("chord", n=16, seed=4)
        dead = ring.alive_ids()[3]
        ring.crash(dead)
        plane = make_plane(FaultSchedule(stale_rate=1.0))
        victim, target = plane.corrupt_pointer(ring)
        assert target == dead
        assert target in ring.node(victim).auxiliary
        assert plane.corrupted == 1

    def test_falls_back_to_a_live_wrong_target(self, small_universe):
        ring = small_universe("chord", n=8, seed=4)
        plane = make_plane(FaultSchedule(stale_rate=1.0))
        victim, target = plane.corrupt_pointer(ring)
        assert target != victim
        assert ring.node(target).alive
