"""FaultSchedule / RetryPolicy validation and semantics."""

import pytest

from repro.faults import FaultSchedule, RetryPolicy
from repro.util.errors import ConfigurationError


class TestFaultSchedule:
    def test_default_is_inactive(self):
        assert not FaultSchedule().active

    @pytest.mark.parametrize(
        "overrides",
        [
            {"loss_rate": 0.05},
            {"crash_burst_size": 3},
            {"partition_fraction": 0.25},
            {"stale_rate": 0.01},
        ],
    )
    def test_each_fault_kind_activates(self, overrides):
        assert FaultSchedule(**overrides).active

    def test_timing_only_fields_do_not_activate(self):
        schedule = FaultSchedule(crash_burst_interval=10.0, partition_start=5.0)
        assert not schedule.active

    @pytest.mark.parametrize(
        "overrides",
        [
            {"loss_rate": -0.1},
            {"loss_rate": 1.0},
            {"crash_burst_size": -1},
            {"crash_burst_interval": 0.0},
            {"crash_burst_downtime": -3.0},
            {"partition_fraction": 1.0},
            {"partition_start": -1.0},
            {"partition_duration": -2.0},
            {"stale_rate": -0.5},
        ],
    )
    def test_rejects_invalid_fields(self, overrides):
        with pytest.raises(ConfigurationError):
            FaultSchedule(**overrides)

    def test_is_hashable_and_comparable(self):
        """Frozen-by-value: lives inside the frozen ExperimentConfig and
        must compare equal across pickling boundaries."""
        a = FaultSchedule(loss_rate=0.05, crash_burst_size=2)
        b = FaultSchedule(loss_rate=0.05, crash_burst_size=2)
        assert a == b
        assert hash(a) == hash(b)


class TestRetryPolicy:
    def test_single_reproduces_legacy_accounting(self):
        policy = RetryPolicy.single()
        assert policy.max_attempts == 1
        # attempt 0 must cost exactly one hop-equivalent: the routing layer
        # subtracts 1.0 (the classic timeout) and keeps only the excess.
        assert policy.attempt_penalty(0) == 1.0

    def test_attempt_zero_is_plain_timeout_regardless_of_base(self):
        # Per the docstring, attempt 0 is the ordinary timeout: the backoff
        # terms only kick in on retries, whatever the base/factor.
        policy = RetryPolicy(max_attempts=3, backoff_base=5.0, backoff_factor=3.0)
        assert policy.attempt_penalty(0) == 1.0
        assert policy.attempt_penalty(1) == 1.0 + 5.0
        assert policy.attempt_penalty(2) == 1.0 + 15.0

    def test_robust_backoff_doubles(self):
        policy = RetryPolicy.robust()
        assert policy.max_attempts == 3
        # Timeout, then retries with backoff waits of 1 and 2 hops.
        assert [policy.attempt_penalty(i) for i in range(3)] == [1.0, 2.0, 3.0]

    @pytest.mark.parametrize(
        "overrides",
        [
            {"max_attempts": 0},
            {"backoff_base": 0.0},
            {"backoff_base": -1.0},
            {"backoff_factor": 0.5},
        ],
    )
    def test_rejects_invalid_fields(self, overrides):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**overrides)
