"""Routing under faults: retry accounting, failover, bit-compatibility.

The contract being defended: with no retry policy and no fault plane the
routing layer must behave *bit for bit* like the pre-fault code, and with
them the lookup must degrade gracefully — retries are charged as hop
penalties, exhausted neighbors are evicted, and the successor-list /
leaf-set redundancy routes around the hole.
"""

import random

import pytest

from repro.chord.routing import LookupResult
from repro.faults import FaultPlane, FaultSchedule, RetryPolicy


def all_lookups(overlay, is_chord, **kwargs):
    """Lookups from every node to the first eight node ids (both overlays
    take the same keyword surface; Pastry defaults to proximity mode)."""
    del is_chord  # same call shape either way; kept for test readability
    ids = overlay.alive_ids()
    results = []
    for source in ids:
        for key in ids[:8]:
            if key != source:
                results.append(overlay.lookup(source, key, record_access=False, **kwargs))
    return results


class TestLatencyAccounting:
    def test_penalty_free_latency_stays_integral(self):
        result = LookupResult(key=1, source=2, destination=3, hops=4, timeouts=2)
        assert result.latency == 6
        assert isinstance(result.latency, int)

    def test_penalty_adds_to_latency(self):
        result = LookupResult(key=1, source=2, destination=3, hops=4, timeouts=3, penalty=4.0)
        # 3 timeouts cost 3 baseline + 4.0 extra backoff.
        assert result.latency == pytest.approx(11.0)


class TestBitCompatibility:
    @pytest.mark.parametrize("is_chord", [True, False])
    def test_explicit_single_policy_matches_default(self, is_chord, small_universe):
        kind = "chord" if is_chord else "pastry"
        before = all_lookups(small_universe(kind), is_chord)
        after = all_lookups(small_universe(kind), is_chord, retry=RetryPolicy.single())
        assert [(r.hops, r.timeouts, r.path) for r in before] == [
            (r.hops, r.timeouts, r.path) for r in after
        ]
        assert all(r.penalty == 0.0 for r in after)

    @pytest.mark.parametrize("is_chord", [True, False])
    def test_lossless_plane_matches_no_plane(self, is_chord, small_universe):
        kind = "chord" if is_chord else "pastry"
        plane = FaultPlane(FaultSchedule(), random.Random(0))
        before = all_lookups(small_universe(kind), is_chord)
        after = all_lookups(small_universe(kind), is_chord, faults=plane)
        assert [(r.hops, r.timeouts, r.path) for r in before] == [
            (r.hops, r.timeouts, r.path) for r in after
        ]


class TestRetryUnderLoss:
    @pytest.mark.parametrize("is_chord", [True, False])
    def test_robust_retry_keeps_lookups_succeeding(self, is_chord, small_universe):
        overlay = small_universe("chord" if is_chord else "pastry")
        plane = FaultPlane(FaultSchedule(loss_rate=0.1), random.Random(5))
        results = all_lookups(overlay, is_chord, retry=RetryPolicy.robust(), faults=plane)
        assert plane.dropped > 0
        success_rate = sum(r.succeeded for r in results) / len(results)
        assert success_rate > 0.99
        # Backoff penalties only appear on lookups that actually timed out.
        for r in results:
            assert r.penalty >= 0.0
            assert (r.penalty == 0.0) or (r.timeouts > 0)
            assert r.latency >= r.hops + r.timeouts

    def test_retry_drops_fewer_live_neighbors_than_single(self, small_universe):
        """The point of retrying: under pure message loss (all nodes live)
        the single-attempt policy evicts healthy neighbors on every drop;
        the robust policy retries through, keeping timeout counts at the
        same order but never severing live links permanently."""
        schedule = FaultSchedule(loss_rate=0.15)
        single_overlay = small_universe("chord", seed=6)
        single_results = all_lookups(
            single_overlay,
            True,
            retry=RetryPolicy.single(),
            faults=FaultPlane(schedule, random.Random(9)),
        )
        robust_overlay = small_universe("chord", seed=6)
        robust_results = all_lookups(
            robust_overlay,
            True,
            retry=RetryPolicy.robust(),
            faults=FaultPlane(schedule, random.Random(9)),
        )
        evicted_single = sum(
            len(single_overlay.node(i).table) for i in single_overlay.alive_ids()
        )
        evicted_robust = sum(
            len(robust_overlay.node(i).table) for i in robust_overlay.alive_ids()
        )
        # Robust tables keep (weakly) more entries: retries resolve drops.
        assert evicted_robust >= evicted_single
        assert all(r.succeeded for r in robust_results)
        assert single_results  # both universes actually routed


class TestFailover:
    def test_chord_routes_around_a_crashed_hop(self, small_universe):
        ring = small_universe("chord", n=48, seed=11)
        ids = ring.alive_ids()
        # Find a lookup that transits an intermediate node.
        probe = None
        for source in ids:
            for key in ids:
                if key == source:
                    continue
                result = ring.lookup(source, key, record_access=False)
                if result.succeeded and len(result.path) >= 3:
                    probe = (source, key, result.path[1])
                    break
            if probe:
                break
        assert probe is not None
        source, key, intermediate = probe
        ring.crash(intermediate)
        rerouted = ring.lookup(source, key, record_access=False, retry=RetryPolicy.robust())
        assert rerouted.succeeded
        assert intermediate not in rerouted.path
        assert rerouted.timeouts >= 1  # paid for discovering the corpse

    def test_exhausted_neighbor_is_evicted(self, small_universe):
        ring = small_universe("chord", n=24, seed=2)
        source = ring.alive_ids()[0]
        # Any table entry works as the victim: keying the lookup on the
        # victim id itself makes it the forced first hop.
        victim = ring.node(source).table.entries()[-1]
        ring.crash(victim)
        assert victim in ring.node(source).table.entries()
        ring.lookup(source, victim, record_access=False, retry=RetryPolicy.robust())
        assert victim not in ring.node(source).table.entries()


class TestPartitionedRouting:
    def test_partition_blocks_cross_cut_forwards(self, small_universe):
        ring = small_universe("chord", n=32, seed=8)
        plane = FaultPlane(FaultSchedule(partition_fraction=0.4), random.Random(1))
        plane.start_partition(ring.alive_ids())
        all_lookups(ring, True, faults=plane)
        assert plane.blocked > 0
