"""Shared helpers for building randomized selection problems in tests."""

from __future__ import annotations

import random

from repro.core.types import SelectionProblem
from repro.util.ids import IdSpace


def random_problem(
    rng: random.Random,
    bits: int = 8,
    peers: int = 8,
    cores: int = 2,
    k: int = 2,
    max_weight: int = 20,
) -> SelectionProblem:
    """Build a random selection problem with integer weights.

    Integer weights keep cost comparisons exact, so optimal algorithms can
    be compared for equality without floating-point tolerance games.
    """
    space = IdSpace(bits)
    source = rng.randrange(space.size)
    # Sample from the range lazily (a 32-bit space must never be
    # materialized); over-draw by one in case the source is hit.
    want = min(peers + cores, space.size - 1)
    chosen = [value for value in rng.sample(range(space.size), want + 1) if value != source]
    chosen = chosen[: want]
    peer_ids = chosen[:peers]
    core_ids = chosen[peers:]
    frequencies = {peer: float(rng.randint(1, max_weight)) for peer in peer_ids}
    return SelectionProblem(
        space=space,
        source=source,
        frequencies=frequencies,
        core_neighbors=frozenset(core_ids),
        k=k,
    )


def problem_from_lists(
    bits: int,
    source: int,
    peer_weights: dict[int, float],
    cores: list[int],
    k: int,
    bounds: dict[int, int] | None = None,
) -> SelectionProblem:
    """Convenience constructor for hand-written instances."""
    return SelectionProblem(
        space=IdSpace(bits),
        source=source,
        frequencies=peer_weights,
        core_neighbors=frozenset(cores),
        k=k,
        delay_bounds=bounds or {},
    )
