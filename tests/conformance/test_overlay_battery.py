"""Cross-overlay conformance battery.

One parametrized suite runs every overlay backend — Chord, Pastry,
Kademlia — through the same behavioural contract, replacing the
copy-pasted per-overlay property tests that used to live in
``tests/chord`` and ``tests/pastry``:

* stable lookups terminate at the responsible node, validated against a
  *linear-scan* oracle re-deriving responsibility from the overlay's own
  distance metric (no bisect, no routing);
* every delivered hop makes strict progress under that metric;
* hop counts respect the O(log n) bound (and never exceed the id length);
* crash half / stabilize / rejoin / stabilize is idempotent: the live set,
  responsibility and full lookup correctness all come back;
* figure-cell JSON is byte-identical at ``--jobs 1`` vs ``--jobs 4`` once
  volatile manifest keys are stripped.

Adding a fourth overlay means adding one entry to :data:`OVERLAYS` plus
its two metric lambdas — the battery itself does not change.
"""

import json
import math
import random

import pytest

from repro.pastry.routing import circular_distance

OVERLAYS = ("chord", "pastry", "kademlia")

_N = 32
_BITS = 14


def _oracle_responsible(overlay_kind, space, alive, key):
    """Linear-scan responsibility under the overlay's own metric."""
    if overlay_kind == "chord":
        return min(alive, key=lambda nid: space.gap(nid, key))
    if overlay_kind == "kademlia":
        return min(alive, key=lambda nid: nid ^ key)
    return min(alive, key=lambda nid: (circular_distance(space, nid, key), nid))


def _assert_strict_progress(overlay_kind, space, path, key):
    """Every delivered hop strictly improves the overlay's metric."""
    if overlay_kind == "chord":
        gaps = [space.gap(node, key) for node in path]
        assert gaps == sorted(gaps, reverse=True)
        assert len(set(gaps)) == len(gaps), f"stalled hop in {path}"
        return
    if overlay_kind == "kademlia":
        distances = [node ^ key for node in path]
        assert distances == sorted(distances, reverse=True)
        assert len(set(distances)) == len(distances), f"stalled hop in {path}"
        return
    for cur, nxt in zip(path, path[1:]):
        lcp_cur = space.common_prefix_length(cur, key)
        lcp_next = space.common_prefix_length(nxt, key)
        dist_cur = circular_distance(space, cur, key)
        dist_next = circular_distance(space, nxt, key)
        assert (
            lcp_next > lcp_cur
            or dist_next < dist_cur
            or (dist_next == dist_cur and nxt < cur)
        ), f"hop {cur} -> {nxt} made no progress toward {key}"


@pytest.fixture(params=OVERLAYS)
def overlay_kind(request):
    return request.param


class TestStableLookups:
    def test_terminates_at_linear_scan_responsible(self, small_universe, overlay_kind):
        overlay = small_universe(overlay_kind, n=_N, bits=_BITS, seed=5)
        rng = random.Random(5)
        ids = overlay.alive_ids()
        for __ in range(40):
            source = ids[rng.randrange(len(ids))]
            key = rng.randrange(overlay.space.size)
            result = overlay.lookup(source, key, record_access=False)
            assert result.succeeded
            assert result.timeouts == 0
            assert result.destination == _oracle_responsible(
                overlay_kind, overlay.space, ids, key
            )
            assert result.path[0] == source
            assert result.path[-1] == result.destination

    def test_every_hop_makes_strict_progress(self, small_universe, overlay_kind):
        overlay = small_universe(overlay_kind, n=_N, bits=_BITS, seed=6)
        rng = random.Random(6)
        ids = overlay.alive_ids()
        for __ in range(40):
            source = ids[rng.randrange(len(ids))]
            key = rng.randrange(overlay.space.size)
            result = overlay.lookup(source, key, record_access=False)
            assert len(set(result.path)) == len(result.path)  # no revisits
            _assert_strict_progress(overlay_kind, overlay.space, result.path, key)

    def test_hop_counts_are_logarithmic(self, small_universe, overlay_kind):
        overlay = small_universe(overlay_kind, n=_N, bits=_BITS, seed=7)
        rng = random.Random(7)
        ids = overlay.alive_ids()
        hops = []
        for __ in range(60):
            source = ids[rng.randrange(len(ids))]
            key = rng.randrange(overlay.space.size)
            result = overlay.lookup(source, key, record_access=False)
            assert result.hops <= _BITS  # hard per-lookup ceiling
            hops.append(result.hops)
        # The O(log n) claim, with slack for the constant factor.
        assert sum(hops) / len(hops) <= math.log2(_N) + 1


class TestResponsibility:
    def test_responsible_matches_linear_scan(self, small_universe, overlay_kind):
        overlay = small_universe(overlay_kind, n=24, bits=12, seed=8)
        rng = random.Random(8)
        ids = overlay.alive_ids()
        for __ in range(50):
            key = rng.randrange(overlay.space.size)
            assert overlay.responsible(key) == _oracle_responsible(
                overlay_kind, overlay.space, ids, key
            )


class TestCrashRejoinIdempotence:
    def test_crash_half_then_rejoin_restores_everything(
        self, small_universe, overlay_kind
    ):
        overlay = small_universe(overlay_kind, n=24, bits=_BITS, seed=9)
        before = list(overlay.alive_ids())
        victims = before[::2]
        for victim in victims:
            overlay.crash(victim)
        overlay.stabilize_all()
        survivors = overlay.alive_ids()
        assert survivors == [nid for nid in before if nid not in set(victims)]
        # Survivors still serve correct lookups among themselves.
        rng = random.Random(9)
        for __ in range(10):
            source = survivors[rng.randrange(len(survivors))]
            key = rng.randrange(overlay.space.size)
            result = overlay.lookup(source, key, record_access=False)
            assert result.succeeded
            assert result.destination == _oracle_responsible(
                overlay_kind, overlay.space, survivors, key
            )
        for victim in victims:
            overlay.rejoin(victim)
        overlay.stabilize_all()
        assert overlay.alive_ids() == before
        for __ in range(20):
            source = before[rng.randrange(len(before))]
            key = rng.randrange(overlay.space.size)
            result = overlay.lookup(source, key, record_access=False)
            assert result.succeeded
            assert result.timeouts == 0
            assert result.destination == _oracle_responsible(
                overlay_kind, overlay.space, before, key
            )


class TestFigureDeterminism:
    def test_figure_cell_json_identical_across_jobs(self):
        """The three-overlay figure-7 document is byte-identical at one
        worker and four, after stripping volatile manifest keys."""
        from repro.experiments.figures import FigurePreset, result_to_json, run_figure
        from repro.obs.manifest import strip_volatile

        preset = FigurePreset(
            name="conformance-tiny",
            bits=_BITS,
            queries=300,
            pastry_sizes=(16,),
            pastry_k_base=16,
            chord_sizes=(16,),
            chord_k_base=16,
            churn_duration=60.0,
            churn_warmup=20.0,
            seed=0,
            kademlia_sizes=(24,),
            kademlia_k_base=24,
        )
        documents = []
        for jobs in (1, 4):
            result = run_figure("7", preset, jobs=jobs)
            payload = json.loads(result_to_json(result, preset))
            documents.append(
                json.dumps(strip_volatile(payload), sort_keys=True, indent=2)
            )
        assert documents[0] == documents[1]
        parsed = json.loads(documents[0])
        assert {series["label"] for series in parsed["series"]} == set(OVERLAYS)
