"""Workload × overlay conformance battery.

Companion to ``test_overlay_battery``: every scenario in the workload
registry runs through the real stable runner on every overlay backend,
asserting the same behavioural contract everywhere — the run completes
at full query count with zero failures (fault-free universes), repeats
bit-identically, and labels carry the workload so result files are
self-describing. Adding a scenario to :data:`repro.workload.spec.WORKLOADS`
means adding one spec string to :data:`SCENARIOS` here — the battery
itself does not change.
"""

import pytest

from repro.sim.runner import ExperimentConfig, _Bench, run_stable
from repro.util.rng import SeedSequenceRegistry
from repro.workload.spec import DEFAULT_RATE, record_trace

OVERLAYS = ("chord", "pastry", "kademlia")
SCENARIOS = (
    "static-zipf",
    "drifting-zipf:20",
    "flash-crowd:2",
    "diurnal:40",
    "hotspot-rotation:25",
)

_N = 24
_BITS = 14
_QUERIES = 200
_SEED = 3


def _config(overlay, workload, **overrides):
    defaults = dict(
        overlay=overlay, n=_N, bits=_BITS, queries=_QUERIES, seed=_SEED, workload=workload
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(params=OVERLAYS)
def overlay_kind(request):
    return request.param


class TestScenarioBattery:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_runs_to_completion_without_failures(self, overlay_kind, scenario):
        result = run_stable(_config(overlay_kind, scenario))
        for stats in (result.optimized, result.baseline):
            assert stats.lookups == _QUERIES
            assert stats.failure_rate == 0.0
            assert stats.mean_hops > 0.0

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_repeats_bit_identically(self, overlay_kind, scenario):
        first = run_stable(_config(overlay_kind, scenario))
        second = run_stable(_config(overlay_kind, scenario))
        assert first.optimized.mean_hops == second.optimized.mean_hops
        assert first.baseline.mean_hops == second.baseline.mean_hops
        assert first.improvement == second.improvement

    def test_scenarios_actually_differ(self, overlay_kind):
        """The plane is not decorative: distinct scenarios route distinct
        traffic through the same universe."""
        means = {
            scenario: run_stable(_config(overlay_kind, scenario)).baseline.mean_hops
            for scenario in SCENARIOS
        }
        assert len(set(means.values())) > 1

    def test_labels_carry_the_workload(self, overlay_kind):
        static = run_stable(_config(overlay_kind, "static-zipf"))
        drifted = run_stable(_config(overlay_kind, "drifting-zipf:20"))
        assert "workload=" not in static.label  # legacy labels unchanged
        assert "workload=drifting-zipf:20" in drifted.label


class TestTraceWorkload:
    def test_recorded_trace_replays_through_the_runner(self, tmp_path, overlay_kind):
        """End-to-end: record a scenario into a trace file, then drive the
        stable runner from ``trace:PATH`` against the same universe."""
        config = _config(overlay_kind, "flash-crowd:2")
        bench = _Bench(config, SeedSequenceRegistry(config.seed))
        live = bench.overlay.alive_ids()
        stream = bench.workload_stream("queries", horizon=_QUERIES / DEFAULT_RATE)
        trace = record_trace(stream, _QUERIES, lambda: live, metadata={"origin": "battery"})
        path = tmp_path / "battery.jsonl"
        trace.save(path)

        replayed = run_stable(_config(overlay_kind, f"trace:{path}"))
        direct = run_stable(config)
        # Same universe seed + same query sequence -> identical measurement.
        assert replayed.optimized.lookups == _QUERIES
        assert replayed.optimized.mean_hops == direct.optimized.mean_hops
        assert replayed.baseline.mean_hops == direct.baseline.mean_hops
