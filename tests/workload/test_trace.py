"""Tests for query-trace recording, persistence and replay."""

import pytest

from repro.util.errors import ConfigurationError
from repro.workload.queries import Query
from repro.workload.trace import QueryTrace


class TestRecording:
    def test_record_and_iterate(self):
        trace = QueryTrace()
        trace.record(0.0, 1, 100)
        trace.record(1.5, 2, 200)
        assert len(trace) == 2
        assert [entry.item for entry in trace] == [100, 200]
        assert trace.sources() == {1, 2}

    def test_times_must_not_decrease(self):
        trace = QueryTrace()
        trace.record(5.0, 1, 100)
        with pytest.raises(ConfigurationError):
            trace.record(4.0, 1, 101)

    def test_between(self):
        trace = QueryTrace()
        for t in range(5):
            trace.record(float(t), 1, t)
        assert [entry.item for entry in trace.between(1.0, 3.0)] == [1, 2]

    def test_from_queries_spacing(self):
        trace = QueryTrace.from_queries([Query(1, 10), Query(2, 20)], rate=2.0)
        assert [entry.time for entry in trace] == [0.0, 0.5]
        with pytest.raises(ConfigurationError):
            QueryTrace.from_queries([], rate=0.0)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        trace = QueryTrace(metadata={"alpha": 1.2})
        trace.record(0.0, 3, 300)
        trace.record(2.5, 4, 400)
        path = tmp_path / "queries.jsonl"
        trace.save(path)
        loaded = QueryTrace.load(path)
        assert loaded.metadata == {"alpha": 1.2}
        assert loaded.entries == trace.entries

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not_a_trace.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ConfigurationError):
            QueryTrace.load(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            QueryTrace.load(path)

    def test_rejects_malformed_entry(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro-query-trace-v1", "metadata": {}, "count": 1}\n'
            '{"t": 0.0, "src": 1}\n'
        )
        with pytest.raises(ConfigurationError, match="malformed"):
            QueryTrace.load(path)

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text(
            '{"format": "repro-query-trace-v1", "metadata": {}, "count": 2}\n'
            '{"t": 0.0, "src": 1, "item": 5}\n'
        )
        with pytest.raises(ConfigurationError, match="promises"):
            QueryTrace.load(path)

    def test_rejects_headerless_file_with_line_number(self, tmp_path):
        # A file that starts straight with entries has no header object;
        # the error must be ConfigurationError (never a raw KeyError) and
        # must point at line 1.
        path = tmp_path / "headerless.jsonl"
        path.write_text('{"t": 0.0, "src": 1, "item": 5}\n')
        with pytest.raises(ConfigurationError, match=r"headerless\.jsonl:1: not a"):
            QueryTrace.load(path)

    def test_rejects_unparseable_header_with_line_number(self, tmp_path):
        # Garbage on line 1 must surface as ConfigurationError, not leak
        # json.JSONDecodeError to the caller.
        path = tmp_path / "garbage.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(ConfigurationError, match=r"garbage\.jsonl:1: malformed trace header"):
            QueryTrace.load(path)

    def test_rejects_non_object_header(self, tmp_path):
        path = tmp_path / "listheader.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ConfigurationError, match="must be a JSON object, got list"):
            QueryTrace.load(path)

    def test_wrong_format_version_names_the_expected_format(self, tmp_path):
        path = tmp_path / "v0.jsonl"
        path.write_text('{"format": "repro-query-trace-v0", "metadata": {}, "count": 0}\n')
        with pytest.raises(
            ConfigurationError,
            match=r"not a repro-query-trace-v1 file \(format='repro-query-trace-v0'\)",
        ):
            QueryTrace.load(path)

    def test_malformed_entry_cites_its_line_number(self, tmp_path):
        path = tmp_path / "badline.jsonl"
        path.write_text(
            '{"format": "repro-query-trace-v1", "metadata": {}, "count": 2}\n'
            '{"t": 0.0, "src": 1, "item": 5}\n'
            "not json either\n"
        )
        with pytest.raises(ConfigurationError, match=r"badline\.jsonl:3: malformed trace entry"):
            QueryTrace.load(path)

    def test_non_numeric_entry_payload_is_configuration_error(self, tmp_path):
        # A schema-valid line with a broken payload (entry is a list, so
        # indexing by key raises TypeError internally) is still reported
        # as ConfigurationError with its line number.
        path = tmp_path / "weird.jsonl"
        path.write_text(
            '{"format": "repro-query-trace-v1", "metadata": {}, "count": 1}\n'
            "[0.0, 1, 5]\n"
        )
        with pytest.raises(ConfigurationError, match=r"weird\.jsonl:2: malformed trace entry"):
            QueryTrace.load(path)


class TestReplay:
    def test_replay_reproducible(self, small_universe):
        ring = small_universe("chord", n=16, bits=14, seed=1)
        ids = ring.alive_ids()
        trace = QueryTrace.from_queries([Query(ids[0], 100), Query(ids[1], 5000)])
        first = [r.hops for r in trace.replay_onto(ring)]
        second = [r.hops for r in trace.replay_onto(ring)]
        assert first == second
        assert all(r.succeeded for r in trace.replay_onto(ring))

    def test_replay_skips_dead_and_unknown_sources(self, small_universe):
        ring = small_universe("chord", n=8, bits=14, seed=2)
        ids = ring.alive_ids()
        stranger = next(i for i in range(2**14) if i not in ring.nodes)
        trace = QueryTrace.from_queries(
            [Query(ids[0], 1), Query(ids[1], 2), Query(stranger, 3)]
        )
        ring.crash(ids[1])
        results = trace.replay_onto(ring)
        assert len(results) == 1
