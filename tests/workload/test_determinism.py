"""The workload determinism gate — and the mutation test that proves it.

The contract (DESIGN.md §13) says a scenario generator must be a pure
function of its :class:`WorkloadContext`: rebuild the stream from an
equal context and you get the same queries, which is what keeps cells
byte-identical under ``--jobs`` process fan-out. ``assert_deterministic``
below *is* that gate, distilled; the mutation test registers a generator
that deliberately leaks RNG state across builds (a module-level
``random.Random``, exactly the bug the contract bans) and watches the
gate trip, proving the gate can actually fail. The same gate then passes
for every real scenario, in-process and across worker processes.
"""

import random

import pytest

from repro.sim.runner import ExperimentConfig, run_stable
from repro.util.parallel import run_tasks
from repro.workload.queries import Query
from repro.workload.spec import WORKLOADS, WorkloadSpec, WorkloadStream

from tests.workload.test_spec import SCENARIOS, make_context

#: Module-level shared state — the exact defect the contract forbids.
_LEAKY_RNG = random.Random(1234)


class _LeakyStream(WorkloadStream):
    """Draws from process-global RNG state instead of the context's."""

    def next_query(self, live_sources):
        items = self.context.catalog.item_ids
        source = live_sources[_LEAKY_RNG.randrange(len(live_sources))]
        return Query(source, items[_LEAKY_RNG.randrange(len(items))])


def _build_leaky(context, param):
    return _LeakyStream(context)


def emitted(spec, seed, count=120):
    context = make_context(seed)
    live = sorted(context.assignment)
    return list(spec.build(context).stream(count, lambda: live))


def assert_deterministic(spec, seed=0, count=120):
    """The gate: two streams from equal contexts emit identical queries."""
    first = emitted(spec, seed, count)
    second = emitted(spec, seed, count)
    assert first == second, f"workload {spec.label!r} is not context-deterministic"


class TestMutation:
    def test_rng_state_leak_trips_the_gate(self, monkeypatch):
        monkeypatch.setitem(WORKLOADS, "leaky", _build_leaky)
        spec = WorkloadSpec("leaky")
        # The leaky generator keeps consuming the shared RNG, so the
        # second build sees different draws and the gate must fire.
        with pytest.raises(AssertionError, match="not context-deterministic"):
            assert_deterministic(spec)

    def test_every_real_scenario_passes_the_same_gate(self):
        for spec_text in SCENARIOS:
            assert_deterministic(WorkloadSpec.parse(spec_text))


def _summary(result):
    return (
        result.improvement,
        result.optimized.mean_hops,
        result.optimized.failure_rate,
        result.baseline.mean_hops,
        result.baseline.failure_rate,
    )


class TestProcessFanOut:
    @pytest.mark.parametrize("spec_text", SCENARIOS)
    def test_jobs_1_and_4_agree_for_every_scenario(self, spec_text):
        """Tiny four-cell plan, serial vs four worker processes: every
        scenario must survive pickling into fresh interpreters bit-for-bit."""
        configs = [
            ExperimentConfig(
                overlay=overlay,
                n=24,
                bits=14,
                queries=200,
                seed=seed,
                workload=spec_text,
            )
            for overlay, seed in (("chord", 0), ("chord", 1), ("pastry", 0), ("kademlia", 0))
        ]
        serial = [_summary(r) for r in run_tasks(run_stable, configs, 1)]
        fanned = [_summary(r) for r in run_tasks(run_stable, configs, 4)]
        assert serial == fanned
