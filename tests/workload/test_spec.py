"""Property suite for the workload plane (DESIGN.md §13).

Every scenario in the :data:`~repro.workload.spec.WORKLOADS` registry is
held to the determinism contract: all queries stay inside the catalog
and the live population, drifting weights remain a normalized
distribution, hotspot rotation stays a permutation, traces round-trip
byte-exactly, and two streams built from equal contexts emit identical
queries. Hypothesis drives the seeds and advance schedules so the
properties hold over the input space, not just one lucky seed.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace
from repro.workload.items import ItemCatalog, PopularityModel
from repro.workload.queries import Query
from repro.workload.spec import (
    DEFAULT_RATE,
    WORKLOADS,
    WorkloadContext,
    WorkloadSpec,
    record_trace,
)
from repro.workload.trace import QueryTrace

#: Every synthetic scenario, with an explicit parameter where one exists.
SCENARIOS = (
    "static-zipf",
    "drifting-zipf:20",
    "flash-crowd:2",
    "diurnal:50",
    "hotspot-rotation:25",
)


def make_context(seed=0, num_items=40, num_nodes=12, alpha=1.2, horizon=100.0):
    """A self-contained WorkloadContext (no overlay needed)."""
    space = IdSpace(16)
    catalog = ItemCatalog(space, num_items, seed=seed)
    popularity = PopularityModel(catalog, alpha, num_rankings=2, seed=seed + 1)
    nodes = sorted(random.Random(seed + 2).sample(range(space.size), num_nodes))
    return WorkloadContext(
        popularity=popularity,
        assignment=popularity.assign_rankings(nodes),
        rng=random.Random(seed + 3),
        scenario_rng=random.Random(seed + 4),
        alpha=alpha,
        horizon=horizon,
    )


def emit(spec_text, seed, count=60):
    context = make_context(seed)
    live = sorted(context.assignment)
    stream = WorkloadSpec.parse(spec_text).build(context)
    return context, list(stream.stream(count, lambda: live))


class TestParse:
    def test_round_trip_label(self):
        assert WorkloadSpec.parse("static-zipf").label == "static-zipf"
        assert WorkloadSpec.parse("drifting-zipf:45").label == "drifting-zipf:45"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            WorkloadSpec.parse("pareto-storm")

    def test_empty_and_non_string_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec.parse("")
        with pytest.raises(ConfigurationError):
            WorkloadSpec.parse(None)

    def test_trace_param_keeps_colons(self):
        spec = WorkloadSpec.parse("trace:/data/run:3/q.jsonl")
        assert spec.name == "trace"
        assert spec.param == "/data/run:3/q.jsonl"

    def test_static_rejects_parameter(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            WorkloadSpec.parse("static-zipf:1.5").build(make_context())

    def test_non_numeric_parameters_rejected(self):
        for text in ("drifting-zipf:fast", "flash-crowd:many", "diurnal:x"):
            with pytest.raises(ConfigurationError):
                WorkloadSpec.parse(text).build(make_context())

    def test_out_of_range_parameters_rejected(self):
        for text in ("drifting-zipf:0", "flash-crowd:0", "hotspot-rotation:-5"):
            with pytest.raises(ConfigurationError):
                WorkloadSpec.parse(text).build(make_context())

    def test_trace_requires_path(self):
        with pytest.raises(ConfigurationError, match="path"):
            WorkloadSpec.parse("trace").build(make_context())

    def test_is_static_only_for_default(self):
        assert WorkloadSpec.parse("static-zipf").is_static
        assert not WorkloadSpec.parse("drifting-zipf:9").is_static

    def test_every_registered_scenario_has_a_description(self):
        for name in WORKLOADS:
            spec = WorkloadSpec(name, "1" if name != "static-zipf" else None)
            assert spec.describe()


class TestStreamProperties:
    @pytest.mark.parametrize("spec_text", SCENARIOS)
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_queries_stay_in_catalog_and_live_set(self, spec_text, seed):
        context, queries = emit(spec_text, seed)
        items = set(context.catalog.item_ids)
        live = set(context.assignment)
        assert len(queries) == 60
        assert all(query.item in items for query in queries)
        assert all(query.source in live for query in queries)

    @pytest.mark.parametrize("spec_text", SCENARIOS)
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_equal_contexts_emit_identical_streams(self, spec_text, seed):
        __, first = emit(spec_text, seed)
        __, second = emit(spec_text, seed)
        assert first == second

    @pytest.mark.parametrize("spec_text", SCENARIOS)
    def test_stream_respects_count(self, spec_text):
        __, queries = emit(spec_text, seed=7, count=13)
        assert len(queries) == 13

    @pytest.mark.parametrize("spec_text", SCENARIOS)
    def test_empty_live_population_rejected(self, spec_text):
        stream = WorkloadSpec.parse(spec_text).build(make_context(seed=3))
        with pytest.raises(ConfigurationError, match="no live sources"):
            stream.next_query([])

    def test_different_seeds_differ(self):
        # Sanity: the substreams actually depend on the context RNGs.
        __, a = emit("drifting-zipf:20", seed=1, count=80)
        __, b = emit("drifting-zipf:20", seed=2, count=80)
        assert a != b


class TestDriftingInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        times=st.lists(
            st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
    )
    def test_weights_stay_normalized_under_arbitrary_advances(self, seed, times):
        stream = WorkloadSpec.parse("drifting-zipf:10").build(make_context(seed))
        for now in sorted(times):
            stream.advance(now)
        weights = stream.dynamics.item_weights()
        assert sum(weights.values()) == pytest.approx(1.0)
        assert sorted(weights) == sorted(stream.context.catalog.item_ids)
        assert all(weight > 0 for weight in weights.values())

    def test_ranking_actually_drifts(self):
        context = make_context(seed=11)
        stream = WorkloadSpec.parse("drifting-zipf:5").build(context)
        before = stream.dynamics.ranking()
        stream.advance(500.0)
        assert stream.dynamics.ranking() != before
        assert sorted(stream.dynamics.ranking()) == sorted(before)


class TestHotspotInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        now=st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False),
    )
    def test_ranking_is_always_a_permutation(self, seed, now):
        context = make_context(seed)
        stream = WorkloadSpec.parse("hotspot-rotation:25").build(context)
        stream.advance(now)
        assert sorted(stream.ranking()) == sorted(context.catalog.item_ids)

    def test_rotation_changes_the_hot_set_each_period(self):
        stream = WorkloadSpec.parse("hotspot-rotation:10").build(make_context(seed=5))
        epoch0 = stream.ranking()
        stream.advance(10.0)
        epoch1 = stream.ranking()
        assert epoch1 != epoch0
        assert epoch1[0] == epoch0[stream.stride]

    def test_advance_is_monotone_and_idempotent(self):
        stream = WorkloadSpec.parse("hotspot-rotation:10").build(make_context(seed=5))
        stream.advance(35.0)
        after = stream.ranking()
        stream.advance(35.0)  # idempotent at equal time
        assert stream.ranking() == after
        stream.advance(5.0)  # stale clock reading never rewinds the epoch
        assert stream.ranking() == after


class TestDiurnalInvariants:
    @settings(max_examples=15, deadline=None)
    @given(now=st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False))
    def test_intensity_bounded(self, now):
        stream = WorkloadSpec.parse("diurnal:50").build(make_context(seed=6))
        assert 0.0 <= stream.intensity(now) <= 1.0

    def test_active_population_shrinks_toward_the_trough(self):
        context = make_context(seed=8, num_nodes=30)
        stream = WorkloadSpec.parse("diurnal:100").build(context)
        live = sorted(context.assignment)
        stream.advance(25.0)  # sin peak -> intensity 1.0
        peak = stream.active_sources(live)
        assert peak == live
        stream.advance(75.0)  # sin trough -> intensity 0.0
        trough = [s for s in live if stream._thresholds[s] <= stream.intensity(75.0)]
        assert len(trough) < len(peak)

    def test_trough_falls_back_to_whole_population(self):
        context = make_context(seed=8)
        stream = WorkloadSpec.parse("diurnal:100").build(context)
        live = sorted(context.assignment)
        stream.advance(75.0)
        # Nobody clears the bar at the trough, so arrivals fall back to
        # the whole live population instead of stalling the stream.
        assert stream.active_sources(live) == live
        assert stream.next_query(live) is not None


class TestTraceStream:
    def _trace_spec(self, tmp_path, entries, metadata=None):
        trace = QueryTrace(metadata=metadata or {})
        for time, source, item in entries:
            trace.record(time, source, item)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        return WorkloadSpec.parse(f"trace:{path}")

    def test_replays_in_order_and_cycles(self, tmp_path):
        spec = self._trace_spec(tmp_path, [(0.0, 1, 10), (1.0, 2, 20)])
        stream = spec.build(make_context())
        queries = [stream.next_query([1, 2]) for __ in range(4)]
        assert queries == [Query(1, 10), Query(2, 20), Query(1, 10), Query(2, 20)]

    def test_skips_dead_sources(self, tmp_path):
        spec = self._trace_spec(tmp_path, [(0.0, 1, 10), (1.0, 2, 20), (2.0, 3, 30)])
        stream = spec.build(make_context())
        assert stream.next_query([2]) == Query(2, 20)

    def test_exhausts_when_no_source_is_live(self, tmp_path):
        spec = self._trace_spec(tmp_path, [(0.0, 1, 10), (1.0, 2, 20)])
        stream = spec.build(make_context())
        assert stream.next_query([99]) is None

    def test_empty_trace_rejected(self, tmp_path):
        spec = self._trace_spec(tmp_path, [])
        with pytest.raises(ConfigurationError, match="empty"):
            spec.build(make_context())


class TestRecordTrace:
    @pytest.mark.parametrize("spec_text", SCENARIOS)
    def test_round_trip_is_byte_exact(self, tmp_path, spec_text):
        context = make_context(seed=4)
        live = sorted(context.assignment)
        stream = WorkloadSpec.parse(spec_text).build(context)
        trace = record_trace(stream, 50, lambda: live, metadata={"workload": spec_text})
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        trace.save(first)
        QueryTrace.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_timestamps_follow_the_nominal_rate(self):
        context = make_context(seed=4)
        live = sorted(context.assignment)
        stream = WorkloadSpec.parse("static-zipf").build(context)
        trace = record_trace(stream, 8, lambda: live)
        assert [entry.time for entry in trace] == [i / DEFAULT_RATE for i in range(8)]

    def test_recorded_trace_replays_the_same_queries(self, tmp_path):
        context = make_context(seed=9)
        live = sorted(context.assignment)
        recorded = record_trace(
            WorkloadSpec.parse("flash-crowd:2").build(context), 40, lambda: live
        )
        path = tmp_path / "crowd.jsonl"
        recorded.save(path)
        replay = WorkloadSpec.parse(f"trace:{path}").build(make_context(seed=9))
        replayed = list(replay.stream(40, lambda: live))
        assert replayed == [entry.query() for entry in recorded]
