"""Unit tests for the zipf / items / queries workload layer."""

import random
from collections import Counter

import pytest

from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace
from repro.workload.items import ItemCatalog, PopularityModel
from repro.workload.queries import QueryGenerator
from repro.workload.zipf import ZipfDistribution


class TestZipf:
    def test_weights_normalized_and_decreasing(self):
        dist = ZipfDistribution(alpha=1.2, size=50)
        weights = dist.weights()
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)

    def test_weight_matches_power_law(self):
        dist = ZipfDistribution(alpha=1.0, size=10)
        assert dist.weight(1) / dist.weight(2) == pytest.approx(2.0)
        assert dist.weight(1) / dist.weight(4) == pytest.approx(4.0)

    def test_sampling_matches_distribution(self):
        dist = ZipfDistribution(alpha=1.2, size=20)
        rng = random.Random(0)
        draws = Counter(dist.sample_rank(rng) for __ in range(20_000))
        assert draws[1] / 20_000 == pytest.approx(dist.weight(1), rel=0.1)
        assert all(1 <= rank <= 20 for rank in draws)

    def test_higher_alpha_is_more_skewed(self):
        mild = ZipfDistribution(alpha=0.91, size=100)
        steep = ZipfDistribution(alpha=1.2, size=100)
        assert steep.weight(1) > mild.weight(1)
        assert steep.head_mass(10) > mild.head_mass(10)

    def test_head_mass_bounds(self):
        dist = ZipfDistribution(alpha=1.2, size=10)
        assert dist.head_mass(0) == 0.0
        assert dist.head_mass(10) == pytest.approx(1.0)
        assert dist.head_mass(99) == pytest.approx(1.0)

    def test_rank_validation(self):
        dist = ZipfDistribution(alpha=1.2, size=5)
        with pytest.raises(ConfigurationError):
            dist.weight(0)
        with pytest.raises(ConfigurationError):
            dist.weight(6)

    @pytest.mark.parametrize("alpha,size", [(-1.0, 5), (0.0, 5), (1.2, 0)])
    def test_construction_validation(self, alpha, size):
        with pytest.raises(ConfigurationError):
            ZipfDistribution(alpha=alpha, size=size)


class TestItemCatalog:
    def test_distinct_ids(self):
        catalog = ItemCatalog(IdSpace(16), num_items=500, seed=1)
        assert len(catalog) == 500
        assert len(set(catalog.item_ids)) == 500

    def test_deterministic(self):
        a = ItemCatalog(IdSpace(16), num_items=50, seed=2)
        b = ItemCatalog(IdSpace(16), num_items=50, seed=2)
        assert a.item_ids == b.item_ids

    def test_overfull_space_rejected(self):
        with pytest.raises(ConfigurationError):
            ItemCatalog(IdSpace(4), num_items=17)


class TestPopularityModel:
    def test_single_ranking_is_identity(self):
        catalog = ItemCatalog(IdSpace(16), num_items=30, seed=3)
        model = PopularityModel(catalog, alpha=1.2, num_rankings=1, seed=4)
        assert model.rankings[0] == catalog.item_ids

    def test_multiple_rankings_differ(self):
        catalog = ItemCatalog(IdSpace(16), num_items=30, seed=5)
        model = PopularityModel(catalog, alpha=1.2, num_rankings=5, seed=6)
        assert model.num_rankings == 5
        assert any(model.rankings[i] != model.rankings[0] for i in range(1, 5))
        for ranking in model.rankings:
            assert sorted(ranking) == sorted(catalog.item_ids)

    def test_item_weights_sum_to_one(self):
        catalog = ItemCatalog(IdSpace(16), num_items=30, seed=7)
        model = PopularityModel(catalog, alpha=1.2, num_rankings=2, seed=8)
        for index in range(2):
            assert sum(model.item_weights(index).values()) == pytest.approx(1.0)

    def test_node_frequencies_aggregate_by_destination(self):
        catalog = ItemCatalog(IdSpace(8), num_items=20, seed=9)
        model = PopularityModel(catalog, alpha=1.2, seed=10)
        # Two "nodes" split the space in half.
        responsible = lambda item: 0 if item < 128 else 128
        frequencies = model.node_frequencies(0, responsible)
        assert set(frequencies) <= {0, 128}
        assert sum(frequencies.values()) == pytest.approx(1.0)

    def test_node_frequencies_exclude_self(self):
        catalog = ItemCatalog(IdSpace(8), num_items=20, seed=11)
        model = PopularityModel(catalog, alpha=1.2, seed=12)
        responsible = lambda item: 0 if item < 128 else 128
        frequencies = model.node_frequencies(0, responsible, exclude=0)
        assert 0 not in frequencies

    def test_assign_rankings_covers_all_nodes(self):
        catalog = ItemCatalog(IdSpace(16), num_items=10, seed=13)
        model = PopularityModel(catalog, alpha=1.2, num_rankings=5, seed=14)
        assignment = model.assign_rankings(range(100))
        assert set(assignment) == set(range(100))
        assert set(assignment.values()) <= set(range(5))

    def test_sample_item_follows_ranking(self):
        catalog = ItemCatalog(IdSpace(16), num_items=10, seed=15)
        model = PopularityModel(catalog, alpha=2.0, num_rankings=2, seed=16)
        rng = random.Random(0)
        draws = Counter(model.sample_item(1, rng) for __ in range(5000))
        top_item = model.rankings[1][0]
        assert draws.most_common(1)[0][0] == top_item


class TestQueryGenerator:
    def make(self):
        catalog = ItemCatalog(IdSpace(16), num_items=40, seed=17)
        model = PopularityModel(catalog, alpha=1.2, num_rankings=2, seed=18)
        assignment = {1: 0, 2: 1}
        return QueryGenerator(model, assignment, random.Random(19))

    def test_query_from_assigned_ranking(self):
        generator = self.make()
        query = generator.query_from(1)
        assert query.source == 1
        assert query.item in generator.popularity.catalog.item_ids

    def test_unassigned_source_rejected(self):
        generator = self.make()
        with pytest.raises(ConfigurationError):
            generator.query_from(99)

    def test_stream_respects_live_population(self):
        generator = self.make()
        queries = list(generator.stream(50, lambda: [1, 2]))
        assert len(queries) == 50
        assert {q.source for q in queries} <= {1, 2}

    def test_empty_assignment_rejected(self):
        catalog = ItemCatalog(IdSpace(16), num_items=5, seed=20)
        model = PopularityModel(catalog, alpha=1.2, seed=21)
        with pytest.raises(ConfigurationError):
            QueryGenerator(model, {}, random.Random(0))

    def test_bad_ranking_index_rejected(self):
        catalog = ItemCatalog(IdSpace(16), num_items=5, seed=22)
        model = PopularityModel(catalog, alpha=1.2, num_rankings=1, seed=23)
        with pytest.raises(ConfigurationError):
            QueryGenerator(model, {1: 4}, random.Random(0))
