"""Tests for time-varying popularity."""

import random

import pytest

from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace
from repro.workload.dynamics import DynamicPopularity, FlashCrowd
from repro.workload.items import ItemCatalog


def make(num_items=20, seed=1, **kwargs):
    catalog = ItemCatalog(IdSpace(16), num_items, seed=seed)
    defaults = dict(alpha=1.2, seed=seed, swap_interval=10.0, swap_count=1)
    defaults.update(kwargs)
    return catalog, DynamicPopularity(catalog, **defaults)


class TestFlashCrowd:
    def test_activity_window(self):
        crowd = FlashCrowd(item=5, start=10.0, duration=5.0)
        assert not crowd.active_at(9.9)
        assert crowd.active_at(10.0)
        assert crowd.active_at(14.9)
        assert not crowd.active_at(15.0)

    def test_window_is_start_inclusive_end_exclusive(self):
        # The interval convention is [start, start + duration): a crowd
        # beginning exactly when another ends never double-counts an
        # instant, so back-to-back crowds partition the clock cleanly.
        crowd = FlashCrowd(item=5, start=10.0, duration=5.0)
        successor = FlashCrowd(item=6, start=15.0, duration=5.0)
        assert crowd.active_at(10.0) and not successor.active_at(10.0)
        assert not crowd.active_at(15.0) and successor.active_at(15.0)

    def test_active_at_time_zero(self):
        crowd = FlashCrowd(item=5, start=0.0, duration=1.0)
        assert crowd.active_at(0.0)
        assert not crowd.active_at(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlashCrowd(item=5, start=-1.0, duration=5.0)
        with pytest.raises(ConfigurationError):
            FlashCrowd(item=5, start=0.0, duration=0.0)


class TestDrift:
    def test_ranking_is_permutation_forever(self):
        catalog, pop = make()
        pop.advance(500.0)
        assert sorted(pop.ranking()) == sorted(catalog.item_ids)

    def test_no_drift_before_first_interval(self):
        __, pop = make()
        before = pop.ranking()
        assert pop.advance(9.9) == 0
        assert pop.ranking() == before

    def test_drift_steps_counted(self):
        __, pop = make(swap_interval=10.0)
        assert pop.advance(35.0) == 3
        assert pop.advance(35.0) == 0  # idempotent at same time
        assert pop.advance(40.0) == 1

    def test_time_cannot_rewind(self):
        __, pop = make()
        pop.advance(50.0)
        with pytest.raises(ConfigurationError):
            pop.advance(49.0)

    def test_deterministic_given_seed(self):
        __, a = make(seed=7)
        __, b = make(seed=7)
        a.advance(200.0)
        b.advance(200.0)
        assert a.ranking() == b.ranking()

    def test_step_granularity_independent_of_call_pattern(self):
        __, a = make(seed=9)
        __, b = make(seed=9)
        a.advance(100.0)
        for t in range(1, 101):
            b.advance(float(t))
        assert a.ranking() == b.ranking()

    def test_zero_swap_count_is_static(self):
        catalog, pop = make(swap_count=0)
        pop.advance(1000.0)
        assert pop.ranking() == catalog.item_ids


class TestFlashCrowdIntegration:
    def test_crowd_takes_rank_one(self):
        catalog, __ = make()
        victim = catalog.item_ids[-1]
        pop = DynamicPopularity(
            catalog,
            alpha=1.2,
            seed=1,
            swap_count=0,
            flash_crowds=[FlashCrowd(victim, start=10.0, duration=20.0)],
        )
        pop.advance(15.0)
        assert pop.ranking()[0] == victim
        pop.advance(40.0)
        assert pop.ranking()[0] != victim

    def test_crowd_changes_sampling(self):
        catalog, __ = make(num_items=10)
        victim = catalog.item_ids[-1]
        pop = DynamicPopularity(
            catalog,
            alpha=2.0,
            seed=1,
            swap_count=0,
            flash_crowds=[FlashCrowd(victim, start=0.0, duration=100.0)],
        )
        pop.advance(1.0)
        rng = random.Random(3)
        draws = [pop.sample_item(rng) for __ in range(500)]
        assert draws.count(victim) > 200  # rank 1 under alpha=2 dominates

    def test_unknown_item_rejected(self):
        catalog, __ = make()
        with pytest.raises(ConfigurationError):
            DynamicPopularity(
                catalog, alpha=1.2, flash_crowds=[FlashCrowd(item=10**9, start=0, duration=1)]
            )

    def test_node_frequencies_follow_crowd(self):
        catalog, __ = make(num_items=10)
        victim = catalog.item_ids[-1]
        pop = DynamicPopularity(
            catalog,
            alpha=1.5,
            seed=1,
            swap_count=0,
            flash_crowds=[FlashCrowd(victim, start=0.0, duration=100.0)],
        )
        pop.advance(1.0)
        owner = 42

        def responsible(item):
            return owner if item == victim else 7

        frequencies = pop.node_frequencies(responsible)
        assert frequencies[owner] == pytest.approx(pop.distribution.weight(1))


class TestNodeFrequencies:
    def test_without_exclude_covers_full_mass(self):
        __, pop = make(num_items=10)
        frequencies = pop.node_frequencies(lambda item: item % 3)
        assert sum(frequencies.values()) == pytest.approx(1.0)
        assert set(frequencies) <= {0, 1, 2}

    def test_exclude_drops_exactly_that_nodes_mass(self):
        __, pop = make(num_items=10)
        full = pop.node_frequencies(lambda item: item % 3)
        trimmed = pop.node_frequencies(lambda item: item % 3, exclude=1)
        assert 1 not in trimmed
        # Every other node's aggregate is untouched — exclusion filters,
        # it does not renormalize.
        for node in (0, 2):
            assert trimmed[node] == pytest.approx(full[node])
        assert sum(trimmed.values()) == pytest.approx(1.0 - full[1])

    def test_exclude_unknown_node_is_a_no_op(self):
        __, pop = make(num_items=10)
        full = pop.node_frequencies(lambda item: item % 3)
        assert pop.node_frequencies(lambda item: item % 3, exclude=99) == full

    def test_exclude_sole_owner_yields_empty_table(self):
        __, pop = make(num_items=10)
        assert pop.node_frequencies(lambda item: 7, exclude=7) == {}
