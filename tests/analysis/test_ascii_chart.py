"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_chart import render_chart
from repro.experiments.figures import FigurePoint, FigureResult, FigureSeries
from repro.sim.metrics import ComparisonResult, HopStatistics
from repro.util.errors import ConfigurationError


def make_result(series_values):
    def comparison(improvement):
        ours, base = HopStatistics(), HopStatistics()

        class Fake:
            hops = 100 - improvement
            timeouts = 0
            succeeded = True
            latency = 100 - improvement

        class Base:
            hops = 100
            timeouts = 0
            succeeded = True
            latency = 100

        ours.record(Fake())
        base.record(Base())
        return ComparisonResult("cell", ours, base)

    series = tuple(
        FigureSeries(
            label,
            tuple(FigurePoint(x, comparison(y)) for x, y in points),
        )
        for label, points in series_values.items()
    )
    return FigureResult("figureX", "test figure", "n", series)


class TestRenderChart:
    def test_contains_legend_and_axes(self):
        result = make_result({"stable": [(100, 10.0), (200, 30.0)]})
        chart = render_chart(result)
        assert "o = stable" in chart
        assert "x = n" in chart
        assert "figureX" in chart

    def test_marker_count_matches_points(self):
        result = make_result({"stable": [(100, 10.0), (200, 30.0), (300, 20.0)]})
        chart = render_chart(result)
        body = chart.split("+")[0]
        assert body.count("o") >= 2  # markers may overlap but most survive

    def test_two_series_two_markers(self):
        result = make_result(
            {"stable": [(100, 30.0), (200, 40.0)], "churn": [(100, 10.0), (200, 15.0)]}
        )
        chart = render_chart(result)
        assert "o = stable" in chart
        assert "x = churn" in chart

    def test_rejects_tiny_canvas(self):
        result = make_result({"s": [(1, 1.0)]})
        with pytest.raises(ConfigurationError):
            render_chart(result, width=5, height=2)

    def test_single_point_does_not_crash(self):
        result = make_result({"s": [(1, 5.0)]})
        assert "figureX" in render_chart(result)


class TestSparkline:
    def test_empty_series_renders_empty(self):
        from repro.analysis.ascii_chart import render_sparkline

        assert render_sparkline([]) == ""

    def test_all_missing_renders_gaps(self):
        from repro.analysis.ascii_chart import SPARK_GAP, render_sparkline

        assert render_sparkline([None, float("nan"), None]) == SPARK_GAP * 3

    def test_constant_series_renders_mid_level(self):
        # A flat gauge is data, not absence: the bottom glyph falsely
        # reads as "zero" next to rows that do span a range.
        from repro.analysis.ascii_chart import SPARK_CHARS, render_sparkline

        mid = SPARK_CHARS[len(SPARK_CHARS) // 2]
        assert render_sparkline([4.0, 4.0, 4.0]) == mid * 3

    def test_single_point_series_renders_mid_level(self):
        from repro.analysis.ascii_chart import SPARK_CHARS, render_sparkline

        assert render_sparkline([7.5]) == SPARK_CHARS[len(SPARK_CHARS) // 2]

    def test_constant_series_with_gaps_keeps_alignment(self):
        from repro.analysis.ascii_chart import SPARK_CHARS, SPARK_GAP, render_sparkline

        mid = SPARK_CHARS[len(SPARK_CHARS) // 2]
        assert render_sparkline([2.0, None, 2.0]) == mid + SPARK_GAP + mid

    def test_constant_zero_series_renders_mid_level(self):
        from repro.analysis.ascii_chart import SPARK_CHARS, render_sparkline

        mid = SPARK_CHARS[len(SPARK_CHARS) // 2]
        assert render_sparkline([0.0, 0.0]) == mid * 2

    def test_monotone_series_uses_full_ramp(self):
        from repro.analysis.ascii_chart import SPARK_CHARS, render_sparkline

        line = render_sparkline(list(range(8)))
        assert line == SPARK_CHARS

    def test_nan_bearing_series_keeps_alignment(self):
        from repro.analysis.ascii_chart import SPARK_CHARS, SPARK_GAP, render_sparkline

        line = render_sparkline([1.0, float("nan"), 2.0, None, 3.0])
        assert len(line) == 5
        assert line[1] == SPARK_GAP
        assert line[3] == SPARK_GAP
        assert line[0] == SPARK_CHARS[0]
        assert line[4] == SPARK_CHARS[-1]


class TestSeriesTable:
    def test_empty_table(self):
        from repro.analysis.ascii_chart import render_series_table

        assert render_series_table([]) == "(no series)"

    def test_rows_aligned_and_stats_correct(self):
        from repro.analysis.ascii_chart import render_series_table

        table = render_series_table(
            [
                ("cost/lookup", [4.0, 3.0, 5.0]),
                ("alive", [32.0, 32.0, 32.0]),
            ]
        )
        lines = table.splitlines()
        assert lines[0].startswith("series")
        assert "min" in lines[0] and "last" in lines[0] and "max" in lines[0]
        assert lines[1].startswith("cost/lookup")
        assert "3" in lines[1] and "5" in lines[1]

    def test_all_missing_row_renders_dashes(self):
        from repro.analysis.ascii_chart import render_series_table

        table = render_series_table([("rate", [None, float("nan")])])
        assert "-" in table.splitlines()[1]

    def test_constant_row_renders_mid_sparkline(self):
        from repro.analysis.ascii_chart import SPARK_CHARS, render_series_table

        table = render_series_table([("alive", [32.0, 32.0, 32.0])])
        assert SPARK_CHARS[len(SPARK_CHARS) // 2] * 3 in table.splitlines()[1]

    def test_single_point_row_has_matching_stats(self):
        from repro.analysis.ascii_chart import SPARK_CHARS, render_series_table

        line = render_series_table([("util", [0.75])]).splitlines()[1]
        assert line.count("0.75") == 3  # min == last == max
        assert SPARK_CHARS[len(SPARK_CHARS) // 2] in line
