"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_chart import render_chart
from repro.experiments.figures import FigurePoint, FigureResult, FigureSeries
from repro.sim.metrics import ComparisonResult, HopStatistics
from repro.util.errors import ConfigurationError


def make_result(series_values):
    def comparison(improvement):
        ours, base = HopStatistics(), HopStatistics()

        class Fake:
            hops = 100 - improvement
            timeouts = 0
            succeeded = True
            latency = 100 - improvement

        class Base:
            hops = 100
            timeouts = 0
            succeeded = True
            latency = 100

        ours.record(Fake())
        base.record(Base())
        return ComparisonResult("cell", ours, base)

    series = tuple(
        FigureSeries(
            label,
            tuple(FigurePoint(x, comparison(y)) for x, y in points),
        )
        for label, points in series_values.items()
    )
    return FigureResult("figureX", "test figure", "n", series)


class TestRenderChart:
    def test_contains_legend_and_axes(self):
        result = make_result({"stable": [(100, 10.0), (200, 30.0)]})
        chart = render_chart(result)
        assert "o = stable" in chart
        assert "x = n" in chart
        assert "figureX" in chart

    def test_marker_count_matches_points(self):
        result = make_result({"stable": [(100, 10.0), (200, 30.0), (300, 20.0)]})
        chart = render_chart(result)
        body = chart.split("+")[0]
        assert body.count("o") >= 2  # markers may overlap but most survive

    def test_two_series_two_markers(self):
        result = make_result(
            {"stable": [(100, 30.0), (200, 40.0)], "churn": [(100, 10.0), (200, 15.0)]}
        )
        chart = render_chart(result)
        assert "o = stable" in chart
        assert "x = churn" in chart

    def test_rejects_tiny_canvas(self):
        result = make_result({"s": [(1, 1.0)]})
        with pytest.raises(ConfigurationError):
            render_chart(result, width=5, height=2)

    def test_single_point_does_not_crash(self):
        result = make_result({"s": [(1, 5.0)]})
        assert "figureX" in render_chart(result)
