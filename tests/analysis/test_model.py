"""Tests for the analytic model: bounds are bounds, predictions track sims."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.model import (
    core_only_upper_bound,
    expected_uniform_hops,
    lower_bound_cost,
    predict_improvement,
)
from repro.core.chord_selection import select_chord_fast
from repro.core.pastry_selection import select_pastry_greedy
from repro.util.errors import ConfigurationError
from tests.helpers import random_problem


class TestLowerBound:
    def test_simple_case(self):
        # Total 10; k=1 can cover the heaviest (6); tail 4 pays >= 1 more.
        frequencies = {1: 6.0, 2: 3.0, 3: 1.0}
        assert lower_bound_cost(frequencies, [], k=1) == pytest.approx(10 + 4)

    def test_core_covered_for_free(self):
        frequencies = {1: 6.0, 2: 3.0}
        assert lower_bound_cost(frequencies, [1], k=0) == pytest.approx(9 + 3)

    def test_full_budget_hits_floor(self):
        frequencies = {1: 6.0, 2: 3.0}
        assert lower_bound_cost(frequencies, [], k=2) == pytest.approx(9.0)

    def test_rejects_negative_k(self):
        with pytest.raises(ConfigurationError):
            lower_bound_cost({}, [], k=-1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_solvers_respect_the_bound(self, seed):
        rng = random.Random(seed)
        problem = random_problem(rng, bits=10, peers=20, cores=2, k=rng.randint(0, 5))
        bound = lower_bound_cost(problem.frequencies, problem.core_neighbors, problem.k)
        upper = core_only_upper_bound(problem.frequencies, problem.space.bits)
        for solver in (select_chord_fast, select_pastry_greedy):
            cost = solver(problem).cost
            assert bound - 1e-9 <= cost <= upper + 1e-9


class TestExpectedHops:
    def test_half_log(self):
        assert expected_uniform_hops(1024) == pytest.approx(5.0)
        assert expected_uniform_hops(1) == 0.0


class TestPrediction:
    def test_monotone_in_skew(self):
        assert predict_improvement(1.2, 1024, 10) > predict_improvement(0.91, 1024, 10)

    def test_grows_with_n_at_fixed_relative_budget(self):
        small = predict_improvement(1.2, 128, 7)
        large = predict_improvement(1.2, 2048, 11)
        assert large > small

    def test_random_pointers_catch_up_at_large_k(self):
        at_logn = predict_improvement(1.2, 1024, 10)
        at_huge = predict_improvement(1.2, 1024, 400)
        assert at_huge < at_logn

    def test_zero_budget_zero_improvement(self):
        assert predict_improvement(1.2, 1024, 0) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            predict_improvement(1.2, 2, 1)
        with pytest.raises(ConfigurationError):
            predict_improvement(1.2, 1024, -1)

    def test_tracks_simulation_loosely(self):
        """The model must land in the same ballpark as the simulator
        (within 20 percentage points for the default cell)."""
        from repro.sim.runner import ExperimentConfig, run_stable

        simulated = run_stable(
            ExperimentConfig(overlay="chord", n=128, bits=20, queries=2000, seed=2)
        ).improvement
        predicted = predict_improvement(1.2, 128, 7)
        assert abs(predicted - simulated) < 20.0
