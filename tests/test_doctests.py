"""Run the docstring examples across the library.

Every ``Example`` block in a public docstring is executable documentation;
this keeps them honest.
"""

import doctest

import pytest

import repro.chord.ring
import repro.core.drift
import repro.core.pastry_selection
import repro.core.qos
import repro.pastry.network
import repro.sim.events
import repro.util.rng
import repro.workload.zipf

MODULES = [
    repro.chord.ring,
    repro.core.drift,
    repro.core.pastry_selection,
    repro.core.qos,
    repro.pastry.network,
    repro.sim.events,
    repro.util.rng,
    repro.workload.zipf,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_docstring_examples(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its examples"
    assert results.failed == 0
