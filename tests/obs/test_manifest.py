"""Unit tests for the run-manifest provenance block."""

import json

from repro.faults.schedule import FaultSchedule
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_digest,
    config_payload,
    git_revision,
    strip_volatile,
)
from repro.sim.runner import ExperimentConfig


def config(**overrides) -> ExperimentConfig:
    base = dict(overlay="chord", n=16, bits=16, queries=100, seed=3)
    base.update(overrides)
    return ExperimentConfig(**base)


class TestConfigEcho:
    def test_payload_tags_the_dataclass_type(self):
        payload = config_payload(config())
        assert payload["__type__"] == "ExperimentConfig"
        assert payload["overlay"] == "chord"

    def test_nested_dataclasses_recurse(self):
        payload = config_payload(config(faults=FaultSchedule(loss_rate=0.1)))
        assert payload["faults"]["loss_rate"] == 0.1

    def test_digest_is_stable_and_discriminating(self):
        assert config_digest(config()) == config_digest(config())
        assert config_digest(config()) != config_digest(config(seed=4))
        assert config_digest(config()).startswith("sha256:")


class TestBuildManifest:
    def test_fields(self):
        manifest = build_manifest(config(), wall_time_s=1.5)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["seed"] == 3
        assert manifest["config_digest"] == config_digest(config())
        assert set(manifest["env"]) == {"python", "implementation", "platform", "numpy"}
        assert manifest["volatile"]["wall_time_s"] == 1.5
        assert json.dumps(manifest, sort_keys=True, default=str)  # JSON-serializable

    def test_seed_override_beats_config_seed(self):
        assert build_manifest(config(), seed=99)["seed"] == 99

    def test_configless_manifest_is_allowed(self):
        manifest = build_manifest(extra={"mode": "smoke"})
        assert manifest["config"] is None
        assert manifest["mode"] == "smoke"

    def test_git_revision_of_this_checkout(self):
        # The test suite runs inside the repo, so provenance is available.
        revision = git_revision()
        assert revision is None or len(revision) == 40


class TestStripVolatile:
    def test_strips_deeply_without_mutating(self):
        document = {
            "manifest": build_manifest(config()),
            "rows": [{"manifest": build_manifest(config())}],
        }
        stripped = strip_volatile(document)
        assert "volatile" not in stripped["manifest"]
        assert "volatile" not in stripped["rows"][0]["manifest"]
        assert "volatile" in document["manifest"]  # original untouched

    def test_deterministic_part_is_run_invariant(self):
        a = strip_volatile(build_manifest(config()))
        b = strip_volatile(build_manifest(config()))
        assert json.dumps(a, sort_keys=True, default=str) == json.dumps(
            b, sort_keys=True, default=str
        )
