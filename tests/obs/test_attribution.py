"""Unit and property tests for the cache attribution plane.

The load-bearing claims pinned here:

* the oblivious walker *is* the real router on an auxiliary-free
  overlay — hop for hop, on all three overlays — so "credit" really
  measures the marginal value of cached pointers and nothing else;
* credits telescope, so the conservation law holds exactly (integer
  arithmetic, no tolerance) with and without auxiliary pointers;
* a disabled recorder perturbs nothing: routing results are identical
  to ``trace=None`` and the recorder stays empty;
* ``measured_loads`` is a valid :class:`~repro.core.budget.CostCurve`
  input by construction: strictly positive, mean exactly one.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.attribution import (
    OVERLAY_KINDS,
    AttributionRecorder,
    PointerStats,
    TeeRecorder,
    _credit,
    oblivious_route_length,
)
from repro.obs.recorder import HopEvent
from repro.util.errors import ConfigurationError

KINDS = list(OVERLAY_KINDS)

_RING = None


def _shared_ring():
    """A module-cached chord ring for hypothesis bodies that only need
    *an* overlay (never mutated by the tests that use it)."""
    global _RING
    if _RING is None:
        from repro.chord.ring import ChordRing
        from repro.util.ids import IdSpace

        _RING = ChordRing.build(16, space=IdSpace(12), seed=3)
    return _RING


class FakeResult:
    def __init__(self, key=1, source=0, destination=9, succeeded=True, hops=0):
        self.key = key
        self.source = source
        self.destination = destination
        self.succeeded = succeeded
        self.hops = hops
        self.timeouts = 0
        self.penalty = 0.0


def run_lookups(overlay, count=200, sources=6, trace=None, seed=11):
    import random

    rng = random.Random(seed)
    ids = overlay.alive_ids()
    results = []
    for _ in range(count):
        source = ids[rng.randrange(min(sources, len(ids)))]
        key = rng.randrange(overlay.space.size)
        results.append(overlay.lookup(source, key, record_access=False, trace=trace))
    return results


class TestCredit:
    def test_shortcut_hop_earns_the_gap(self):
        assert _credit(5, 2) == 2

    def test_core_plane_hop_earns_zero(self):
        # The oblivious route takes the identical hop: R drops by one.
        assert _credit(3, 2) == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 64), min_size=2, max_size=12))
    def test_credits_telescope(self, lengths):
        credits = [_credit(a, b) for a, b in zip(lengths, lengths[1:])]
        assert sum(credits) == lengths[0] - lengths[-1] - (len(lengths) - 1)


class TestConstruction:
    def test_unknown_kind_rejected(self, small_universe):
        overlay = small_universe("chord", n=8)
        with pytest.raises(ConfigurationError):
            AttributionRecorder("tapestry", overlay)
        with pytest.raises(ConfigurationError):
            oblivious_route_length("tapestry", overlay, 0, 1)

    def test_disabled_recorder_reports_disabled(self, small_universe):
        recorder = AttributionRecorder(
            "chord", small_universe("chord", n=8), enabled=False
        )
        assert recorder.enabled is False


class TestTeeRecorder:
    class Sink:
        def __init__(self, enabled=True):
            self.enabled = enabled
            self.seen = []

        def record_lookup(self, result, events):
            self.seen.append(result.key)

    def test_fans_out_to_every_enabled_member(self):
        a, b = self.Sink(), self.Sink()
        tee = TeeRecorder(a, b)
        assert tee.enabled is True
        tee.record_lookup(FakeResult(key=7), [])
        assert a.seen == [7] and b.seen == [7]

    def test_drops_none_and_disabled_members(self):
        live, dead = self.Sink(), self.Sink(enabled=False)
        tee = TeeRecorder(None, dead, live)
        assert tee.recorders == (live,)
        tee.record_lookup(FakeResult(key=3), [])
        assert live.seen == [3] and dead.seen == []

    def test_all_disabled_tee_normalizes_away(self):
        assert TeeRecorder(None, self.Sink(enabled=False)).enabled is False


class TestObliviousWalk:
    @pytest.mark.parametrize("kind", KINDS)
    def test_key_at_source_is_terminal(self, small_universe, kind):
        overlay = small_universe(kind, n=16)
        source = overlay.alive_ids()[0]
        assert oblivious_route_length(kind, overlay, source, source) == 0

    @pytest.mark.parametrize("kind", KINDS)
    def test_matches_real_router_without_auxiliary(self, small_universe, kind):
        """On a fresh overlay the masked walk and the real route are the
        same walk, so R(source) == observed hops — the zero point the
        credit ledger is calibrated against."""
        import random

        overlay = small_universe(kind, n=32)
        ids = overlay.alive_ids()
        rng = random.Random(1)
        for _ in range(150):
            source = rng.choice(ids)
            key = rng.randrange(overlay.space.size)
            result = overlay.lookup(source, key, record_access=False)
            assert oblivious_route_length(kind, overlay, source, key) == result.hops

    def test_memo_is_consistent_with_fresh_walks(self, small_universe):
        """Suffix memoization must be an optimization, not an answer
        change: a shared memo returns the same lengths as fresh walks."""
        import random

        from repro.obs.attribution import _ObliviousWalker

        overlay = small_universe("chord", n=24)
        walker = _ObliviousWalker("chord", overlay, "proximity")
        ids = overlay.alive_ids()
        rng = random.Random(5)
        for _ in range(30):
            key = rng.randrange(overlay.space.size)
            memo = {}
            shared = {node: walker.route_length(node, key, memo) for node in ids}
            fresh = {node: walker.route_length(node, key, {}) for node in ids}
            assert shared == fresh


class TestConservation:
    @pytest.mark.parametrize("kind", KINDS)
    def test_exact_with_zero_credit_on_fresh_overlay(self, small_universe, kind):
        overlay = small_universe(kind, n=32)
        recorder = AttributionRecorder(kind, overlay)
        run_lookups(overlay, trace=recorder)
        ledger = recorder.conservation()
        assert ledger["exact"] is True
        assert ledger["failures"] == []
        # No auxiliary pointers installed -> nothing to credit.
        assert ledger["credited"] == 0
        assert ledger["attributed"] + ledger["unattributed"] == ledger["lookups"]
        for stats in recorder.by_pointer.values():
            assert 0 <= stats.hits <= stats.uses
            assert 0 <= stats.stale_uses <= stats.uses

    @pytest.mark.parametrize("kind", KINDS)
    def test_exact_with_positive_credit_under_auxiliary(self, small_universe, kind):
        """Hand-install shortcut pointers and the ledger must stay exact
        while the auxiliary class earns strictly positive credit."""
        import random

        overlay = small_universe(kind, n=32)
        rng = random.Random(2)
        ids = overlay.alive_ids()
        for node_id in ids:
            overlay.node(node_id).set_auxiliary(set(rng.sample(ids, 6)))
        recorder = AttributionRecorder(kind, overlay)
        run_lookups(overlay, count=300, trace=recorder)
        ledger = recorder.conservation()
        assert ledger["exact"] is True
        assert ledger["failures"] == []
        classes = recorder.class_totals()
        assert classes["auxiliary"].credited > 0
        assert classes["auxiliary"].hits > 0

    def test_exact_under_churn_evictions(self, small_universe):
        """Crashing nodes mid-stream exercises stale pointers, retries
        and evictions; the per-lookup law must survive all of it because
        R is computed against the live tables."""
        overlay = small_universe("chord", n=32)
        import random

        rng = random.Random(3)
        ids = overlay.alive_ids()
        for node_id in ids:
            overlay.node(node_id).set_auxiliary(set(rng.sample(ids, 6)))
        for victim in ids[-6:]:
            overlay.crash(victim)
        recorder = AttributionRecorder("chord", overlay)
        run_lookups(overlay, count=300, trace=recorder)
        ledger = recorder.conservation()
        assert ledger["exact"] is True
        stale = sum(s.stale_uses for s in recorder.class_totals().values())
        assert stale > 0  # the probe actually saw staleness


class TestDisabledIdentity:
    @pytest.mark.parametrize("kind", KINDS)
    def test_routing_identical_and_recorder_untouched(self, small_universe, kind):
        fields = lambda r: (r.hops, r.timeouts, r.penalty, r.path, r.succeeded)
        bare = [fields(r) for r in run_lookups(small_universe(kind, n=24))]
        overlay = small_universe(kind, n=24)
        recorder = AttributionRecorder(kind, overlay, enabled=False)
        traced = [fields(r) for r in run_lookups(overlay, trace=recorder)]
        assert bare == traced
        assert recorder.totals.lookups == 0
        assert recorder.by_node_class == {}

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_identity_holds_for_any_seed(self, seed):
        from repro.chord.ring import ChordRing
        from repro.util.ids import IdSpace

        def routes(trace):
            overlay = ChordRing.build(16, space=IdSpace(12), seed=seed)
            return [
                (r.hops, r.path, r.succeeded)
                for r in run_lookups(overlay, count=40, trace=trace, seed=seed)
            ]

        disabled = AttributionRecorder(
            "chord",
            ChordRing.build(16, space=IdSpace(12), seed=seed),
            enabled=False,
        )
        assert routes(None) == routes(disabled)


class TestMeasuredLoads:
    def make(self, small_universe, counts):
        overlay = small_universe("chord", n=16)
        recorder = AttributionRecorder("chord", overlay, attribute=False)
        for source, count in counts.items():
            for _ in range(count):
                recorder.record_lookup(FakeResult(source=source), [])
        return recorder

    def test_empty_recorder_yields_empty(self, small_universe):
        assert self.make(small_universe, {}).measured_loads() == {}

    def test_uniform_counts_yield_unit_loads(self, small_universe):
        recorder = self.make(small_universe, {1: 5, 2: 5, 3: 5})
        assert recorder.measured_loads() == {1: 1.0, 2: 1.0, 3: 1.0}

    def test_skew_orders_loads_and_unqueried_stay_positive(self, small_universe):
        recorder = self.make(small_universe, {1: 30, 2: 3})
        loads = recorder.measured_loads([1, 2, 3])
        assert loads[1] > loads[2] > loads[3] > 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        counts=st.dictionaries(
            st.integers(0, 63), st.integers(0, 30), min_size=1, max_size=12
        )
    )
    def test_loads_are_positive_with_mean_one(self, counts):
        # No fixture: hypothesis re-runs the body only, so build the
        # (read-only) overlay once at module scope via _shared_ring().
        recorder = AttributionRecorder("chord", _shared_ring(), attribute=False)
        for source, count in counts.items():
            for _ in range(count):
                recorder.record_lookup(FakeResult(source=source), [])
        loads = recorder.measured_loads(sorted(counts))
        assert all(load > 0.0 for load in loads.values())
        assert sum(loads.values()) / len(loads) == pytest.approx(1.0)


class TestExports:
    def aux_recorder(self, small_universe, kind="chord", seed=2):
        import random

        overlay = small_universe(kind, n=32)
        rng = random.Random(seed)
        ids = overlay.alive_ids()
        for node_id in ids:
            overlay.node(node_id).set_auxiliary(set(rng.sample(ids, 4)))
        quotas = {node_id: 4 for node_id in ids}
        recorder = AttributionRecorder(kind, overlay, quotas=quotas)
        run_lookups(overlay, count=250, trace=recorder)
        return recorder

    def test_top_pointers_deterministic_and_bounded(self, small_universe):
        first = self.aux_recorder(small_universe).top_pointers(5)
        second = self.aux_recorder(small_universe).top_pointers(5)
        assert first == second
        assert len(first) == 5
        credited = [entry["credited"] for entry in first]
        assert credited == sorted(credited, reverse=True)

    def test_quota_utilization_shape(self, small_universe):
        recorder = self.aux_recorder(small_universe)
        utilization = recorder.quota_utilization()
        assert set(utilization) == set(recorder.overlay.alive_ids())
        for entry in utilization.values():
            assert entry["quota"] == 4
            assert 0 <= entry["hit"] <= entry["installed"]
            assert entry["utilization"] == entry["installed"] / entry["quota"]

    def test_to_dict_is_json_clean_and_stable(self, small_universe):
        import json

        document = self.aux_recorder(small_universe).to_dict()
        assert document["overlay"] == "chord"
        assert json.dumps(document, sort_keys=True, allow_nan=False)
        again = self.aux_recorder(small_universe).to_dict()
        assert document == again

    def test_class_totals_cover_pointer_buckets(self, small_universe):
        recorder = self.aux_recorder(small_universe)
        by_class = {name: PointerStats() for name in recorder.class_totals()}
        for (__, ___, pointer_class), stats in recorder.by_pointer.items():
            by_class[pointer_class].merge(stats)
        assert {
            name: stats.to_dict() for name, stats in by_class.items()
        } == {
            name: stats.to_dict() for name, stats in recorder.class_totals().items()
        }
