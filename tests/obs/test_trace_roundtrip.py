"""``repro trace --json`` round-trip: the written document survives a
re-parse and its hop accounting reconciles with an independent
:class:`~repro.sim.metrics.HopStatistics` run of the same seed.

The driver-level tests in ``test_trace_driver.py`` exercise the in-memory
document; these go through the CLI and the JSON file on disk, because
that file is what dashboards and the CI artifact consume.
"""

import json

from repro.cli import main
from repro.obs.driver import trace_cell
from repro.sim.runner import ExperimentConfig

ARGS = ["chord", "--n", "24", "--bits", "16", "--queries", "300", "--seed", "5"]
CONFIG = ExperimentConfig(overlay="chord", n=24, bits=16, queries=300, seed=5)


def written_document(tmp_path, extra=()):
    path = tmp_path / "trace.json"
    assert main(["trace", *ARGS, *extra, "--json", str(path)]) == 0
    return json.loads(path.read_text(encoding="utf-8"))


class TestRoundTrip:
    def test_reparses_with_schema_and_sorted_keys(self, tmp_path):
        document = written_document(tmp_path)
        assert document["schema"] == "TRACE_v1"
        assert document["manifest"]["schema"] == "MANIFEST_v1"
        # The file is canonical JSON: re-serializing the parsed document
        # with the writer's settings reproduces the bytes exactly.
        raw = (tmp_path / "trace.json").read_text(encoding="utf-8")
        assert raw == json.dumps(document, sort_keys=True, indent=2) + "\n"

    def test_totals_reconcile_with_hop_statistics(self, tmp_path):
        document = written_document(tmp_path)
        stats = trace_cell(CONFIG)["stats"]
        assert document["stats"] == stats
        counters = document["counters"]
        assert counters["lookups"] == stats["lookups"]
        assert counters["succeeded"] == stats["successes"]
        assert counters["failed"] == stats["failures"]
        # Fault-free cell: every lookup succeeds with zero timeouts, so
        # the class-attributed forwards must add up to exactly the
        # HopStatistics latency total (mean over successes x successes).
        assert stats["failures"] == 0 and counters["timeouts_by_verdict"] == {}
        delivered = sum(counters["hops_by_class"].values())
        assert delivered == round(stats["mean_hops"] * stats["successes"])

    def test_faulty_cell_still_reconciles(self, tmp_path):
        document = written_document(tmp_path, extra=["--loss", "0.05"])
        stats, counters = document["stats"], document["counters"]
        assert counters["lookups"] == stats["lookups"]
        assert counters["succeeded"] == stats["successes"]
        assert counters["failed"] == stats["failures"]
        # The plane actually dropped messages and every timeout carries an
        # attributed verdict.
        assert document["fault_counters"]["dropped"] > 0
        assert stats["timeout_rate"] > 0.0
        assert sum(counters["timeouts_by_verdict"].values()) > 0

    def test_kept_traces_reconcile_event_by_event(self, tmp_path):
        document = written_document(tmp_path, extra=["--sample", "6"])
        assert document["kept"] == 6
        for trace in document["traces"]:
            delivered = [event for event in trace["events"] if event["delivered"]]
            assert len(delivered) == trace["hops"]
            assert sum(event["timeouts"] for event in trace["events"]) == trace["timeouts"]

    def test_same_seed_writes_identical_documents(self, tmp_path):
        first = written_document(tmp_path)
        (tmp_path / "trace.json").unlink()
        second = written_document(tmp_path)
        first["manifest"].pop("volatile")
        second["manifest"].pop("volatile")
        assert first == second
