"""Integration tests: tracing observes without perturbing, at any fan-out.

The contracts defended here are the tentpole's acceptance criteria:

* a traced cell reports the *same* aggregate numbers as the untraced
  ``run_stable`` of the same config (recorders only observe);
* routing results are bit-identical whether ``trace`` is ``None``, a
  ``NullRecorder`` or a live tracer;
* ``trace_cells`` documents are identical at any worker count once the
  manifest's volatile block is stripped;
* with the default single-attempt ``RetryPolicy()`` the hop/timeout
  accounting visible in trace events matches the legacy (pre-fault-plane)
  totals bit for bit.
"""

import json

from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.obs.driver import trace_cell, trace_cells
from repro.obs.manifest import strip_volatile
from repro.obs.recorder import LookupTracer, NullRecorder
from repro.sim.runner import ExperimentConfig, run_stable


def cell_config(overlay="chord", **overrides) -> ExperimentConfig:
    base = dict(overlay=overlay, n=24, bits=16, queries=300, seed=5)
    base.update(overrides)
    return ExperimentConfig(**base)


class TestObserveOnly:
    def test_traced_stats_match_untraced_run(self):
        config = cell_config()
        untraced = run_stable(config).optimized
        traced = trace_cell(config, policy="optimal")["stats"]
        assert traced["lookups"] == untraced.lookups
        assert traced["successes"] == untraced.successes
        assert traced["failures"] == untraced.failures
        assert traced["mean_hops"] == untraced.mean_hops
        assert traced["timeout_rate"] == untraced.timeout_rate

    def test_traced_stats_match_under_faults(self):
        config = cell_config(
            overlay="pastry", faults=FaultSchedule(loss_rate=0.05, crash_burst_size=2)
        )
        untraced = run_stable(config).baseline
        document = trace_cell(config, policy="oblivious")
        assert document["stats"]["lookups"] == untraced.lookups
        assert document["stats"]["mean_hops"] == untraced.mean_hops
        assert document["stats"]["failure_rate"] == untraced.failure_rate
        # The fault plane saw real injections and the events recorded them.
        assert document["fault_counters"]["dropped"] > 0
        verdicts = document["counters"]["timeouts_by_verdict"]
        assert sum(verdicts.values()) == document["counters"]["timeouts_by_verdict"].get(
            "dead", 0
        ) + verdicts.get("dropped", 0) + verdicts.get("blocked", 0)
        assert verdicts  # loss/crash produced at least one verdict

    def test_null_recorder_routes_identically_to_none(self, small_universe):
        def lookups(trace):
            overlay = small_universe("chord", n=24, seed=7)
            ids = overlay.alive_ids()
            return [
                overlay.lookup(source, key, record_access=False, trace=trace)
                for source in ids[:6]
                for key in ids
                if key != source
            ]

        as_none = lookups(None)
        as_null = lookups(NullRecorder())
        as_live = lookups(LookupTracer())
        fields = lambda r: (r.hops, r.timeouts, r.penalty, r.path, r.succeeded)
        assert [fields(r) for r in as_none] == [fields(r) for r in as_null]
        assert [fields(r) for r in as_none] == [fields(r) for r in as_live]


class TestTraceDocuments:
    def test_document_shape(self):
        document = trace_cell(cell_config(), sample=4)
        assert document["schema"] == "TRACE_v1"
        assert document["manifest"]["schema"] == "MANIFEST_v1"
        assert document["kept"] == 4
        assert document["seen"] == 300
        assert len(document["traces"]) == 4
        for trace in document["traces"]:
            delivered = [e for e in trace["events"] if e["delivered"]]
            assert len(delivered) == trace["hops"]
        assert json.dumps(document, sort_keys=True)  # JSON-clean, no NaN

    def test_counters_cover_every_lookup_despite_sampling(self):
        full = trace_cell(cell_config())
        sampled = trace_cell(cell_config(), sample=3)
        assert sampled["counters"] == full["counters"]

    def test_hop_class_attribution_vocabulary(self):
        chord = trace_cell(cell_config("chord"))["counters"]["hops_by_class"]
        pastry = trace_cell(cell_config("pastry"))["counters"]["hops_by_class"]
        assert set(chord) <= {"core", "successor", "auxiliary", "unknown"}
        assert set(pastry) <= {"core", "leaf", "auxiliary", "fallback", "unknown"}
        assert chord and pastry


class TestJobsDeterminism:
    def test_documents_identical_at_any_worker_count(self):
        configs = [cell_config(seed=seed) for seed in (1, 2, 3, 4)]
        serial = trace_cells(configs, sample=4, jobs=1)
        parallel = trace_cells(configs, sample=4, jobs=2)
        canonical = lambda docs: json.dumps(
            [strip_volatile(doc) for doc in docs], sort_keys=True
        )
        assert canonical(serial) == canonical(parallel)

    def test_faulty_cells_are_also_jobs_invariant(self):
        configs = [
            cell_config(seed=9, faults=FaultSchedule(loss_rate=0.05)),
            cell_config("pastry", seed=9, faults=FaultSchedule(crash_burst_size=2)),
        ]
        serial = trace_cells(configs, policy="oblivious", sample=2, jobs=1)
        parallel = trace_cells(configs, policy="oblivious", sample=2, jobs=2)
        assert [strip_volatile(d) for d in serial] == [strip_volatile(d) for d in parallel]


class TestRetryExactness:
    """Satellite: ``RetryPolicy()`` must reproduce pre-fault-plane hop
    totals bit for bit, verified through the trace events themselves."""

    def faulty_overlay(self, build):
        overlay = build(seed=13)
        for victim in overlay.alive_ids()[-4:]:
            overlay.crash(victim)
        return overlay

    def run_all(self, overlay, **kwargs):
        ids = overlay.alive_ids()
        return [
            overlay.lookup(source, key, record_access=False, **kwargs)
            for source in ids[:8]
            for key in ids
            if key != source
        ]

    def check_overlay(self, small_universe, kind):
        build = lambda **kwargs: small_universe(kind, **kwargs)
        legacy = self.run_all(self.faulty_overlay(build))
        tracer = LookupTracer()
        defaulted = self.run_all(
            self.faulty_overlay(build), retry=RetryPolicy(), trace=tracer
        )
        fields = lambda r: (r.hops, r.timeouts, r.path, r.succeeded)
        assert [fields(r) for r in legacy] == [fields(r) for r in defaulted]
        assert sum(r.timeouts for r in legacy) > 0  # the run actually hit faults
        # Event-level accounting: the default policy charges exactly one
        # hop per timeout and zero backoff, so the legacy latency identity
        # (latency == hops + timeouts) holds on every trace.
        for trace in tracer.traces:
            assert trace.penalty == 0.0
            assert sum(event.timeouts for event in trace.events) == trace.timeouts
            assert sum(event.penalty for event in trace.events) == 0.0
            assert all(event.attempts <= 1 for event in trace.events)
        assert tracer.counters.total_timeouts == sum(r.timeouts for r in defaulted)

    def test_chord(self, small_universe):
        self.check_overlay(small_universe, "chord")

    def test_pastry(self, small_universe):
        self.check_overlay(small_universe, "pastry")
