"""Unit tests for the trace recorder primitives."""

import pytest

from repro.obs.recorder import (
    POINTER_CLASSES,
    CounterSet,
    HopEvent,
    LookupTrace,
    LookupTracer,
    NullRecorder,
    TraceRecorder,
)
from repro.util.errors import ConfigurationError


def event(target, pointer_class="core", delivered=True, attempts=1, verdicts=()):
    timeouts = attempts - 1 if delivered else attempts
    return HopEvent(
        forwarder=0,
        target=target,
        pointer_class=pointer_class,
        delivered=delivered,
        attempts=attempts,
        timeouts=timeouts,
        penalty=float(sum(range(timeouts))),
        verdicts=tuple(verdicts),
    )


class FakeResult:
    def __init__(self, key=1, source=0, destination=9, succeeded=True, hops=1,
                 timeouts=0, penalty=0.0):
        self.key = key
        self.source = source
        self.destination = destination
        self.succeeded = succeeded
        self.hops = hops
        self.timeouts = timeouts
        self.penalty = penalty


class TestProtocol:
    def test_null_recorder_is_disabled(self):
        null = NullRecorder()
        assert null.enabled is False
        assert null.record_lookup(FakeResult(), []) is None

    def test_recorders_satisfy_the_protocol(self):
        assert isinstance(NullRecorder(), TraceRecorder)
        assert isinstance(LookupTracer(), TraceRecorder)
        assert isinstance(CounterSet(), TraceRecorder)


class TestLookupTrace:
    def test_path_includes_delivered_hops_only(self):
        trace = LookupTrace(
            key=5, source=10, destination=30, succeeded=True, hops=2, timeouts=1,
            penalty=0.0,
            events=(event(20), event(99, delivered=False, verdicts=["dead"]), event(30)),
        )
        assert trace.path == [10, 20, 30]

    def test_to_dict_round_trips_events(self):
        trace = LookupTrace(
            key=5, source=10, destination=None, succeeded=False, hops=0, timeouts=1,
            penalty=0.5, events=(event(7, delivered=False, verdicts=["dropped"]),),
        )
        document = trace.to_dict()
        assert document["succeeded"] is False
        assert document["events"][0]["verdicts"] == ["dropped"]


class TestCounterSet:
    def make(self):
        counters = CounterSet()
        counters.record_lookup(
            FakeResult(),
            [event(3, "auxiliary"), event(4, "successor", attempts=2, verdicts=["dropped"])],
        )
        counters.record_lookup(
            FakeResult(succeeded=False),
            [event(5, "core", delivered=False, attempts=2, verdicts=["dead", "dead"])],
        )
        return counters

    def test_aggregates(self):
        counters = self.make()
        assert counters.lookups == 2
        assert counters.succeeded == 1
        assert counters.failed == 1
        assert counters.hops_by_class == {"auxiliary": 1, "successor": 1}
        assert counters.timeouts_by_verdict == {"dropped": 1, "dead": 2}
        assert counters.retried_targets == 2
        assert counters.evictions == 1
        assert counters.total_hops == 2
        assert counters.total_timeouts == 3

    def test_merge_adds_componentwise(self):
        a, b = self.make(), self.make()
        a.merge(b)
        assert a.lookups == 4
        assert a.hops_by_class == {"auxiliary": 2, "successor": 2}
        assert a.timeouts_by_verdict == {"dropped": 2, "dead": 4}

    def test_to_dict_sorts_breakdowns(self):
        document = self.make().to_dict()
        assert list(document["hops_by_class"]) == sorted(document["hops_by_class"])
        assert list(document["timeouts_by_verdict"]) == sorted(document["timeouts_by_verdict"])


class TestLookupTracer:
    def test_rejects_non_positive_sample(self):
        with pytest.raises(ConfigurationError):
            LookupTracer(sample=0)

    def test_keeps_everything_without_sampling(self):
        tracer = LookupTracer()
        for key in range(10):
            tracer.record_lookup(FakeResult(key=key), [event(key)])
        assert tracer.seen == 10
        assert [trace.key for trace in tracer.traces] == list(range(10))

    def test_reservoir_bounds_kept_traces(self):
        tracer = LookupTracer(sample=8, seed=42)
        for key in range(300):
            tracer.record_lookup(FakeResult(key=key), [event(key)])
        assert tracer.seen == 300
        assert len(tracer.traces) == 8
        # The counters still saw every lookup — sampling only bounds storage.
        assert tracer.counters.lookups == 300
        assert tracer.counters.total_hops == 300

    def test_reservoir_is_deterministic_in_the_seed(self):
        def kept(seed):
            tracer = LookupTracer(sample=5, seed=seed)
            for key in range(100):
                tracer.record_lookup(FakeResult(key=key), [event(key)])
            return [trace.key for trace in tracer.traces]

        assert kept(7) == kept(7)
        assert kept(7) != kept(8)

    def test_pointer_classes_cover_the_vocabulary(self):
        # The attribution helpers in both routers only ever emit these.
        assert set(POINTER_CLASSES) == {
            "core", "successor", "leaf", "auxiliary", "fallback", "unknown"
        }
