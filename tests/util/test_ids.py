"""Unit tests for the identifier-space arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.errors import IdSpaceError
from repro.util.ids import IdSpace


class TestConstruction:
    def test_default_is_32_bits(self):
        assert IdSpace().bits == 32

    def test_size_and_mask(self):
        space = IdSpace(4)
        assert space.size == 16
        assert space.mask == 15

    @pytest.mark.parametrize("bad", [0, -1, 257, 2.5, "8"])
    def test_rejects_bad_bits(self, bad):
        with pytest.raises(IdSpaceError):
            IdSpace(bad)

    def test_contains_and_validate(self):
        space = IdSpace(4)
        assert space.contains(0)
        assert space.contains(15)
        assert not space.contains(16)
        assert not space.contains(-1)
        assert not space.contains("3")
        with pytest.raises(IdSpaceError):
            space.validate(16)


class TestRingArithmetic:
    def test_gap_wraps(self):
        space = IdSpace(4)
        assert space.gap(14, 2) == 4
        assert space.gap(2, 14) == 12
        assert space.gap(5, 5) == 0

    def test_add_wraps_and_accepts_negative(self):
        space = IdSpace(4)
        assert space.add(15, 1) == 0
        assert space.add(0, -1) == 15

    def test_open_interval(self):
        space = IdSpace(4)
        assert space.in_open_interval(3, 1, 5)
        assert not space.in_open_interval(1, 1, 5)
        assert not space.in_open_interval(5, 1, 5)
        # Wrapping interval (14, 2).
        assert space.in_open_interval(15, 14, 2)
        assert space.in_open_interval(0, 14, 2)
        assert not space.in_open_interval(3, 14, 2)

    def test_degenerate_interval_covers_everything_but_endpoint(self):
        space = IdSpace(4)
        assert space.in_open_interval(3, 7, 7)
        assert not space.in_open_interval(7, 7, 7)

    def test_half_open_interval(self):
        space = IdSpace(4)
        assert space.in_half_open_interval(5, 1, 5)
        assert not space.in_half_open_interval(1, 1, 5)
        assert space.in_half_open_interval(2, 14, 2)

    def test_chord_distance_is_bit_length_of_gap(self):
        space = IdSpace(8)
        assert space.chord_distance(0, 0) == 0
        assert space.chord_distance(0, 1) == 1
        assert space.chord_distance(0, 2) == 2
        assert space.chord_distance(0, 3) == 2
        assert space.chord_distance(0, 4) == 3
        assert space.chord_distance(0, 255) == 8
        # Asymmetric: wrapping the other way is the long way round.
        assert space.chord_distance(255, 0) == 1

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_chord_distance_bounds(self, u, v):
        space = IdSpace(8)
        d = space.chord_distance(u, v)
        assert 0 <= d <= 8
        assert (d == 0) == (u == v)


class TestPrefixArithmetic:
    def test_common_prefix_length(self):
        space = IdSpace(4)
        assert space.common_prefix_length(0b1011, 0b1111) == 1
        assert space.common_prefix_length(0b1011, 0b1011) == 4
        assert space.common_prefix_length(0b0000, 0b1000) == 0

    def test_pastry_distance_matches_paper_example(self):
        # Section IV: ids 1011 and 1111 share one bit, distance 3.
        space = IdSpace(4)
        assert space.pastry_distance(0b1011, 0b1111) == 3

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_pastry_distance_is_symmetric_metricish(self, a, b):
        space = IdSpace(8)
        assert space.pastry_distance(a, b) == space.pastry_distance(b, a)
        assert (space.pastry_distance(a, b) == 0) == (a == b)

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_pastry_distance_ultrametric(self, a, b, c):
        """Trie distance satisfies the strong triangle inequality."""
        space = IdSpace(8)
        d = space.pastry_distance
        assert d(a, c) <= max(d(a, b), d(b, c))

    def test_bit_at_counts_from_msb(self):
        space = IdSpace(4)
        assert [space.bit_at(0b1010, i) for i in range(4)] == [1, 0, 1, 0]
        with pytest.raises(IdSpaceError):
            space.bit_at(0, 4)

    def test_digit_at(self):
        space = IdSpace(8)
        value = 0b10110100
        assert space.digit_at(value, 0, 4) == 0b1011
        assert space.digit_at(value, 1, 4) == 0b0100
        assert space.num_digits(4) == 2

    def test_digit_at_uneven_final_digit(self):
        space = IdSpace(10)
        assert space.num_digits(4) == 3
        value = 0b1011010011
        assert space.digit_at(value, 0, 4) == 0b1011
        assert space.digit_at(value, 1, 4) == 0b0100
        assert space.digit_at(value, 2, 4) == 0b11  # only two bits remain

    def test_prefix(self):
        space = IdSpace(8)
        assert space.prefix(0b10110100, 3) == 0b101
        assert space.prefix(0b10110100, 0) == 0
        assert space.prefix(0b10110100, 8) == 0b10110100

    def test_bits_round_trip(self):
        space = IdSpace(6)
        assert space.to_bits(5) == "000101"
        assert space.from_bits("000101") == 5
        with pytest.raises(IdSpaceError):
            space.from_bits("0101")


class TestHashing:
    def test_hash_is_deterministic_and_in_range(self):
        space = IdSpace(16)
        first = space.hash_name("example.com")
        assert first == space.hash_name("example.com")
        assert 0 <= first < space.size

    def test_salt_changes_mapping(self):
        space = IdSpace(32)
        assert space.hash_name("example.com") != space.hash_name("example.com", salt="v2")
