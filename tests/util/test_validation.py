"""Unit tests for the argument-validation helpers."""

import pytest

from repro.util.errors import ConfigurationError
from repro.util.validation import (
    require,
    require_frequencies,
    require_non_negative_int,
    require_positive,
    require_positive_int,
    require_probability,
    require_unique,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")


class TestIntValidators:
    def test_positive_int_accepts(self):
        assert require_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, 2.0, True, "3"])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_positive_int(bad, "x")

    def test_non_negative_accepts_zero(self):
        assert require_non_negative_int(0, "x") == 0

    @pytest.mark.parametrize("bad", [-1, 1.5, False])
    def test_non_negative_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_non_negative_int(bad, "x")


class TestFloatValidators:
    def test_positive_accepts(self):
        assert require_positive(0.5, "x") == 0.5

    @pytest.mark.parametrize("bad", [0, -0.1, float("inf"), float("nan"), "1"])
    def test_positive_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_positive(bad, "x")

    def test_probability_bounds(self):
        assert require_probability(0.0, "p") == 0.0
        assert require_probability(1.0, "p") == 1.0
        with pytest.raises(ConfigurationError):
            require_probability(1.01, "p")
        with pytest.raises(ConfigurationError):
            require_probability(-0.01, "p")


class TestCollections:
    def test_unique_accepts(self):
        assert require_unique([1, 2, 3], "xs") == [1, 2, 3]

    def test_unique_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            require_unique([1, 2, 2], "xs")

    def test_frequencies_accepts(self):
        require_frequencies({1: 0.0, 2: 3.5})

    @pytest.mark.parametrize(
        "bad",
        [{1.5: 1.0}, {True: 1.0}, {1: -0.1}, {1: float("inf")}, {1: float("nan")}],
    )
    def test_frequencies_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_frequencies(bad)
