"""Unit tests for deterministic RNG substreams."""

import pytest

from repro.util.rng import SeedSequenceRegistry, substream_seed


class TestSubstreamSeed:
    def test_deterministic(self):
        assert substream_seed(42, "churn") == substream_seed(42, "churn")

    def test_distinct_names_distinct_seeds(self):
        assert substream_seed(42, "churn") != substream_seed(42, "workload")

    def test_distinct_masters_distinct_seeds(self):
        assert substream_seed(1, "churn") != substream_seed(2, "churn")


class TestRegistry:
    def test_stream_is_memoized(self):
        registry = SeedSequenceRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_reproducible_across_registries(self):
        draws1 = [SeedSequenceRegistry(7).stream("a").random() for _ in range(1)]
        draws2 = [SeedSequenceRegistry(7).stream("a").random() for _ in range(1)]
        assert draws1 == draws2

    def test_construction_order_does_not_matter(self):
        first = SeedSequenceRegistry(7)
        first.stream("x").random()  # consume from an unrelated stream
        value_after = first.stream("y").random()
        second = SeedSequenceRegistry(7)
        assert second.stream("y").random() == value_after

    def test_fresh_restarts_the_stream(self):
        registry = SeedSequenceRegistry(7)
        a = registry.fresh("z").random()
        b = registry.fresh("z").random()
        assert a == b

    def test_spawn_is_independent(self):
        parent = SeedSequenceRegistry(7)
        child = parent.spawn("node-3")
        assert parent.stream("a").random() != child.stream("a").random()

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            SeedSequenceRegistry("42")
