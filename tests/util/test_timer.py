"""Tests for the shared wall-clock stopwatch."""

import time

from repro.util.timer import Stopwatch


class TestStopwatch:
    def test_elapsed_monotone_nonnegative(self):
        watch = Stopwatch()
        first = watch.elapsed
        time.sleep(0.01)
        second = watch.elapsed
        assert 0.0 <= first <= second

    def test_str_formats_seconds(self):
        text = str(Stopwatch())
        assert text.endswith("s")
        assert float(text[:-1]) >= 0.0
