"""Worker-process fan-out must be bit-identical to the serial path."""

import pytest

from repro.experiments.figures import FigurePreset, run_figure
from repro.experiments.sweep import sweep
from repro.sim.runner import ExperimentConfig
from repro.util.errors import ConfigurationError
from repro.util.parallel import JOBS_ENV_VAR, resolve_jobs, run_tasks


def _square(value):
    return value * value


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs(None) == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) >= 1

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)

    def test_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs(None)


class TestRunTasks:
    def test_serial_preserves_order(self):
        assert run_tasks(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        assert run_tasks(_square, [3, 1, 2], jobs=2) == [9, 1, 4]

    def test_empty(self):
        assert run_tasks(_square, [], jobs=4) == []


class TestDeterminism:
    """Serial and parallel runs must produce identical outputs — exact
    equality, not approx: both paths execute the same per-cell code with
    the same derived seeds, so every float must match bit for bit."""

    def test_sweep_identical_across_job_counts(self):
        base = ExperimentConfig(overlay="chord", n=24, bits=16, queries=300, seed=7)
        values = [0.9, 1.2, 1.5]
        serial = sweep(base, "alpha", values, jobs=1)
        parallel = sweep(base, "alpha", values, jobs=4)
        assert serial == parallel

    def test_figure_identical_across_job_counts(self):
        preset = FigurePreset(
            name="tiny",
            bits=16,
            queries=200,
            pastry_sizes=(16, 24),
            pastry_k_base=16,
            chord_sizes=(16, 24),
            chord_k_base=16,
            churn_duration=60.0,
            churn_warmup=15.0,
            seed=11,
        )
        serial = run_figure("3", preset, jobs=1)
        parallel = run_figure("3", preset, jobs=4)
        assert serial == parallel
