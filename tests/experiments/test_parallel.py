"""Worker-process fan-out must be bit-identical to the serial path."""

import pytest

from repro.experiments.figures import FigurePreset, run_figure
from repro.experiments.sweep import sweep
from repro.faults import FaultSchedule
from repro.sim.runner import ChurnConfig, ExperimentConfig
from repro.util.errors import ConfigurationError
from repro.util.parallel import JOBS_ENV_VAR, resolve_jobs, run_tasks


def _square(value):
    return value * value


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs(None) == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) >= 1

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(0)
        with pytest.raises(ConfigurationError):
            resolve_jobs(-2)

    def test_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs(None)


class TestRunTasks:
    def test_serial_preserves_order(self):
        assert run_tasks(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_parallel_preserves_order(self):
        assert run_tasks(_square, [3, 1, 2], jobs=2) == [9, 1, 4]

    def test_empty(self):
        assert run_tasks(_square, [], jobs=4) == []


class TestDeterminism:
    """Serial and parallel runs must produce identical outputs — exact
    equality, not approx: both paths execute the same per-cell code with
    the same derived seeds, so every float must match bit for bit."""

    def test_sweep_identical_across_job_counts(self):
        base = ExperimentConfig(overlay="chord", n=24, bits=16, queries=300, seed=7)
        values = [0.9, 1.2, 1.5]
        serial = sweep(base, "alpha", values, jobs=1)
        parallel = sweep(base, "alpha", values, jobs=4)
        assert serial == parallel

    def test_figure_identical_across_job_counts(self):
        preset = FigurePreset(
            name="tiny",
            bits=16,
            queries=200,
            pastry_sizes=(16, 24),
            pastry_k_base=16,
            chord_sizes=(16, 24),
            chord_k_base=16,
            churn_duration=60.0,
            churn_warmup=15.0,
            seed=11,
        )
        serial = run_figure("3", preset, jobs=1)
        parallel = run_figure("3", preset, jobs=4)
        assert serial == parallel

    def test_churn_cell_identical_across_job_counts(self):
        """A churn-mode cell drives the full event machinery (scheduler,
        churn process, online learning) in each worker; serial and
        parallel fan-out must still agree bit for bit."""
        base = ChurnConfig(
            overlay="chord", n=16, bits=16, seed=13, duration=80.0, warmup=20.0
        )
        values = [0.9, 1.4]
        serial = sweep(base, "alpha", values, jobs=1)
        parallel = sweep(base, "alpha", values, jobs=4)
        assert serial == parallel

    def test_fault_injected_cell_identical_across_job_counts(self):
        """Injected faults draw from registry substreams rebuilt inside
        each worker from the config-embedded seed, so a fault-injected
        cell must be bit-identical at any worker count too."""
        base = ExperimentConfig(
            overlay="chord",
            n=24,
            bits=16,
            queries=300,
            seed=21,
            faults=FaultSchedule(loss_rate=0.05, crash_burst_size=2, stale_rate=0.01),
        )
        values = [0.9, 1.2, 1.5]
        serial = sweep(base, "alpha", values, jobs=1)
        parallel = sweep(base, "alpha", values, jobs=4)
        assert serial == parallel

    def test_fault_injected_churn_cell_identical_across_job_counts(self):
        base = ChurnConfig(
            overlay="pastry",
            n=16,
            bits=16,
            seed=17,
            duration=80.0,
            warmup=20.0,
            faults=FaultSchedule(
                loss_rate=0.02,
                crash_burst_size=2,
                crash_burst_interval=30.0,
                crash_burst_downtime=15.0,
                stale_rate=0.05,
            ),
        )
        values = [1.0, 1.3]
        serial = sweep(base, "alpha", values, jobs=1)
        parallel = sweep(base, "alpha", values, jobs=4)
        assert serial == parallel
