"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figure_arguments(self):
        args = build_parser().parse_args(["figure", "3", "--seed", "7", "--detail"])
        assert args.command == "figure"
        assert args.figure_id == "3"
        assert args.seed == 7
        assert args.detail

    def test_figure_rejects_unknown_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_compare_arguments(self):
        args = build_parser().parse_args(
            ["compare", "chord", "--n", "64", "--k", "5", "--churn"]
        )
        assert args.overlay == "chord"
        assert args.n == 64
        assert args.k == 5
        assert args.churn

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_compare_stable_runs(self, capsys):
        code = main(
            ["compare", "chord", "--n", "32", "--bits", "16", "--queries", "400", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction" in out
        assert "failure rates" in out

    def test_compare_churn_runs(self, capsys):
        code = main(
            [
                "compare",
                "pastry",
                "--n", "24",
                "--bits", "16",
                "--churn",
                "--duration", "120",
                "--seed", "1",
            ]
        )
        assert code == 0
        assert "reduction" in capsys.readouterr().out

    def test_faults_parser_arguments(self):
        args = build_parser().parse_args(["faults", "--smoke", "--seed", "9", "--jobs", "2"])
        assert args.command == "faults"
        assert args.smoke
        assert args.seed == 9
        assert args.jobs == 2

    def test_faults_smoke_runs_and_writes_json(self, capsys, tmp_path):
        target = tmp_path / "robustness.json"
        code = main(["faults", "--smoke", "--jobs", "2", "--json", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement" in out
        assert target.exists()
        assert '"schema": "ROBUSTNESS_v1"' in target.read_text()

    def test_allocate_parser_arguments(self):
        args = build_parser().parse_args(
            ["allocate", "--smoke", "--seed", "4", "--jobs", "2"]
        )
        assert args.command == "allocate"
        assert args.smoke
        assert args.seed == 4
        assert args.jobs == 2

    def test_compare_budget_argument_parses(self):
        from repro.cli import _parse_budget

        assert _parse_budget(None) == {}
        assert _parse_budget("uniform:120") == {
            "budget_mode": "uniform",
            "budget_total": 120,
        }
        assert _parse_budget("allocated") == {
            "budget_mode": "allocated",
            "budget_total": None,
        }
        with pytest.raises(SystemExit):
            _parse_budget("clever:3")
        with pytest.raises(SystemExit):
            _parse_budget("allocated:many")

    def test_compare_with_budget_runs(self, capsys):
        code = main(
            [
                "compare",
                "chord",
                "--n",
                "32",
                "--bits",
                "16",
                "--queries",
                "300",
                "--budget",
                "allocated:100",
            ]
        )
        assert code == 0
        assert "budget=allocated:100" in capsys.readouterr().out

    def test_allocate_smoke_runs_and_writes_json(self, capsys, tmp_path):
        target = tmp_path / "allocation.json"
        code = main(["allocate", "--smoke", "--jobs", "2", "--json", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "allocated" in out
        assert "reduction" in out
        assert target.exists()
        assert '"schema": "ALLOCATION_v1"' in target.read_text()

    def test_allocate_workload_and_loads_arguments(self):
        args = build_parser().parse_args(
            ["allocate", "--smoke", "--workload", "diurnal", "--loads", "measured"]
        )
        assert args.workload == "diurnal"
        assert args.loads == "measured"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["allocate", "--loads", "guessed"])

    def test_allocate_measured_smoke_gates_on_load_win(self, capsys):
        code = main(
            ["allocate", "--smoke", "--jobs", "2", "--workload", "diurnal",
             "--loads", "measured"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "load win" in out

    def test_cachestats_parser_arguments(self):
        args = build_parser().parse_args(
            ["cachestats", "--smoke", "--seed", "6", "--jobs", "2",
             "--top", "3", "--workload", "flash-crowd"]
        )
        assert args.command == "cachestats"
        assert args.smoke
        assert args.seed == 6
        assert args.jobs == 2
        assert args.top == 3
        assert args.workload == "flash-crowd"

    def test_cachestats_smoke_runs_and_writes_json(self, capsys, tmp_path):
        target = tmp_path / "cachestats.json"
        code = main(["cachestats", "--smoke", "--jobs", "2", "--json", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "credited" in out
        assert "util" in out
        assert "conservation" in out
        assert target.exists()
        assert '"schema": "CACHESTATS_v1"' in target.read_text()

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Chord" in out
        assert "Pastry" in out

    def test_trace_parser_arguments(self):
        args = build_parser().parse_args(
            ["trace", "pastry", "--sample", "32", "--policy", "oblivious", "--loss", "0.05"]
        )
        assert args.command == "trace"
        assert args.overlay == "pastry"
        assert args.sample == 32
        assert args.policy == "oblivious"
        assert args.loss == 0.05

    def test_trace_defaults_to_chord(self):
        assert build_parser().parse_args(["trace"]).overlay == "chord"

    def test_trace_runs_and_writes_json(self, capsys, tmp_path):
        target = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "--n", "24",
                "--bits", "16",
                "--queries", "200",
                "--sample", "8",
                "--loss", "0.05",
                "--json", str(target),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hop breakdown by pointer class" in out
        assert "per-lookup paths" in out
        assert "hop 1:" in out
        assert target.exists()
        assert '"schema": "TRACE_v1"' in target.read_text()

    def test_figure_writes_json_with_manifest(self, capsys, tmp_path):
        import json

        target = tmp_path / "figure.json"
        code = main(["figure", "5", "--jobs", "2", "--json", str(target)])
        assert code == 0
        document = json.loads(target.read_text())
        assert document["schema"] == "FIGURE_v1"
        assert document["manifest"]["schema"] == "MANIFEST_v1"
        assert document["series"]

    def test_metrics_parser_arguments(self):
        args = build_parser().parse_args(
            ["metrics", "pastry", "--rounds", "6", "--smoke", "--loss", "0.05"]
        )
        assert args.command == "metrics"
        assert args.overlay == "pastry"
        assert args.rounds == 6
        assert args.smoke
        assert args.loss == 0.05

    def test_metrics_defaults_to_chord(self):
        assert build_parser().parse_args(["metrics"]).overlay == "chord"

    def test_metrics_smoke_writes_both_exports(self, capsys, tmp_path):
        import json

        json_target = tmp_path / "metrics.json"
        text_target = tmp_path / "metrics.om"
        code = main(
            [
                "metrics",
                "--smoke",
                "--rounds", "3",
                "--jobs", "2",
                "--json", str(json_target),
                "--openmetrics", str(text_target),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "METRICS_v1:" in out
        assert "round clock" in out
        assert "cost/lookup" in out
        document = json.loads(json_target.read_text())
        assert document["schema"] == "METRICS_v1"
        assert document["manifest"]["schema"] == "MANIFEST_v1"
        assert set(document["cells"]) == {"optimal", "oblivious"}
        exposition = text_target.read_text()
        assert exposition.endswith("# EOF\n")
        from repro.telemetry.export import parse_openmetrics

        assert parse_openmetrics(exposition)

    def test_metrics_smoke_is_deterministic_across_jobs(self, capsys, tmp_path):
        import json

        from repro.obs.manifest import strip_volatile

        documents = []
        for jobs, name in (("1", "a.json"), ("2", "b.json")):
            target = tmp_path / name
            assert main(
                ["metrics", "--smoke", "--rounds", "2", "--jobs", jobs,
                 "--json", str(target)]
            ) == 0
            documents.append(strip_volatile(json.loads(target.read_text())))
        capsys.readouterr()
        assert json.dumps(documents[0], sort_keys=True) == json.dumps(
            documents[1], sort_keys=True
        )

    def test_report_parser_arguments(self):
        args = build_parser().parse_args(
            ["report", "--figures", "3", "5", "--jobs", "2", "--out-dir", "out"]
        )
        assert args.command == "report"
        assert args.figures == ["3", "5"]
        assert args.jobs == 2
        assert args.out_dir == "out"

    def test_report_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--figures", "9"])
