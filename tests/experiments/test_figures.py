"""Tests for the figure runners and report rendering.

A tiny preset keeps these fast; the paper-shape assertions (who wins,
trend directions) are exercised at quick scale by the benchmark harness.
"""

import pytest

from repro.experiments.figures import (
    FIGURES,
    FigurePreset,
    figure3,
    figure4,
    figure5,
    figure6,
    run_figure,
)
from repro.experiments.report import render_detail, render_markdown, render_table
from repro.util.errors import ConfigurationError

TINY = FigurePreset(
    name="tiny",
    bits=16,
    queries=400,
    pastry_sizes=(32, 64),
    pastry_k_base=48,
    chord_sizes=(24, 48),
    chord_k_base=32,
    churn_duration=150.0,
    churn_warmup=40.0,
    seed=1,
)


@pytest.fixture(scope="module")
def fig3():
    return figure3(TINY)


@pytest.fixture(scope="module")
def fig5():
    return figure5(TINY)


class TestStructure:
    def test_registry_covers_all_figures(self):
        assert sorted(FIGURES) == ["3", "4", "5", "6", "7"]

    def test_run_figure_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            run_figure("8")

    def test_overlay_pin_applies_to_figure7_only(self):
        with pytest.raises(ConfigurationError):
            run_figure("3", TINY, overlay="kademlia")

    def test_figure3_structure(self, fig3):
        assert fig3.figure_id == "figure3"
        assert [series.label for series in fig3.series] == ["alpha=1.2", "alpha=0.91"]
        for series in fig3.series:
            assert [point.x for point in series.points] == [32, 64]

    def test_figure4_structure(self):
        result = figure4(TINY)
        ks = [point.x for point in result.series[0].points]
        base = 48 .bit_length() - 1  # log2(48) = 5
        assert ks == [base, 2 * base, 3 * base]

    def test_figure5_structure(self, fig5):
        assert [series.label for series in fig5.series] == ["stable", "high churn"]

    def test_figure6_structure(self):
        result = figure6(TINY)
        assert result.figure_id == "figure6"
        assert len(result.series) == 2
        assert len(result.series[0].points) == 3


class TestShapes:
    def test_figure3_all_positive(self, fig3):
        for series in fig3.series:
            for value in series.improvements():
                assert value > 0.0

    def test_figure5_stable_beats_churn_everywhere(self, fig5):
        stable, churn = fig5.series
        for s_point, c_point in zip(stable.points, churn.points):
            assert s_point.improvement > 0.0
            # Churn shrinks the benefit (allow small noise at tiny scale).
            assert c_point.improvement < s_point.improvement + 10.0


class TestRendering:
    def test_table_contains_all_values(self, fig3):
        table = render_table(fig3)
        assert "figure3" in table
        assert "alpha=1.2" in table
        for series in fig3.series:
            for point in series.points:
                assert f"{point.improvement:.1f}" in table

    def test_detail_mentions_hops(self, fig3):
        detail = render_detail(fig3)
        assert "ours" in detail
        assert "oblivious" in detail

    def test_markdown_is_a_table(self, fig3):
        markdown = render_markdown(fig3)
        lines = markdown.splitlines()
        assert lines[0].startswith("### figure3")
        assert lines[2].startswith("| ")
        assert set(lines[3].replace("|", "").strip()) <= {"-"}
        assert len(lines) == 4 + len(fig3.series[0].points)


class TestReplication:
    def test_replicas_merge_statistics(self):
        from dataclasses import replace

        single = figure5(replace(TINY, chord_sizes=(24,), churn_duration=120.0, churn_warmup=30.0))
        doubled = figure5(
            replace(TINY, chord_sizes=(24,), churn_duration=120.0, churn_warmup=30.0, replicas=2)
        )
        one = single.series[0].points[0].comparison
        two = doubled.series[0].points[0].comparison
        assert two.optimized.lookups == 2 * one.optimized.lookups
        assert "(x2 seeds)" in two.label
