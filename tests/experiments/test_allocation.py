"""The uniform-vs-allocated grid: plans, gates, JSON canonicality."""

import json

import pytest

from repro.experiments.allocation import (
    AllocationPlan,
    AllocationPreset,
    allocation,
    allocation_plans,
    gate_messages,
    load_gate_messages,
    measured_gate_messages,
    plans_to_table,
    rows_to_json,
    rows_to_table,
)
from repro.obs.manifest import strip_volatile
from repro.util.errors import ConfigurationError


def tiny_preset(seed: int = 3, overlays=("chord",), scenarios=("stable", "churn")):
    return AllocationPreset(
        name="tiny",
        n=24,
        bits=16,
        queries=300,
        seed=seed,
        num_rankings=4,
        churn_duration=120.0,
        overlays=overlays,
        scenarios=scenarios,
    )


class TestPlans:
    def test_allocated_beats_uniform_predicted_cost(self):
        plans = allocation_plans(tiny_preset())
        assert len(plans) == 1
        plan = plans[0]
        assert plan.allocated_cost < plan.uniform_cost
        assert plan.spent == plan.total_budget
        # The installed tables reproduce the predicted cost under the
        # shared network_cost evaluation (honesty check).
        assert abs(plan.installed_cost_delta) < 1e-6
        assert plan.min_quota < plan.max_quota  # genuinely non-uniform

    def test_plan_gates_pass_on_all_overlays(self):
        plans = allocation_plans(
            tiny_preset(overlays=("chord", "pastry", "kademlia"))
        )
        assert gate_messages(plans) == []

    def test_gate_flags_non_improvement(self):
        plan = AllocationPlan(
            overlay="chord",
            total_budget=10,
            spent=10,
            uniform_cost=5.0,
            allocated_cost=5.0,
            reduction_pct=0.0,
            min_quota=1,
            max_quota=1,
            nodes=10,
            installed_cost_delta=0.5,
        )
        messages = gate_messages([plan])
        assert len(messages) == 2  # no strict win + installed-cost drift


class TestGrid:
    def test_grid_covers_every_cell_and_gates_pass(self):
        preset = tiny_preset()
        plans, rows = allocation(preset, jobs=1)
        assert [(r.scenario, r.mode) for r in rows] == [
            ("stable", "uniform"),
            ("stable", "allocated"),
            ("churn", "uniform"),
            ("churn", "allocated"),
        ]
        assert all("budget=" in r.label for r in rows)
        assert measured_gate_messages(rows) == []

    def test_measured_gate_flags_overlay_with_no_win(self):
        __, rows = allocation(tiny_preset(), jobs=1)
        losing = [
            r
            if r.mode == "uniform"
            else r.__class__(**{**r.__dict__, "optimal_mean_hops": 99.0})
            for r in rows
        ]
        messages = measured_gate_messages(losing)
        assert len(messages) == 1
        assert "chord" in messages[0]

    def test_json_is_identical_across_job_counts(self):
        preset = tiny_preset(seed=5)
        serial = allocation(preset, jobs=1)
        parallel = allocation(preset, jobs=2)
        strip = lambda pair: strip_volatile(json.loads(rows_to_json(*pair, preset)))
        assert json.dumps(strip(serial), sort_keys=True) == json.dumps(
            strip(parallel), sort_keys=True
        )

    def test_json_round_trips(self):
        preset = tiny_preset()
        plans, rows = allocation(preset, jobs=1)
        document = json.loads(rows_to_json(plans, rows, preset, wall_time_s=1.0))
        assert document["schema"] == "ALLOCATION_v1"
        assert document["preset"]["name"] == "tiny"
        assert document["manifest"]["schema"] == "MANIFEST_v1"
        assert document["manifest"]["seed"] == preset.seed
        assert len(document["rows"]) == 4
        assert len(document["plans"]) == 1


class TestTables:
    def test_tables_render_every_line(self):
        plans, rows = allocation(tiny_preset(), jobs=1)
        plan_table = plans_to_table(plans)
        assert "reduction" in plan_table
        assert plan_table.count("\n") == len(plans) + 1
        row_table = rows_to_table(rows)
        assert "oblivious" in row_table
        assert row_table.count("\n") == len(rows) + 1

    def test_empty_tables(self):
        assert plans_to_table([]) == "(no plans)"
        assert rows_to_table([]) == "(empty grid)"


class TestMeasuredLoads:
    def measured_preset(self, **overrides):
        base = dict(workload="diurnal", loads="measured")
        base.update(overrides)
        return tiny_preset().__class__(
            name="tiny",
            n=24,
            bits=16,
            queries=300,
            seed=3,
            num_rankings=4,
            churn_duration=120.0,
            overlays=("chord",),
            scenarios=("stable",),
            **base,
        )

    def test_measured_allocation_beats_load_blind_on_skewed_sources(self):
        plans = allocation_plans(self.measured_preset())
        plan = plans[0]
        assert plan.loads == "measured"
        assert plan.workload == "diurnal"
        assert plan.measured_cost is not None
        # Under the measured (skewed) loads, reweighting the greedy
        # allocation strictly beats spending the load-blind quotas.
        assert plan.measured_cost < plan.uniform_loads_cost
        assert plan.load_win_pct > 0.0
        assert plan.load_min < 1.0 < plan.load_max  # genuinely skewed
        assert load_gate_messages(plans) == []

    def test_uniform_mode_keeps_measured_fields_empty(self):
        plans = allocation_plans(tiny_preset())
        assert plans[0].loads == "uniform"
        assert plans[0].measured_cost is None
        assert load_gate_messages(plans) == []  # nothing to gate

    def test_load_gate_flags_non_improvement(self):
        plans = allocation_plans(self.measured_preset())
        import dataclasses

        losing = [
            dataclasses.replace(plan, measured_cost=plan.uniform_loads_cost)
            for plan in plans
        ]
        messages = load_gate_messages(losing)
        assert len(messages) == 1
        assert "chord" in messages[0]

    def test_table_grows_load_columns_only_when_measured(self):
        measured = plans_to_table(allocation_plans(self.measured_preset()))
        assert "load win" in measured
        uniform = plans_to_table(allocation_plans(tiny_preset()))
        assert "load win" not in uniform

    def test_rejects_bad_loads_and_workload(self):
        with pytest.raises(ConfigurationError):
            self.measured_preset(loads="observed")
        with pytest.raises(ConfigurationError):
            self.measured_preset(workload="solar-flare")


class TestPresets:
    def test_total_budget_is_half_the_paper_spend(self):
        preset = AllocationPreset.smoke()
        assert preset.total_budget == preset.n * preset.effective_k // 2

    def test_quick_and_smoke_validate(self):
        assert AllocationPreset.quick().name == "quick"
        assert AllocationPreset.smoke().scenarios == ("stable", "churn", "fault")

    def test_rejects_bad_fraction_and_scenario(self):
        with pytest.raises(ConfigurationError):
            tiny_preset().__class__(
                name="bad",
                n=8,
                bits=16,
                queries=10,
                seed=0,
                num_rankings=1,
                budget_fraction=0.0,
            )
        with pytest.raises(ConfigurationError):
            AllocationPreset(
                name="bad",
                n=8,
                bits=16,
                queries=10,
                seed=0,
                num_rankings=1,
                scenarios=("weird",),
            )
