"""The cachestats experiment: cells, gates, JSON canonicality, CLI."""

import copy
import json

import pytest

from repro.experiments.cachestats import (
    CachestatsPreset,
    cells_to_json,
    cells_to_table,
    gate_messages,
    run_cachestats,
    top_pointers_table,
    utilization_series,
)
from repro.obs.manifest import strip_volatile


def tiny_preset(seed: int = 0, overlays=("chord",), **overrides):
    base = dict(
        name="tiny",
        n=28,
        bits=16,
        queries=300,
        warmup=200,
        seed=seed,
        num_rankings=4,
        overlays=overlays,
    )
    base.update(overrides)
    return CachestatsPreset(**base)


@pytest.fixture(scope="module")
def full_grid():
    """One tiny cell per overlay, shared by the read-only assertions."""
    return run_cachestats(
        tiny_preset(overlays=("chord", "pastry", "kademlia")), jobs=1
    )


class TestCells:
    def test_cell_accounting_is_coherent(self, full_grid):
        for cell in full_grid:
            assert cell["lookups"] == 300
            for stats in cell["classes"].values():
                assert 0 <= stats["hits"] <= stats["uses"]
                assert 0 <= stats["stale_uses"] <= stats["uses"]
            assert cell["quota"]["spent"] <= cell["quota"]["total_budget"]
            assert cell["conservation"]["exact"] is True
            assert cell["churn"]["conservation"]["exact"] is True
            assert cell["churn"]["stale_uses"] > 0

    def test_auxiliary_pointers_earn_credit_everywhere(self, full_grid):
        for cell in full_grid:
            assert cell["classes"]["auxiliary"]["credited"] > 0

    def test_columnar_attribution_matches_object_graph(self, full_grid):
        numpy = pytest.importorskip("numpy")
        assert numpy is not None
        by_overlay = {cell["overlay"]: cell["columnar_match"] for cell in full_grid}
        assert by_overlay["chord"] is True
        assert by_overlay["pastry"] is True
        assert by_overlay["kademlia"] is None  # engine does not cover it

    def test_loads_are_positive_mean_one(self, full_grid):
        for cell in full_grid:
            loads = list(cell["loads"]["per_node"].values())
            assert all(load > 0.0 for load in loads)
            assert sum(loads) / len(loads) == pytest.approx(1.0)

    def test_gates_pass_on_every_overlay(self, full_grid):
        assert gate_messages(full_grid) == []


class TestGates:
    def test_each_doctored_claim_fires_its_gate(self, full_grid):
        clean = full_grid[0]

        broken = copy.deepcopy(clean)
        broken["conservation"]["exact"] = False
        assert any("conservation" in m for m in gate_messages([broken]))

        broken = copy.deepcopy(clean)
        broken["classes"]["auxiliary"]["hits"] = (
            broken["classes"]["auxiliary"]["uses"] + 1
        )
        assert any("more hits" in m for m in gate_messages([broken]))

        broken = copy.deepcopy(clean)
        broken["classes"]["auxiliary"]["credited"] = 0
        assert any("no credited" in m for m in gate_messages([broken]))

        broken = copy.deepcopy(clean)
        broken["columnar_match"] = False
        assert any("columnar" in m for m in gate_messages([broken]))

        broken = copy.deepcopy(clean)
        broken["churn"]["stale_uses"] = 0
        assert any("stale" in m for m in gate_messages([broken]))


class TestDeterminism:
    def test_json_identical_across_job_counts(self):
        preset = tiny_preset(seed=4, overlays=("chord", "pastry", "kademlia"))
        serial = cells_to_json(run_cachestats(preset, jobs=1), preset)
        parallel = cells_to_json(run_cachestats(preset, jobs=4), preset)
        canonical = lambda text: json.dumps(
            strip_volatile(json.loads(text)), sort_keys=True
        )
        assert canonical(serial) == canonical(parallel)

    def test_json_round_trips(self, full_grid):
        preset = tiny_preset(overlays=("chord", "pastry", "kademlia"))
        document = json.loads(cells_to_json(full_grid, preset, wall_time_s=1.0))
        assert document["schema"] == "CACHESTATS_v1"
        assert document["preset"]["name"] == "tiny"
        assert document["manifest"]["schema"] == "MANIFEST_v1"
        assert document["manifest"]["seed"] == preset.seed
        assert len(document["cells"]) == 3


class TestTables:
    def test_class_table_has_a_row_per_overlay_class(self, full_grid):
        table = cells_to_table(full_grid)
        rows = sum(len(cell["classes"]) for cell in full_grid)
        assert table.count("\n") == rows
        assert "credited" in table

    def test_utilization_series_orders_nodes(self, full_grid):
        series = utilization_series(full_grid)
        assert [label for label, __ in series[:2]] == ["chord util", "chord load"]
        assert len(series) == 2 * len(full_grid)
        for __, values in series:
            assert values  # every overlay contributed nodes

    def test_top_pointers_table_bounded(self, full_grid):
        table = top_pointers_table(full_grid, count=3)
        assert table.count("\n") <= 3 * len(full_grid)
        assert "owner" in table


class TestPresets:
    def test_smoke_and_quick_shapes(self):
        smoke = CachestatsPreset.smoke()
        quick = CachestatsPreset.quick(seed=7, workload="diurnal")
        assert smoke.name == "smoke"
        assert quick.seed == 7 and quick.workload == "diurnal"
        assert smoke.total_budget == int(
            smoke.n * smoke.effective_k * smoke.budget_fraction
        )
