"""The robustness grid: ordering, metrics, JSON canonicality, CLI."""

import json

from repro.experiments.robustness import (
    RobustnessPreset,
    robustness,
    rows_to_json,
    rows_to_table,
)
from repro.obs.manifest import strip_volatile


def tiny_preset(seed: int = 3) -> RobustnessPreset:
    return RobustnessPreset(
        name="tiny",
        n=16,
        bits=16,
        queries=200,
        seed=seed,
        loss_rates=(0.0, 0.05),
        burst_sizes=(2,),
        overlays=("chord",),
    )


class TestGrid:
    def test_rows_follow_cell_order(self):
        rows = robustness(tiny_preset(), jobs=1)
        assert [(r.axis, r.value) for r in rows] == [
            ("loss", 0.0),
            ("loss", 0.05),
            ("burst", 2.0),
        ]
        assert all(r.overlay == "chord" for r in rows)

    def test_faulted_cells_report_percentiles(self):
        rows = robustness(tiny_preset(), jobs=1)
        clean, lossy, burst = rows
        # Fault-free fast path keeps no samples; faulted cells do.
        assert clean.optimal_p95 is None
        assert lossy.optimal_p95 is not None
        assert burst.optimal_p99 >= burst.optimal_p95 >= burst.optimal_p50

    def test_loss_costs_timeouts_not_failures(self):
        rows = robustness(tiny_preset(), jobs=1)
        lossy = rows[1]
        assert lossy.optimal_timeout_rate > 0.0
        assert lossy.optimal_failure_rate <= 0.05

    def test_json_is_identical_across_job_counts(self):
        # The manifest's volatile block (timestamps, argv) legitimately
        # differs between runs; everything else must be byte-identical.
        preset = tiny_preset(seed=5)
        serial = strip_volatile(json.loads(rows_to_json(robustness(preset, jobs=1), preset)))
        parallel = strip_volatile(json.loads(rows_to_json(robustness(preset, jobs=2), preset)))
        assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)

    def test_json_round_trips(self):
        preset = tiny_preset()
        document = json.loads(rows_to_json(robustness(preset, jobs=1), preset))
        assert document["schema"] == "ROBUSTNESS_v1"
        assert document["preset"]["name"] == "tiny"
        assert document["manifest"]["schema"] == "MANIFEST_v1"
        assert document["manifest"]["seed"] == preset.seed
        assert len(document["rows"]) == 3

    def test_table_renders_every_row(self):
        rows = robustness(tiny_preset(), jobs=1)
        table = rows_to_table(rows)
        assert "improvement" in table
        assert table.count("\n") == len(rows) + 1  # header + rule + rows

    def test_empty_table(self):
        assert rows_to_table([]) == "(empty grid)"


class TestPresets:
    def test_smoke_uses_the_issue_loss_axis(self):
        preset = RobustnessPreset.smoke()
        assert preset.loss_rates == (0.0, 0.01, 0.05, 0.1)
        assert preset.overlays == ("chord", "pastry", "kademlia")

    def test_quick_is_larger_than_smoke(self):
        assert RobustnessPreset.quick().n > RobustnessPreset.smoke().n
