"""Tests for the report runner (``repro report`` / results/report.*)."""

import json

from repro.experiments.figures import FigurePreset
from repro.experiments.report import (
    REPORT_FIGURES,
    REPORT_SCHEMA,
    report_preset,
    run_report,
)
from repro.obs.manifest import strip_volatile

TINY = FigurePreset(
    name="tiny",
    bits=16,
    queries=400,
    pastry_sizes=(32,),
    pastry_k_base=48,
    chord_sizes=(24,),
    chord_k_base=32,
    churn_duration=150.0,
    churn_warmup=40.0,
    seed=1,
)


class TestReportPreset:
    def test_report_scale_uses_paper_node_counts(self):
        preset = report_preset()
        assert preset.name == "report"
        assert preset.bits == 32
        assert max(preset.pastry_sizes) == 2048
        assert REPORT_FIGURES == ("3", "4", "5", "6")


class TestRunReport:
    def test_writes_json_and_markdown_with_manifest(self, tmp_path):
        document = run_report(
            figures=("3",), jobs=2, out_dir=tmp_path, preset=TINY
        )
        assert document["schema"] == REPORT_SCHEMA
        on_disk = json.loads((tmp_path / "report.json").read_text())
        assert on_disk["schema"] == REPORT_SCHEMA
        assert on_disk["manifest"]["schema"] == "MANIFEST_v1"
        assert on_disk["manifest"]["figures"] == ["3"]
        assert "elapsed_by_figure_s" in on_disk["manifest"]["volatile"]
        markdown = (tmp_path / "report.md").read_text()
        assert "MANIFEST_v1" in markdown  # provenance footer
        assert "figure3" in markdown

    def test_stripped_document_deterministic_across_jobs(self, tmp_path):
        first = run_report(figures=("3",), jobs=1, out_dir=tmp_path / "a", preset=TINY)
        second = run_report(figures=("3",), jobs=2, out_dir=tmp_path / "b", preset=TINY)
        assert json.dumps(strip_volatile(first), sort_keys=True) == json.dumps(
            strip_volatile(second), sort_keys=True
        )

    def test_echo_reports_progress(self, tmp_path):
        lines = []
        run_report(figures=("3",), jobs=2, out_dir=tmp_path, preset=TINY, echo=lines.append)
        assert any("figure3" in line for line in lines)
