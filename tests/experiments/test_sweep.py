"""Tests for the parameter-sweep utility and its CLI command."""

import pytest

from repro.cli import main
from repro.experiments.sweep import rows_to_csv, rows_to_table, sweep
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="session")
def base_config(stable_config):
    """Sweep-scale configs via the shared ``stable_config`` factory."""

    def build(**overrides):
        defaults = dict(overlay="chord", n=32, bits=16, queries=600, seed=4)
        defaults.update(overrides)
        return stable_config(**defaults)

    return build


class TestSweep:
    def test_sweeps_requested_values(self, base_config):
        rows = sweep(base_config(), "k", [2, 8])
        assert [row.value for row in rows] == [2, 8]
        assert all(row.parameter == "k" for row in rows)
        # More pointers help the optimal scheme at least as much.
        assert rows[1].optimal_mean_hops <= rows[0].optimal_mean_hops

    def test_alpha_sweep_monotone(self, base_config):
        rows = sweep(base_config(), "alpha", [0.8, 1.6])
        assert rows[1].improvement_pct > rows[0].improvement_pct

    def test_unknown_parameter_rejected(self, base_config):
        with pytest.raises(ConfigurationError):
            sweep(base_config(), "warp_factor", [1])

    def test_empty_values_rejected(self, base_config):
        with pytest.raises(ConfigurationError):
            sweep(base_config(), "k", [])


class TestRendering:
    @pytest.fixture(scope="class")
    def rows(self, base_config):
        return sweep(base_config(), "k", [2, 8])

    def test_csv_shape(self, rows):
        lines = rows_to_csv(rows).strip().splitlines()
        assert lines[0].startswith("parameter,value,improvement_pct")
        assert len(lines) == 3

    def test_table_contains_values(self, rows):
        table = rows_to_table(rows)
        assert "k" in table
        assert "2" in table and "8" in table

    def test_empty_table(self):
        assert rows_to_table([]) == "(empty sweep)"


class TestCli:
    def test_sweep_command_table(self, capsys):
        code = main(
            ["sweep", "chord", "k", "2", "6", "--n", "24", "--bits", "16", "--queries", "400"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement" in out

    def test_sweep_command_csv(self, capsys):
        code = main(
            [
                "sweep", "pastry", "alpha", "1.2",
                "--n", "24", "--bits", "16", "--queries", "400", "--csv",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.startswith("parameter,value")

    def test_sweep_command_json_carries_manifest(self, capsys, tmp_path):
        import json

        target = tmp_path / "sweep.json"
        code = main(
            [
                "sweep", "chord", "k", "2", "6",
                "--n", "24", "--bits", "16", "--queries", "400", "--json", str(target),
            ]
        )
        assert code == 0
        document = json.loads(target.read_text())
        assert document["schema"] == "SWEEP_v1"
        assert document["manifest"]["schema"] == "MANIFEST_v1"
        assert document["base"]["__type__"] == "ExperimentConfig"
        assert len(document["rows"]) == 2

    def test_figure_chart_flag(self, capsys):
        # Exercise the --chart path on the cheapest figure variant by
        # monkeypatching the preset via the quick path and a tiny seed run
        # would still be slow; instead render a chart directly.
        from repro.analysis.ascii_chart import render_chart
        from repro.experiments.figures import FigurePoint, FigureResult, FigureSeries
        from repro.sim.metrics import ComparisonResult, HopStatistics

        ours, base = HopStatistics(), HopStatistics()

        class A:
            hops, timeouts, succeeded, latency = 1, 0, True, 1

        class B:
            hops, timeouts, succeeded, latency = 2, 0, True, 2

        ours.record(A())
        base.record(B())
        result = FigureResult(
            "figure3",
            "t",
            "n",
            (FigureSeries("s", (FigurePoint(1, ComparisonResult("c", ours, base)),)),),
        )
        assert "figure3" in render_chart(result)
