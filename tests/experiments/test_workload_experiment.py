"""The workload-plane grid: ordering, gates, JSON canonicality, CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.workload import (
    SELECTIONS,
    WorkloadPreset,
    WorkloadRow,
    cache_rows_to_table,
    gate_messages,
    rows_to_json,
    rows_to_table,
    run_workloads,
)
from repro.obs.manifest import strip_volatile


def tiny_preset(seed: int = 3) -> WorkloadPreset:
    return WorkloadPreset(
        name="tiny",
        n=24,
        bits=14,
        queries=400,
        warmup=300,
        seed=seed,
        scenarios=("static-zipf", "hotspot-rotation:30"),
        overlays=("chord",),
        cache_n=16,
        cache_queries=300,
        cache_capacity=6,
    )


@pytest.fixture(scope="module")
def grid():
    return run_workloads(tiny_preset(), jobs=1)


class TestGrid:
    def test_rows_follow_plan_order(self, grid):
        rows, __ = grid
        assert [(r.scenario, r.selection) for r in rows] == [
            (scenario, selection)
            for scenario in ("static-zipf", "hotspot-rotation:30")
            for selection in SELECTIONS
        ]
        assert all(r.overlay == "chord" for r in rows)
        assert all(r.lookups == 400 for r in rows)

    def test_frequency_learning_beats_uniform_on_static_zipf(self, grid):
        rows, __ = grid
        indexed = {(r.scenario, r.selection): r.mean_hops for r in rows}
        assert indexed[("static-zipf", "frequency")] < indexed[("static-zipf", "uniform")]
        assert indexed[("static-zipf", "adaptive")] < indexed[("static-zipf", "uniform")]

    def test_cache_grid_reports_all_disciplines_plus_anchors(self, grid):
        __, cache_rows = grid
        strategies = {
            (row.scenario, row.strategy) for row in cache_rows
        }
        for scenario in ("static-zipf", "hotspot-rotation:30"):
            assert {s for sc, s in strategies if sc == scenario} == {
                "item-lru",
                "item-lfu",
                "item-prob",
                "pointer",
                "none",
            }

    def test_probabilistic_admission_hits_less_than_lru(self, grid):
        __, cache_rows = grid
        indexed = {(r.scenario, r.strategy): r for r in cache_rows}
        lru = indexed[("static-zipf", "item-lru")]
        prob = indexed[("static-zipf", "item-prob")]
        assert prob.cache_hit_rate < lru.cache_hit_rate

    def test_json_is_identical_across_job_counts(self):
        preset = tiny_preset(seed=5)
        documents = []
        for jobs in (1, 2):
            rows, cache_rows = run_workloads(preset, jobs=jobs)
            payload = strip_volatile(json.loads(rows_to_json(rows, cache_rows, preset)))
            documents.append(json.dumps(payload, sort_keys=True))
        assert documents[0] == documents[1]

    def test_json_schema_and_round_trip(self, grid):
        rows, cache_rows = grid
        payload = json.loads(rows_to_json(rows, cache_rows, tiny_preset(), wall_time_s=1.5))
        assert payload["schema"] == "WORKLOAD_v1"
        assert payload["manifest"]["schema"] == "MANIFEST_v1"
        assert payload["preset"]["scenarios"] == ["static-zipf", "hotspot-rotation:30"]
        assert len(payload["rows"]) == len(rows)
        assert len(payload["comparisons"]) == 2
        for entry in payload["comparisons"]:
            assert set(entry) == {
                "scenario",
                "overlay",
                "frequency_vs_uniform_pct",
                "adaptive_vs_uniform_pct",
            }


def _row(scenario, selection, mean_hops):
    return WorkloadRow(
        scenario=scenario,
        overlay="chord",
        selection=selection,
        mean_hops=mean_hops,
        failure_rate=0.0,
        lookups=100,
    )


class TestGates:
    def test_all_wins_pass(self):
        rows = [
            _row("static-zipf", "uniform", 2.0),
            _row("static-zipf", "frequency", 1.5),
            _row("static-zipf", "adaptive", 1.4),
        ]
        assert gate_messages(rows) == []

    def test_frequency_loss_on_static_zipf_fails(self):
        rows = [
            _row("static-zipf", "uniform", 2.0),
            _row("static-zipf", "frequency", 2.1),
            _row("static-zipf", "adaptive", 1.4),
        ]
        messages = gate_messages(rows)
        assert len(messages) == 1
        assert "frequency-aware selection loses" in messages[0]

    def test_frequency_loss_on_moving_scenario_is_tolerated(self):
        # Frozen tables may legitimately lose once the hot set moves;
        # only the *adaptive* win is required there.
        rows = [
            _row("hotspot-rotation:30", "uniform", 2.0),
            _row("hotspot-rotation:30", "frequency", 2.2),
            _row("hotspot-rotation:30", "adaptive", 1.8),
        ]
        assert gate_messages(rows) == []

    def test_adaptive_loss_fails_on_any_scenario(self):
        rows = [
            _row("drifting-zipf:30", "uniform", 2.0),
            _row("drifting-zipf:30", "frequency", 1.8),
            _row("drifting-zipf:30", "adaptive", 2.0),
        ]
        messages = gate_messages(rows)
        assert len(messages) == 1
        assert "adaptive selection loses" in messages[0]


class TestRendering:
    def test_table_carries_scenarios_and_reductions(self, grid):
        rows, __ = grid
        table = rows_to_table(rows)
        assert "static-zipf" in table
        assert "hotspot-rotation:30" in table
        assert "%" in table

    def test_cache_table_carries_strategies(self, grid):
        __, cache_rows = grid
        table = cache_rows_to_table(cache_rows)
        for strategy in ("item-lru", "item-lfu", "item-prob", "pointer", "none"):
            assert strategy in table


class TestCli:
    def test_parser_accepts_workload_command(self):
        args = build_parser().parse_args(
            ["workload", "--smoke", "--seed", "7", "--jobs", "2", "--json", "out.json"]
        )
        assert args.command == "workload"
        assert args.smoke
        assert args.seed == 7
        assert args.jobs == 2
        assert args.json == "out.json"

    def test_workload_flag_threaded_through_other_commands(self):
        parser = build_parser()
        for argv in (
            ["compare", "chord", "--workload", "drifting-zipf:30"],
            ["sweep", "chord", "k", "2", "--workload", "flash-crowd:2"],
            ["faults", "--smoke", "--workload", "diurnal:100"],
            ["figure", "3", "--workload", "hotspot-rotation:50"],
            ["metrics", "--workload", "static-zipf"],
        ):
            assert parser.parse_args(argv).workload == argv[-1]

    def test_compare_rejects_unknown_workload(self):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown workload"):
            main(["compare", "chord", "--n", "24", "--bits", "14", "--workload", "nope"])

    def test_compare_label_carries_workload(self, capsys):
        code = main(
            [
                "compare", "chord",
                "--n", "24", "--bits", "14", "--queries", "200", "--seed", "1",
                "--workload", "hotspot-rotation:50",
            ]
        )
        assert code == 0
        assert "workload=hotspot-rotation:50" in capsys.readouterr().out
