"""Fault injection across the extension comparators.

Every extension study accepts an optional ``faults`` schedule. The
contracts defended here:

* omitting it, passing ``None`` and passing an *inactive* schedule are
  all bit-identical (the legacy fault-free path is untouched);
* an active schedule still produces a deterministic, seed-reproducible
  report for every strategy;
* injected faults actually bite — hop counts move and the pointer scheme
  keeps functioning (the study stays meaningful under loss and crashes).
"""

import pytest

from repro.extensions.adaptive import compare_maintenance_strategies
from repro.extensions.item_cache import simulate_item_churn
from repro.extensions.replication import simulate_replication
from repro.faults import FaultSchedule

LOSSY = FaultSchedule(loss_rate=0.05, crash_burst_size=3, stale_rate=0.01)


def small_adaptive(**overrides):
    defaults = dict(
        n=24,
        bits=16,
        duration=100.0,
        epoch=12.5,
        queries_per_epoch=30,
        swap_interval=25.0,
        swap_count=4,
        seed=3,
    )
    defaults.update(overrides)
    return compare_maintenance_strategies(**defaults)


def small_replication(**overrides):
    defaults = dict(
        n=24, bits=16, queries=600, replicated_fraction=0.1, replication_level=2, seed=3
    )
    defaults.update(overrides)
    return simulate_replication(**defaults)


def small_item_churn(**overrides):
    defaults = dict(n=24, bits=16, queries=800, update_probability=0.1, seed=3)
    defaults.update(overrides)
    return simulate_item_churn(**defaults)


RUNNERS = {
    "adaptive": small_adaptive,
    "replication": small_replication,
    "item_cache": small_item_churn,
}


@pytest.mark.parametrize("runner", RUNNERS.values(), ids=RUNNERS.keys())
class TestLegacyBitCompatibility:
    def test_none_matches_omitted(self, runner):
        assert runner(faults=None) == runner()

    def test_inactive_schedule_matches_omitted(self, runner):
        assert runner(faults=FaultSchedule()) == runner()


@pytest.mark.parametrize("runner", RUNNERS.values(), ids=RUNNERS.keys())
class TestFaultyRuns:
    def test_deterministic_under_faults(self, runner):
        assert runner(faults=LOSSY) == runner(faults=LOSSY)

    def test_faults_change_the_numbers(self, runner):
        clean = runner()
        faulty = runner(faults=LOSSY)
        hops = lambda reports: [r.mean_hops for r in reports.values()]
        assert hops(faulty) != hops(clean)


class TestFaultSemantics:
    def test_adaptive_crashed_nodes_stop_recomputing(self):
        clean = small_adaptive()
        faulty = small_adaptive(faults=FaultSchedule(crash_burst_size=4))
        # The burst removes 4 nodes before the initial selection, so the
        # static strategy recomputes once per *surviving* node.
        assert clean["static"].recomputations == 24
        assert faulty["static"].recomputations == 20

    def test_replication_still_reports_every_strategy(self):
        reports = small_replication(faults=LOSSY)
        assert set(reports) == {"pointer", "replication", "none"}
        assert all(r.mean_hops > 0 for r in reports.values())
        assert reports["replication"].replicas > 0

    def test_item_cache_hits_unaffected_by_message_loss(self):
        # Loss slows down *routing*; the node-local cache decision stream
        # (same queries, same versions) is independent of the plane.
        clean = small_item_churn()
        faulty = small_item_churn(faults=FaultSchedule(loss_rate=0.08))
        assert faulty["item-cache"].cache_hit_rate == clean["item-cache"].cache_hit_rate
        assert faulty["item-cache"].stale_answer_rate == clean["item-cache"].stale_answer_rate
        # ...while the routed misses got more expensive.
        assert faulty["none"].mean_hops > clean["none"].mean_hops
