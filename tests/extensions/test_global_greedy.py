"""Tests for the globally-coordinated selection extension."""

import pytest

from repro.chord.ring import ChordRing
from repro.extensions.global_greedy import network_cost, select_global_greedy
from repro.util.ids import IdSpace


@pytest.fixture()
def ring():
    return ChordRing.build(24, space=IdSpace(14), seed=4)


def make_demands(ring, weight=5.0):
    ids = ring.alive_ids()
    demands = {}
    for index, source in enumerate(ids):
        destination = ids[(index + len(ids) // 2) % len(ids)]
        demands[source] = {destination: weight}
    return demands


class TestGlobalGreedy:
    def test_assignment_covers_all_sources(self, ring):
        demands = make_demands(ring)
        result = select_global_greedy(ring, demands, k=2)
        assert set(result.assignment) == set(demands)
        for pointers in result.assignment.values():
            assert len(pointers) <= 2

    def test_install_reduces_network_cost(self, ring):
        demands = make_demands(ring)
        before = network_cost(ring, demands)
        result = select_global_greedy(ring, demands, k=2)
        result.install(ring)
        after = network_cost(ring, demands)
        assert after < before

    def test_total_matches_network_cost_after_install(self, ring):
        demands = make_demands(ring)
        result = select_global_greedy(ring, demands, k=2)
        result.install(ring)
        assert network_cost(ring, demands) == pytest.approx(result.total_cost)

    def test_k_zero_changes_nothing(self, ring):
        demands = make_demands(ring)
        result = select_global_greedy(ring, demands, k=0)
        assert all(not pointers for pointers in result.assignment.values())

    def test_network_cost_accounts_installed_auxiliaries(self, ring):
        demands = make_demands(ring)
        source = next(iter(demands))
        destination = next(iter(demands[source]))
        before = network_cost(ring, demands)
        ring.node(source).set_auxiliary({destination})
        after = network_cost(ring, demands)
        assert after <= before
