"""Tests for the globally-coordinated selection extension."""

import pytest

from repro.chord.ring import ChordRing
from repro.extensions.global_greedy import network_cost, select_global_greedy
from repro.util.ids import IdSpace


@pytest.fixture()
def ring():
    return ChordRing.build(24, space=IdSpace(14), seed=4)


def make_demands(ring, weight=5.0):
    ids = ring.alive_ids()
    demands = {}
    for index, source in enumerate(ids):
        destination = ids[(index + len(ids) // 2) % len(ids)]
        demands[source] = {destination: weight}
    return demands


class TestGlobalGreedy:
    def test_assignment_covers_all_sources(self, ring):
        demands = make_demands(ring)
        result = select_global_greedy(ring, demands, k=2)
        assert set(result.assignment) == set(demands)
        for pointers in result.assignment.values():
            assert len(pointers) <= 2

    def test_install_reduces_network_cost(self, ring):
        demands = make_demands(ring)
        before = network_cost(ring, demands)
        result = select_global_greedy(ring, demands, k=2)
        result.install(ring)
        after = network_cost(ring, demands)
        assert after < before

    def test_total_matches_network_cost_after_install(self, ring):
        demands = make_demands(ring)
        result = select_global_greedy(ring, demands, k=2)
        result.install(ring)
        assert network_cost(ring, demands) == pytest.approx(result.total_cost)

    def test_k_zero_changes_nothing(self, ring):
        demands = make_demands(ring)
        result = select_global_greedy(ring, demands, k=0)
        assert all(not pointers for pointers in result.assignment.values())

    def test_network_cost_accounts_installed_auxiliaries(self, ring):
        demands = make_demands(ring)
        source = next(iter(demands))
        destination = next(iter(demands[source]))
        before = network_cost(ring, demands)
        ring.node(source).set_auxiliary({destination})
        after = network_cost(ring, demands)
        assert after <= before


class TestTournament:
    """The docstring's claim, now true: pointers are granted one at a time
    by global marginal gain, so heavy sources can out-bid light ones."""

    def test_total_k_allows_non_uniform_assignments(self, ring):
        ids = ring.alive_ids()
        # One source demands an order of magnitude more than the rest.
        demands = make_demands(ring, weight=1.0)
        hot = ids[0]
        demands[hot] = {
            peer: 100.0 for peer in ids[1 : 6] if peer != hot
        }
        result = select_global_greedy(ring, demands, k=4, total_k=len(ids))
        sizes = {source: len(pointers) for source, pointers in result.assignment.items()}
        assert sum(sizes.values()) <= len(ids)
        assert max(sizes.values()) > min(sizes.values())  # a real tournament
        assert sizes[hot] >= max(sizes.values()) - 1  # the heavy bidder wins
        assert all(size <= 4 for size in sizes.values())  # per-node cap holds

    def test_default_budget_matches_uniform_spend(self, ring):
        demands = make_demands(ring)
        result = select_global_greedy(ring, demands, k=2)
        assert sum(len(p) for p in result.assignment.values()) <= 2 * len(demands)

    def test_tournament_never_worse_than_its_own_smaller_budget(self, ring):
        demands = make_demands(ring, weight=3.0)
        small = select_global_greedy(ring, demands, k=3, total_k=10)
        large = select_global_greedy(ring, demands, k=3, total_k=20)
        assert large.total_cost <= small.total_cost + 1e-9

    def test_pastry_overlay_supported(self, small_universe):
        network = small_universe("pastry", n=20, bits=16, seed=6)
        ids = network.alive_ids()
        demands = {
            source: {ids[(index + 7) % len(ids)]: 4.0}
            for index, source in enumerate(ids)
        }
        result = select_global_greedy(network, demands, k=2, overlay="pastry")
        result.install(network)
        assert network_cost(network, demands, overlay="pastry") == pytest.approx(
            result.total_cost
        )
