"""Tests for drift-triggered vs periodic maintenance."""

import pytest

from repro.extensions.adaptive import compare_maintenance_strategies
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def reports():
    return compare_maintenance_strategies(
        n=32,
        bits=16,
        duration=250.0,
        epoch=12.5,
        queries_per_epoch=40,
        swap_interval=25.0,
        swap_count=6,
        seed=3,
    )


class TestCompareStrategies:
    def test_all_strategies_reported(self, reports):
        assert set(reports) == {"periodic", "adaptive", "static"}

    def test_refreshing_beats_static(self, reports):
        assert reports["periodic"].mean_hops <= reports["static"].mean_hops
        assert reports["adaptive"].mean_hops <= reports["static"].mean_hops + 0.05

    def test_adaptive_spends_fewer_recomputations(self, reports):
        assert reports["adaptive"].recomputations < reports["periodic"].recomputations

    def test_static_only_initial_recomputations(self, reports):
        assert reports["static"].recomputations == 32  # one per node

    def test_query_counts_identical(self, reports):
        counts = {report.queries for report in reports.values()}
        assert len(counts) == 1

    def test_summary_text(self, reports):
        assert "recomputations" in reports["adaptive"].summary()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compare_maintenance_strategies(n=8, bits=12, duration=5.0, epoch=10.0)
