"""Tests for drift-triggered vs periodic maintenance."""

import pytest

from repro.extensions.adaptive import compare_maintenance_strategies
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def reports():
    return compare_maintenance_strategies(
        n=32,
        bits=16,
        duration=250.0,
        epoch=12.5,
        queries_per_epoch=40,
        swap_interval=25.0,
        swap_count=6,
        seed=3,
    )


class TestCompareStrategies:
    def test_all_strategies_reported(self, reports):
        assert set(reports) == {"periodic", "adaptive", "static"}

    def test_refreshing_beats_static(self, reports):
        assert reports["periodic"].mean_hops <= reports["static"].mean_hops
        assert reports["adaptive"].mean_hops <= reports["static"].mean_hops + 0.05

    def test_adaptive_spends_fewer_recomputations(self, reports):
        assert reports["adaptive"].recomputations < reports["periodic"].recomputations

    def test_static_only_initial_recomputations(self, reports):
        assert reports["static"].recomputations == 32  # one per node

    def test_query_counts_identical(self, reports):
        counts = {report.queries for report in reports.values()}
        assert len(counts) == 1

    def test_summary_text(self, reports):
        assert "recomputations" in reports["adaptive"].summary()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compare_maintenance_strategies(n=8, bits=12, duration=5.0, epoch=10.0)


class TestPenaltyAccounting:
    """``mean_hops`` is a message count; retry backoff penalty — a latency
    proxy — must not leak into it (it used to, via ``result.latency``)."""

    def test_no_faults_means_no_penalty(self, reports):
        for report in reports.values():
            assert report.mean_penalty == 0.0
            assert "penalty" not in report.summary()

    def test_armed_schedule_splits_penalty_from_hops(self):
        from repro.faults import FaultSchedule

        clean = compare_maintenance_strategies(
            n=24, bits=16, duration=100.0, epoch=12.5, queries_per_epoch=30, seed=7
        )
        faulted = compare_maintenance_strategies(
            n=24,
            bits=16,
            duration=100.0,
            epoch=12.5,
            queries_per_epoch=30,
            seed=7,
            faults=FaultSchedule(loss_rate=0.25),
        )
        assert any(report.mean_penalty > 0.0 for report in faulted.values())
        for strategy, report in faulted.items():
            # Hops may rise (timed-out probes count as transfers), but the
            # backoff penalty stays out of the hop metric: the combined
            # latency always exceeds the hop count whenever penalty > 0.
            assert report.mean_penalty >= 0.0
            if report.mean_penalty:
                assert "penalty" in report.summary()
            # Sanity: the clean run of the same seed is penalty-free.
            assert clean[strategy].mean_penalty == 0.0

    def test_report_defaults_keep_positional_compat(self):
        from repro.extensions.adaptive import MaintenanceReport

        legacy = MaintenanceReport("static", 2.5, 10, 100)
        assert legacy.mean_penalty == 0.0
        assert "penalty" not in legacy.summary()
