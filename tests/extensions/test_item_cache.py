"""Tests for the item-caching comparator."""

import pytest

from repro.extensions.item_cache import ItemCache, simulate_item_churn
from repro.util.errors import ConfigurationError


class TestItemCache:
    def test_miss_then_hit(self):
        cache = ItemCache(capacity=2)
        assert not cache.lookup(1, current_version=0)
        cache.store(1, version=0)
        assert cache.lookup(1, current_version=0)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.stale_rate == 0.0

    def test_stale_hit_detected(self):
        cache = ItemCache(capacity=2)
        cache.store(1, version=0)
        assert cache.lookup(1, current_version=3)
        assert cache.stale_hits == 1
        assert cache.stale_rate == 1.0

    def test_lru_eviction(self):
        cache = ItemCache(capacity=2)
        cache.store(1, 0)
        cache.store(2, 0)
        cache.lookup(1, 0)  # touch 1 so 2 becomes LRU
        cache.store(3, 0)
        assert len(cache) == 2
        assert not cache.lookup(2, 0)
        assert cache.lookup(1, 0)

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            ItemCache(capacity=0)


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown cache policy"):
            ItemCache(capacity=2, policy="mru")

    def test_lfu_evicts_least_frequently_hit(self):
        cache = ItemCache(capacity=2, policy="lfu")
        cache.store(1, 0)
        cache.store(2, 0)
        cache.lookup(1, 0)
        cache.lookup(1, 0)
        cache.lookup(2, 0)  # item 2 has fewer hits than item 1
        cache.store(3, 0)
        assert cache.lookup(1, 0)
        assert not cache.lookup(2, 0)

    def test_lfu_breaks_ties_by_recency(self):
        cache = ItemCache(capacity=2, policy="lfu")
        cache.store(1, 0)
        cache.store(2, 0)
        # Both at zero hits: the least-recently-stored entry goes first.
        cache.store(3, 0)
        assert not cache.lookup(1, 0)
        assert cache.lookup(2, 0)

    def test_probabilistic_admission_filters_new_items(self):
        import random

        cache = ItemCache(capacity=8, admission_probability=0.5, rng=random.Random(0))
        for item in range(200):
            cache.store(item, 0)
        admitted = sum(1 for item in range(200) if cache.lookup(item, 0))
        assert 0 < admitted < 200  # some rejected, some let through

    def test_admission_never_blocks_version_refresh(self):
        # The admission coin is flipped for *insertions* only; version
        # refreshes of resident items must always land (ProbCache-style).
        class ScriptedRng:
            def __init__(self, values):
                self.values = list(values)

            def random(self):
                return self.values.pop(0)

        rng = ScriptedRng([0.1])  # one draw: admit the initial store
        cache = ItemCache(capacity=2, admission_probability=0.5, rng=rng)
        cache.store(1, version=0)
        cache.store(1, version=5)  # refresh: no coin flip
        assert rng.values == []  # the refresh consumed no randomness
        assert cache.lookup(1, current_version=5)
        assert cache.stale_hits == 0

    def test_admission_probability_validated(self):
        import random

        with pytest.raises(ConfigurationError):
            ItemCache(capacity=2, admission_probability=0.0, rng=random.Random(0))
        with pytest.raises(ConfigurationError):
            ItemCache(capacity=2, admission_probability=1.5, rng=random.Random(0))
        with pytest.raises(ConfigurationError, match="rng"):
            ItemCache(capacity=2, admission_probability=0.5)


class TestSimulation:
    @pytest.fixture(scope="class")
    def reports(self):
        return simulate_item_churn(
            n=32, bits=16, queries=1500, update_probability=0.2, seed=1
        )

    def test_all_strategies_reported(self, reports):
        assert set(reports) == {"pointer", "item-cache", "none"}

    def test_pointer_never_stale(self, reports):
        assert reports["pointer"].stale_answer_rate == 0.0
        assert reports["none"].stale_answer_rate == 0.0

    def test_item_cache_goes_stale_under_updates(self, reports):
        assert reports["item-cache"].stale_answer_rate > 0.0
        assert reports["item-cache"].cache_hit_rate > 0.0

    def test_pointer_beats_plain_chord(self, reports):
        assert reports["pointer"].mean_hops < reports["none"].mean_hops

    def test_item_cache_cuts_hops(self, reports):
        # Hits cost zero hops, so the average must drop versus plain Chord.
        assert reports["item-cache"].mean_hops < reports["none"].mean_hops

    def test_update_probability_validated(self):
        with pytest.raises(ConfigurationError):
            simulate_item_churn(n=8, bits=12, queries=10, update_probability=1.5)

    def test_summary_text(self, reports):
        assert "stale answers" in reports["item-cache"].summary()
