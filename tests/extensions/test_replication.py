"""Tests for the Beehive-style replication comparator."""

import pytest

from repro.chord.ring import ChordRing
from repro.extensions.replication import ReplicaDirectory, simulate_replication
from repro.util.ids import IdSpace


class TestReplicaDirectory:
    @pytest.fixture()
    def ring(self):
        return ChordRing.build(16, space=IdSpace(14), seed=2)

    def test_level_zero_is_home_only(self, ring):
        directory = ReplicaDirectory(ring)
        item = 12345
        holders = directory.replicate(item, level=0)
        assert holders == {ring.responsible(item)}
        assert directory.update_cost(item) == 0

    def test_level_doubles_holders(self, ring):
        directory = ReplicaDirectory(ring)
        item = 999
        assert len(directory.replicate(item, level=1)) == 2
        assert len(directory.replicate(item, level=2)) == 4
        assert directory.update_cost(item) == 3

    def test_holders_are_predecessors(self, ring):
        directory = ReplicaDirectory(ring)
        item = 31
        holders = directory.replicate(item, level=2)
        home = ring.responsible(item)
        assert home in holders
        alive = ring.alive_ids()
        index = alive.index(home)
        expected = {alive[(index - offset) % len(alive)] for offset in range(4)}
        assert holders == expected

    def test_unreplicated_item_held_by_home(self, ring):
        directory = ReplicaDirectory(ring)
        assert directory.holders(7) == {ring.responsible(7)}

    def test_replica_count(self, ring):
        directory = ReplicaDirectory(ring)
        directory.replicate(1, level=2)
        directory.replicate(2, level=1)
        assert directory.replica_count() == 3 + 1


class TestSimulation:
    @pytest.fixture(scope="class")
    def reports(self):
        return simulate_replication(
            n=32, bits=16, queries=1200, replicated_fraction=0.1, replication_level=3, seed=3
        )

    def test_all_strategies_reported(self, reports):
        assert set(reports) == {"pointer", "replication", "none"}

    def test_both_schemes_beat_plain_chord(self, reports):
        assert reports["pointer"].mean_hops < reports["none"].mean_hops
        assert reports["replication"].mean_hops < reports["none"].mean_hops

    def test_replication_pays_update_traffic(self, reports):
        assert reports["replication"].update_messages_per_update > 0.0
        assert reports["replication"].replicas > 0
        # Pointer caching needs no replica refreshes at all.
        assert reports["pointer"].update_messages_per_update == 0.0
        assert reports["pointer"].replicas == 0

    def test_summary_text(self, reports):
        assert "msgs/update" in reports["replication"].summary()
