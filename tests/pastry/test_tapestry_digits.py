"""Pastry with multi-bit digits (Tapestry/PGrid generalization).

Section I: "the techniques presented for Pastry can be directly applied to
Tapestry and PGrid". Tapestry routes on base-16 digits; our Pastry
substrate takes ``digit_bits`` as a parameter, so the same selection and
routing machinery runs at any radix. These tests pin that generality.
"""

import random

import pytest

from repro.pastry.network import PastryNetwork, oblivious_policy, optimal_policy
from repro.util.ids import IdSpace


@pytest.fixture(scope="module", params=[2, 4])
def network(request):
    return PastryNetwork.build(64, space=IdSpace(16), seed=21, digit_bits=request.param)


class TestMultiDigitRouting:
    def test_lookups_correct(self, network):
        ids = network.alive_ids()
        for key in range(0, 2**16, 1371):
            result = network.lookup(ids[0], key, record_access=False)
            assert result.succeeded
            assert result.destination == network.responsible(key)

    def test_hop_bound_scales_with_radix(self, network):
        """Routing fixes one digit per hop, so base-16 routing needs at
        most bits/4 digit hops (plus leaf-set delivery slack)."""
        ids = network.alive_ids()
        rows = network.space.num_digits(network.digit_bits)
        for source in ids[:6]:
            for key in range(0, 2**16, 4093):
                result = network.lookup(source, key, record_access=False)
                assert result.hops <= rows + 2

    def test_cells_respect_digit_structure(self, network):
        node = network.node(network.alive_ids()[0])
        for (row, digit), entries in node.cells.items():
            for entry in entries:
                assert node.cell_key(entry) == (row, digit)
                shared_bits = network.space.common_prefix_length(node.node_id, entry)
                assert shared_bits // network.digit_bits == row

    def test_selection_still_beats_baseline(self, network):
        rng = random.Random(5)
        source = network.alive_ids()[0]
        frequencies = {peer: float(rng.randint(1, 50)) for peer in network.alive_ids()[1:40]}
        network.seed_frequencies(source, frequencies)
        optimal = network.recompute_auxiliary(source, k=4, policy=optimal_policy, rng=random.Random(1))
        baseline = network.recompute_auxiliary(source, k=4, policy=oblivious_policy, rng=random.Random(1))
        assert optimal.cost <= baseline.cost
