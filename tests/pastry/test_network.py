"""Unit tests for the Pastry network: membership, tables, responsibility."""

import random

import pytest

from repro.pastry.network import PastryNetwork, oblivious_policy, optimal_policy
from repro.pastry.routing import circular_distance
from repro.util.errors import ConfigurationError, NodeAbsentError
from repro.util.ids import IdSpace


class TestBuild:
    def test_build_places_nodes(self):
        network = PastryNetwork.build(32, space=IdSpace(16), seed=0)
        assert network.alive_count() == 32

    def test_build_rejects_overfull_space(self):
        with pytest.raises(ConfigurationError):
            PastryNetwork.build(20, space=IdSpace(4))

    def test_duplicate_rejected(self):
        network = PastryNetwork(IdSpace(8))
        network.add_node(3)
        with pytest.raises(ConfigurationError):
            network.add_node(3)


class TestResponsibility:
    def test_numerically_closest(self):
        network = PastryNetwork(IdSpace(8))
        for node_id in [10, 100, 200]:
            network.add_node(node_id)
        assert network.responsible(10) == 10
        assert network.responsible(40) == 10
        assert network.responsible(60) == 100
        assert network.responsible(160) == 200
        assert network.responsible(250) == 10  # wraps: 250->10 is distance 16

    def test_tie_breaks_to_lower_id(self):
        network = PastryNetwork(IdSpace(8))
        network.add_node(10)
        network.add_node(20)
        assert network.responsible(15) == 10


class TestTables:
    def test_core_entries_fill_prefix_cells(self):
        network = PastryNetwork.build(64, space=IdSpace(16), seed=1)
        node = network.node(network.alive_ids()[0])
        for entry in node.core:
            row, digit = node.cell_key(entry)
            assert entry in node.cells[(row, digit)]
            assert network.space.digit_at(node.node_id, row, 1) != digit

    def test_leaf_set_is_numerically_nearest(self):
        network = PastryNetwork.build(64, space=IdSpace(16), seed=2)
        ids = network.alive_ids()
        node = network.node(ids[10])
        others = [i for i in ids if i != node.node_id]
        nearest = sorted(others, key=lambda c: circular_distance(network.space, node.node_id, c))
        expected_max = max(
            circular_distance(network.space, node.node_id, c) for c in nearest[: len(node.leaves)]
        )
        actual_max = max(circular_distance(network.space, node.node_id, c) for c in node.leaves)
        assert len(node.leaves) == 2 * network.leaf_radius
        assert actual_max <= expected_max * 2  # both sides balanced, so close

    def test_leaf_set_small_network(self):
        network = PastryNetwork(IdSpace(8), leaf_radius=8)
        for node_id in [1, 2, 3]:
            network.add_node(node_id)
        network.stabilize_all()
        assert network.node(1).leaves == {2, 3}

    def test_locality_core_prefers_near_candidates(self):
        network = PastryNetwork.build(128, space=IdSpace(16), seed=3)
        node = network.node(network.alive_ids()[0])
        # Each chosen core entry must be the proximally closest of *some*
        # sample; sanity-check it is never absurdly far versus the cell's
        # true optimum (sampling keeps it within the candidate set).
        for entry in node.core:
            assert network.nodes[entry].alive


class TestChurn:
    def test_crash_rejoin_cycle(self):
        network = PastryNetwork.build(32, space=IdSpace(16), seed=4)
        victim = network.alive_ids()[5]
        network.crash(victim)
        assert victim not in network.alive_ids()
        with pytest.raises(NodeAbsentError):
            network.crash(victim)
        network.rejoin(victim)
        assert victim in network.alive_ids()
        with pytest.raises(NodeAbsentError):
            network.rejoin(victim)

    def test_stabilize_drops_dead_aux(self):
        network = PastryNetwork.build(32, space=IdSpace(16), seed=5)
        ids = network.alive_ids()
        holder, target = ids[0], ids[9]
        network.node(holder).set_auxiliary({target})
        network.crash(target)
        network.stabilize(holder)
        assert target not in network.node(holder).auxiliary


class TestAuxiliaryPolicies:
    def test_optimal_policy_installs_hot_peer(self):
        network = PastryNetwork.build(32, space=IdSpace(16), seed=6)
        ids = network.alive_ids()
        source = ids[0]
        node = network.node(source)
        hot = next(
            peer
            for peer in sorted(ids[1:], key=lambda i: -network.space.pastry_distance(source, i))
            if peer not in node.core | node.leaves
        )
        network.seed_frequencies(source, {hot: 100.0})
        result = network.recompute_auxiliary(source, k=1, policy=optimal_policy, rng=random.Random(0))
        assert result.auxiliary == {hot}
        assert node.auxiliary == {hot}

    def test_oblivious_policy_spends_budget(self):
        network = PastryNetwork.build(64, space=IdSpace(16), seed=7)
        source = network.alive_ids()[0]
        frequencies = {peer: 1.0 for peer in network.alive_ids()[1:40]}
        network.seed_frequencies(source, frequencies)
        result = network.recompute_auxiliary(
            source, k=6, policy=oblivious_policy, rng=random.Random(0)
        )
        assert len(result.auxiliary) == 6

    def test_optimal_beats_oblivious_cost(self):
        network = PastryNetwork.build(64, space=IdSpace(16), seed=8)
        source = network.alive_ids()[0]
        rng = random.Random(1)
        frequencies = {peer: float(rng.randint(1, 50)) for peer in network.alive_ids()[1:40]}
        network.seed_frequencies(source, frequencies)
        optimal = network.recompute_auxiliary(source, k=4, policy=optimal_policy, rng=random.Random(2))
        oblivious = network.recompute_auxiliary(source, k=4, policy=oblivious_policy, rng=random.Random(2))
        assert optimal.cost <= oblivious.cost
