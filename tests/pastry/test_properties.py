"""Pastry-specific property tests.

The cross-overlay behavioural contract — termination at the linear-scan
responsible node, strict per-hop progress, hop bounds, crash/rejoin
idempotence — lives in ``tests/conformance/test_overlay_battery.py``;
only what is Pastry-specific remains here: the greedy routing *mode*
(the battery exercises the default proximity mode) holds the contract on
randomly sized networks.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pastry.network import PastryNetwork
from repro.util.ids import IdSpace


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10_000), st.integers(4, 48))
def test_greedy_mode_lookup_correct_and_bounded(seed, n):
    """Greedy (non-default) mode reaches the numerically closest node
    within the id-length hop bound, with no timeouts, at any size."""
    network = PastryNetwork.build(n, space=IdSpace(14), seed=seed)
    rng = random.Random(seed)
    ids = network.alive_ids()
    for __ in range(12):
        source = ids[rng.randrange(len(ids))]
        key = rng.randrange(2**14)
        result = network.lookup(source, key, mode="greedy", record_access=False)
        assert result.succeeded
        assert result.destination == network.responsible(key)
        assert result.timeouts == 0
        assert result.hops <= 14
