"""Property tests for Pastry routing over random stable networks."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pastry.network import PastryNetwork
from repro.pastry.routing import circular_distance
from repro.util.ids import IdSpace


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10_000), st.integers(4, 48), st.sampled_from(["greedy", "proximity"]))
def test_stable_lookup_correct_and_bounded(seed, n, mode):
    """On any stabilized network, every lookup reaches the numerically
    closest node within the id-length hop bound, with no timeouts."""
    network = PastryNetwork.build(n, space=IdSpace(14), seed=seed)
    rng = random.Random(seed)
    ids = network.alive_ids()
    for __ in range(12):
        source = ids[rng.randrange(len(ids))]
        key = rng.randrange(2**14)
        result = network.lookup(source, key, mode=mode, record_access=False)
        assert result.succeeded
        assert result.destination == network.responsible(key)
        assert result.timeouts == 0
        assert result.hops <= 14


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_responsible_is_global_argmin(seed):
    """responsible(key) minimizes circular distance over all live nodes."""
    network = PastryNetwork.build(20, space=IdSpace(12), seed=seed)
    rng = random.Random(seed)
    for __ in range(20):
        key = rng.randrange(2**12)
        owner = network.responsible(key)
        best = min(
            network.alive_ids(),
            key=lambda c: (circular_distance(network.space, c, key), c),
        )
        assert owner == best


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_rejoin_restores_full_correctness(seed):
    """Crash half the network, stabilize, rejoin, stabilize: every lookup
    is correct again with zero timeouts (full self-healing)."""
    network = PastryNetwork.build(24, space=IdSpace(14), seed=seed)
    ids = network.alive_ids()
    for victim in ids[::2]:
        network.crash(victim)
    network.stabilize_all()
    for victim in ids[::2]:
        network.rejoin(victim)
    network.stabilize_all()
    rng = random.Random(seed)
    for __ in range(10):
        source = ids[rng.randrange(len(ids))]
        key = rng.randrange(2**14)
        result = network.lookup(source, key, record_access=False)
        assert result.succeeded
        assert result.timeouts == 0
