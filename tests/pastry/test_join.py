"""Tests for the protocol-faithful Pastry join (route-to-self table build)."""

import pytest

from repro.pastry.network import PastryNetwork
from repro.pastry.routing import circular_distance
from repro.util.errors import ConfigurationError, NodeAbsentError
from repro.util.ids import IdSpace


def fresh_id(network, seed=0):
    import random

    rng = random.Random(seed)
    while True:
        candidate = rng.randrange(network.space.size)
        if candidate not in network.nodes:
            return candidate


class TestJoinVia:
    def test_joined_node_routes_correctly(self):
        network = PastryNetwork.build(48, space=IdSpace(16), seed=1)
        newcomer = fresh_id(network, seed=2)
        network.join_via(newcomer, network.alive_ids()[0])
        for key in range(0, 2**16, 7919):
            result = network.lookup(newcomer, key, record_access=False)
            assert result.succeeded

    def test_leaf_set_seeded_from_numerical_neighborhood(self):
        network = PastryNetwork.build(48, space=IdSpace(16), seed=3)
        newcomer = fresh_id(network, seed=4)
        node = network.join_via(newcomer, network.alive_ids()[0])
        assert node.leaves
        # All donated leaves sit in the newcomer's numeric vicinity: within
        # twice the span of the true nearest |leaves| nodes.
        others = [i for i in network.alive_ids() if i != newcomer]
        nearest = sorted(others, key=lambda c: circular_distance(network.space, newcomer, c))
        true_span = circular_distance(network.space, newcomer, nearest[min(len(node.leaves), len(nearest)) - 1])
        for leaf in node.leaves:
            assert circular_distance(network.space, newcomer, leaf) <= max(2 * true_span, 4)

    def test_cells_filled_from_path(self):
        network = PastryNetwork.build(64, space=IdSpace(16), seed=5)
        newcomer = fresh_id(network, seed=6)
        node = network.join_via(newcomer, network.alive_ids()[0])
        # Every harvested entry is live and sits in its correct cell.
        for (row, digit), entries in node.cells.items():
            for entry in entries:
                assert node.cell_key(entry) == (row, digit)
        # The short-prefix rows (where candidates abound) must be populated.
        assert any(row == 0 for row, __ in node.cells)

    def test_others_learn_after_stabilization(self):
        network = PastryNetwork.build(32, space=IdSpace(16), seed=7)
        newcomer = fresh_id(network, seed=8)
        bootstrap = network.alive_ids()[0]
        network.join_via(newcomer, bootstrap)
        assert network.responsible(newcomer) == newcomer
        network.stabilize_all()
        late = network.lookup(bootstrap, newcomer, record_access=False)
        assert late.succeeded
        assert late.destination == newcomer

    def test_join_existing_rejected(self):
        network = PastryNetwork.build(8, space=IdSpace(16), seed=9)
        ids = network.alive_ids()
        with pytest.raises(ConfigurationError):
            network.join_via(ids[1], ids[0])

    def test_dead_bootstrap_rejected(self):
        network = PastryNetwork.build(8, space=IdSpace(16), seed=10)
        victim = network.alive_ids()[0]
        network.crash(victim)
        newcomer = fresh_id(network, seed=11)
        with pytest.raises(NodeAbsentError):
            network.join_via(newcomer, victim)

    def test_rejoin_after_crash_via_protocol(self):
        network = PastryNetwork.build(24, space=IdSpace(16), seed=12)
        victim = network.alive_ids()[3]
        bootstrap = network.alive_ids()[0]
        network.crash(victim)
        node = network.join_via(victim, bootstrap)
        assert node.alive
        assert node.leaves
