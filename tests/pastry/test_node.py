"""Unit tests for PastryNode cell bookkeeping."""

import pytest

from repro.pastry.node import PastryNode
from repro.util.ids import IdSpace


def make(node_id=0b00000000, digit_bits=1):
    return PastryNode(node_id, IdSpace(8), digit_bits=digit_bits)


class TestCellKeys:
    def test_cell_key_binary(self):
        node = make(0b00000000)
        # 0b10000000 differs at bit 0 -> row 0, digit 1.
        assert node.cell_key(0b10000000) == (0, 1)
        # 0b00010000 shares 3 bits -> row 3, digit 1.
        assert node.cell_key(0b00010000) == (3, 1)

    def test_cell_key_multibit_digits(self):
        node = make(0b00000000, digit_bits=2)
        # 0b01100000: lcp 1 bit -> row 0; digit 0 of other = 0b01.
        assert node.cell_key(0b01100000) == (0, 0b01)
        # 0b00110000: lcp 2 bits -> row 1; digit 1 of other = 0b11.
        assert node.cell_key(0b00110000) == (1, 0b11)

    def test_candidates_for_matches_cell(self):
        node = make(0b00000000)
        node.set_core({0b10000000, 0b00010000})
        # Key 0b10101010: first mismatch at bit 0, digit 1.
        assert node.candidates_for(0b10101010) == {0b10000000}
        # Key equal to own id: nothing to repair.
        assert node.candidates_for(0b00000000) == set()


class TestMembershipOverlap:
    def test_entry_in_two_roles_survives_single_removal(self):
        node = make()
        node.set_core({0b10000000})
        node.set_leaves({0b10000000, 0b00000001})
        # Dropping it from the core must keep it as a leaf candidate.
        node.set_core(set())
        assert 0b10000000 in node.candidates_for(0b10101010)
        assert 0b10000000 in node.leaves

    def test_aux_then_core_overlap(self):
        node = make()
        node.set_auxiliary({0b01000000})
        node.set_core({0b01000000})
        node.set_auxiliary(set())
        assert 0b01000000 in node.candidates_for(0b01111111)

    def test_replacing_aux_removes_old_cells(self):
        node = make()
        node.set_auxiliary({0b01000000})
        node.set_auxiliary({0b00100000})
        assert node.candidates_for(0b01111111) == set()
        assert node.candidates_for(0b00111111) == {0b00100000}

    def test_evict_clears_everywhere(self):
        node = make()
        node.set_core({0b10000000})
        node.set_leaves({0b10000000})
        node.set_auxiliary({0b10000000})
        node.evict(0b10000000)
        assert node.neighbor_ids() == set()
        assert node.candidates_for(0b11111111) == set()

    def test_self_never_stored(self):
        node = make(5)
        node.set_core({5})
        node.set_leaves({5})
        node.set_auxiliary({5})
        assert node.neighbor_ids() == set()


class TestLifecycle:
    def test_crash_wipes_state(self):
        node = make()
        node.set_core({0b10000000})
        node.record_access(7)
        node.crash()
        assert not node.alive
        assert node.neighbor_ids() == set()
        assert node.frequency_snapshot() == {}

    def test_snapshot_excludes_self(self):
        node = make(9)
        node.tracker.observe(9)
        node.tracker.observe(3)
        assert node.frequency_snapshot() == {3: 1.0}
