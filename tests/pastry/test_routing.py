"""Unit tests for Pastry routing in both next-hop modes."""

import pytest

from repro.pastry.network import PastryNetwork
from repro.pastry.proximity import ProximityModel
from repro.pastry.routing import circular_distance
from repro.util.errors import ConfigurationError, NodeAbsentError
from repro.util.ids import IdSpace


class TestCircularDistance:
    def test_short_way_around(self):
        space = IdSpace(8)
        assert circular_distance(space, 0, 10) == 10
        assert circular_distance(space, 10, 0) == 10
        assert circular_distance(space, 0, 200) == 56
        assert circular_distance(space, 5, 5) == 0


class TestProximityModel:
    def test_deterministic(self):
        a = ProximityModel(seed=3)
        b = ProximityModel(seed=3)
        assert a.latency(1, 2) == b.latency(1, 2)

    def test_metric_properties(self):
        model = ProximityModel(seed=0)
        assert model.latency(5, 5) == 0.0
        assert model.latency(1, 2) == model.latency(2, 1)
        assert model.latency(1, 2) >= 0.0

    def test_closest(self):
        model = ProximityModel(seed=1)
        candidates = [10, 20, 30]
        best = model.closest(1, candidates)
        assert best in candidates
        assert all(model.latency(1, best) <= model.latency(1, c) for c in candidates)


@pytest.fixture(scope="module", params=["greedy", "proximity"])
def mode(request):
    return request.param


class TestStableLookups:
    @pytest.fixture(scope="class")
    def network(self):
        return PastryNetwork.build(64, space=IdSpace(16), seed=9)

    def test_lookups_succeed_and_are_correct(self, network, mode):
        ids = network.alive_ids()
        for key in range(0, 2**16, 1371):
            result = network.lookup(ids[0], key, mode=mode)
            assert result.succeeded
            assert result.destination == network.responsible(key)
            assert result.timeouts == 0

    def test_hop_bound(self, network, mode):
        ids = network.alive_ids()
        for source in ids[:8]:
            for key in range(0, 2**16, 4093):
                result = network.lookup(source, key, mode=mode)
                assert result.hops <= network.space.bits

    def test_own_key_zero_hops(self, network, mode):
        source = network.alive_ids()[0]
        result = network.lookup(source, source, mode=mode)
        assert result.succeeded
        assert result.hops == 0

    def test_unknown_mode_rejected(self, network):
        with pytest.raises(ConfigurationError):
            network.lookup(network.alive_ids()[0], 5, mode="teleport")

    def test_lookup_from_dead_node_raises(self):
        network = PastryNetwork.build(8, space=IdSpace(12), seed=10)
        victim = network.alive_ids()[0]
        network.crash(victim)
        with pytest.raises(NodeAbsentError):
            network.lookup(victim, 5)

    def test_greedy_never_slower_on_average(self):
        """Greedy maximizes per-hop prefix progress, so its mean hop count
        is no worse than proximity routing's on the same instance."""
        network = PastryNetwork.build(64, space=IdSpace(16), seed=11)
        ids = network.alive_ids()
        keys = list(range(0, 2**16, 911))
        greedy = sum(network.lookup(ids[0], key, mode="greedy", record_access=False).hops for key in keys)
        proximity = sum(
            network.lookup(ids[0], key, mode="proximity", record_access=False).hops for key in keys
        )
        assert greedy <= proximity


class TestAuxiliaryShortcut:
    def test_direct_pointer_shortens_lookup(self, mode):
        network = PastryNetwork.build(64, space=IdSpace(16), seed=12)
        ids = network.alive_ids()
        source = ids[0]
        node = network.node(source)
        # The farthest (by prefix) non-neighbor peer.
        destination = next(
            peer
            for peer in sorted(ids[1:], key=lambda i: -network.space.pastry_distance(source, i))
            if peer not in node.neighbor_ids()
        )
        baseline = network.lookup(source, destination, mode=mode, record_access=False).hops
        node.set_auxiliary({destination})
        direct = network.lookup(source, destination, mode=mode, record_access=False).hops
        assert direct == 1
        assert direct <= baseline


class TestChurnLookups:
    def test_self_heals_after_crashes(self, mode):
        network = PastryNetwork.build(64, space=IdSpace(16), seed=13)
        ids = network.alive_ids()
        for victim in ids[::4]:
            network.crash(victim)
        survivors = network.alive_ids()
        outcomes = [
            network.lookup(survivors[i % len(survivors)], key, mode=mode)
            for i, key in enumerate(range(0, 2**16, 911))
        ]
        success_rate = sum(r.succeeded for r in outcomes) / len(outcomes)
        assert success_rate > 0.8
        network.stabilize_all()
        for key in range(0, 2**16, 911):
            result = network.lookup(survivors[0], key, mode=mode)
            assert result.succeeded
            assert result.timeouts == 0

    def test_record_access_feeds_tracker(self):
        network = PastryNetwork.build(16, space=IdSpace(12), seed=14)
        source = network.alive_ids()[0]
        key = (source + 1000) % 2**12
        destination = network.responsible(key)
        network.lookup(source, key)
        if destination != source:
            assert network.node(source).tracker.frequency(destination) == 1.0


class TestLeafCoverageRegressions:
    """Regressions for the sided [L_min, L_max] leaf-coverage test.

    Hypothesis found a routing livelock in tiny networks: with every other
    node on one side of the current node, a shorter-side arc heuristic
    declared far keys uncovered and the query ping-ponged between a cell
    hop and the numerically-closer fallback forever.
    """

    def test_four_node_ring_key_in_the_void(self):
        # Nodes 2391/3710/16038/16250 in a 14-bit space; key 9668 falls in
        # the huge empty region and belongs to 3710.
        network = PastryNetwork(IdSpace(14))
        for node_id in [2391, 3710, 16038, 16250]:
            network.add_node(node_id)
        network.stabilize_all()
        for mode in ("greedy", "proximity"):
            result = network.lookup(16250, 9668, mode=mode, record_access=False)
            assert result.succeeded
            assert result.destination == network.responsible(9668) == 3710
            assert result.hops <= 3

    def test_exactly_full_leafset_boundary(self):
        """n - 1 == 2 * leaf_radius: the node knows everyone but its leaf
        set looks 'full'; the sided arc must still wrap far enough."""
        network = PastryNetwork.build(17, space=IdSpace(14), seed=1)
        import random as _random

        rng = _random.Random(1)
        ids = network.alive_ids()
        for __ in range(40):
            source = ids[rng.randrange(len(ids))]
            key = rng.randrange(2**14)
            result = network.lookup(source, key, record_access=False)
            assert result.succeeded
            assert result.destination == network.responsible(key)

    def test_all_small_network_sizes_route_correctly(self):
        import random as _random

        for n in range(2, 20):
            network = PastryNetwork.build(n, space=IdSpace(14), seed=n)
            rng = _random.Random(n)
            ids = network.alive_ids()
            for __ in range(10):
                source = ids[rng.randrange(len(ids))]
                key = rng.randrange(2**14)
                result = network.lookup(source, key, record_access=False)
                assert result.succeeded, f"n={n} source={source} key={key}"
