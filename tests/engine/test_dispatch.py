"""Engine resolution: oracle dispatch, explicit demands, support gating."""

import pytest

from repro.engine.dispatch import (
    COLUMNAR_AUTO_THRESHOLD,
    COLUMNAR_MAX_BITS,
    columnar_support,
    resolve_engine,
)
from repro.faults import FaultSchedule
from repro.faults.retry import RetryPolicy
from repro.sim.runner import ChurnConfig, ExperimentConfig
from repro.util.errors import ConfigurationError


def config(**overrides):
    fields = dict(overlay="chord", n=1024, bits=32, queries=100, seed=0)
    fields.update(overrides)
    return ExperimentConfig(**fields)


class TestResolveEngine:
    def test_objects_always_resolves_to_objects(self):
        assert resolve_engine(config(engine="objects")) == "objects"
        assert resolve_engine(config(engine="objects"), telemetry_active=True) == "objects"

    def test_auto_dispatches_on_size(self):
        """The oracle-dispatch pattern: small cells stay on the
        transparent path, large supported cells go vectorized."""
        assert resolve_engine(config(n=COLUMNAR_AUTO_THRESHOLD - 1)) == "objects"
        assert resolve_engine(config(n=COLUMNAR_AUTO_THRESHOLD)) == "columnar"

    def test_auto_falls_back_when_unsupported(self):
        assert resolve_engine(config(faults=FaultSchedule(loss_rate=0.1))) == "objects"
        assert resolve_engine(config(retry=RetryPolicy.robust())) == "objects"
        assert resolve_engine(config(bits=COLUMNAR_MAX_BITS + 1, n=600)) == "objects"

    def test_auto_telemetry_forces_objects(self):
        assert resolve_engine(config(), telemetry_active=True) == "objects"

    def test_explicit_columnar_resolves_when_supported(self):
        assert resolve_engine(config(engine="columnar")) == "columnar"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"faults": FaultSchedule(loss_rate=0.1)},
            {"retry": RetryPolicy.robust()},
            {"bits": COLUMNAR_MAX_BITS + 1, "n": 600},
        ],
    )
    def test_explicit_columnar_raises_with_reason(self, overrides):
        cfg = config(engine="columnar", **overrides)
        with pytest.raises(ConfigurationError, match="unsupported"):
            resolve_engine(cfg)

    def test_explicit_columnar_refuses_telemetry(self):
        with pytest.raises(ConfigurationError, match="telemetry"):
            resolve_engine(config(engine="columnar"), telemetry_active=True)

    def test_unknown_engine_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError, match="engine"):
            config(engine="simd")

    def test_churn_config_rejects_columnar(self):
        with pytest.raises(ConfigurationError, match="stable-mode only"):
            ChurnConfig(
                overlay="chord", n=600, bits=32, seed=0,
                duration=60.0, warmup=10.0, engine="columnar",
            )


class TestColumnarSupport:
    def test_supported_cell_has_empty_reason(self):
        supported, reason = columnar_support(config())
        assert supported and reason == ""

    def test_reasons_name_the_blocking_rule(self):
        __, reason = columnar_support(config(faults=FaultSchedule(loss_rate=0.1)))
        assert "fault" in reason
        __, reason = columnar_support(config(retry=RetryPolicy.robust()))
        assert "retry" in reason
        __, reason = columnar_support(config(bits=COLUMNAR_MAX_BITS + 1, n=600))
        assert str(COLUMNAR_MAX_BITS) in reason
