"""Property tests: batched columnar routing == the object routers.

The object-graph overlays are the ground-truth oracle; every lane of a
batch must reproduce its lookup exactly — hop count, success flag,
destination, the full visited-id path, and the per-forward pointer-class
attribution — over random overlays with and without installed
auxiliaries.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.chord.ring import ChordRing
from repro.engine.columnar import snapshot_chord, snapshot_pastry
from repro.engine.router import batch_route_chord, batch_route_pastry
from repro.obs.recorder import LookupTracer
from repro.pastry.network import PastryNetwork

LOOKUPS = 25


def install_auxiliaries(overlay, rng, per_node=4):
    alive = overlay.alive_ids()
    for node_id in alive:
        aux = set(rng.sample(alive, min(per_node, len(alive))))
        overlay.node(node_id).set_auxiliary(aux - {node_id})


def object_traces(overlay, sources, keys, mode=None):
    tracer = LookupTracer()
    for source, key in zip(sources, keys):
        if mode is None:
            overlay.lookup(source, key, record_access=False, trace=tracer)
        else:
            overlay.lookup(source, key, mode=mode, record_access=False, trace=tracer)
    return tracer


def assert_lanes_match(result, tracer, overlay_name):
    for lane, trace in enumerate(tracer.traces):
        assert int(result.hops[lane]) == trace.hops
        assert bool(result.succeeded[lane]) == trace.succeeded
        expected = -1 if trace.destination is None else trace.destination
        assert int(result.destinations[lane]) == expected
        assert result.lane_path(lane) == trace.path
        assert result.lane_classes(lane, overlay_name) == [
            event.pointer_class for event in trace.events if event.delivered
        ]
    assert result.hops_by_class == {
        name: count
        for name, count in tracer.counters.hops_by_class.items()
        if count
    }


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10_000), st.integers(3, 48), st.booleans())
def test_chord_batch_matches_object_lookups(seed, n, with_aux):
    ring = ChordRing.build(n, seed=seed)
    rng = random.Random(seed ^ 0xC0FFEE)
    if with_aux:
        install_auxiliaries(ring, rng)
    alive = ring.alive_ids()
    sources = [rng.choice(alive) for __ in range(LOOKUPS)]
    keys = [rng.randrange(ring.space.size) for __ in range(LOOKUPS)]
    result = batch_route_chord(snapshot_chord(ring), sources, keys, record_paths=True)
    assert_lanes_match(result, object_traces(ring, sources, keys), "chord")


@settings(max_examples=12, deadline=None)
@given(
    st.integers(0, 10_000),
    st.integers(3, 48),
    st.booleans(),
    st.sampled_from(["proximity", "greedy"]),
)
def test_pastry_batch_matches_object_lookups(seed, n, with_aux, mode):
    network = PastryNetwork.build(n, seed=seed)
    rng = random.Random(seed ^ 0xBEEF)
    if with_aux:
        install_auxiliaries(network, rng)
    alive = network.alive_ids()
    sources = [rng.choice(alive) for __ in range(LOOKUPS)]
    keys = [rng.randrange(network.space.size) for __ in range(LOOKUPS)]
    # Exercise the exact-node leaf-delivery short-circuit too.
    keys[:5] = [rng.choice(alive) for __ in range(5)]
    result = batch_route_pastry(
        snapshot_pastry(network), sources, keys, mode=mode, record_paths=True
    )
    assert_lanes_match(result, object_traces(network, sources, keys, mode), "pastry")


def test_chord_dense_and_csr_fallback_agree():
    """Rings whose dense hop tables are disabled (here: forced off) must
    route identically through the CSR bisect path."""
    ring = ChordRing.build(64, seed=9)
    rng = random.Random(9)
    install_auxiliaries(ring, rng)
    alive = ring.alive_ids()
    sources = [rng.choice(alive) for __ in range(200)]
    keys = [rng.randrange(ring.space.size) for __ in range(200)]
    dense = snapshot_chord(ring)
    assert dense.hop_gaps is not None
    fallback = snapshot_chord(ring)
    fallback.hop_gaps = fallback.hop_pos = fallback.hop_class = None
    a = batch_route_chord(dense, sources, keys, record_paths=True)
    b = batch_route_chord(fallback, sources, keys, record_paths=True)
    assert np.array_equal(a.hops, b.hops)
    assert np.array_equal(a.destinations, b.destinations)
    assert np.array_equal(a.paths, b.paths)
    assert a.hops_by_class == b.hops_by_class
