"""Cross-engine identity at the experiment layer.

The acceptance bar for the columnar engine is not "close" but *equal*:
``run_stable`` must return bit-identical :class:`ComparisonResult`
objects under both engines, figure documents must be byte-identical
after stripping volatile manifest keys, and a columnar sweep must be
bit-identical across worker counts.
"""

import json
from dataclasses import replace

import pytest

pytest.importorskip("numpy")

from repro.experiments.figures import FigurePreset, result_to_json, run_figure
from repro.experiments.sweep import sweep
from repro.obs.manifest import strip_volatile
from repro.sim.runner import ExperimentConfig, run_stable


def tiny_preset(seed=11):
    return FigurePreset(
        name="tiny",
        bits=16,
        queries=200,
        pastry_sizes=(16, 24),
        pastry_k_base=16,
        chord_sizes=(16, 24),
        chord_k_base=16,
        churn_duration=60.0,
        churn_warmup=15.0,
        seed=seed,
    )


class TestRunStableCrossEngine:
    @pytest.mark.parametrize("overlay,n", [("chord", 96), ("pastry", 64)])
    def test_seeded_frequencies_identical(self, overlay, n):
        base = ExperimentConfig(overlay=overlay, n=n, bits=20, queries=800, seed=3)
        objects = run_stable(replace(base, engine="objects"))
        columnar = run_stable(replace(base, engine="columnar"))
        assert objects == columnar

    @pytest.mark.parametrize("overlay,n", [("chord", 64), ("pastry", 48)])
    def test_learned_frequencies_identical(self, overlay, n):
        base = ExperimentConfig(
            overlay=overlay,
            n=n,
            bits=20,
            queries=500,
            seed=5,
            learned_frequencies=True,
            warmup_queries=400,
        )
        objects = run_stable(replace(base, engine="objects"))
        columnar = run_stable(replace(base, engine="columnar"))
        assert objects == columnar

    def test_pastry_greedy_mode_identical(self):
        base = ExperimentConfig(
            overlay="pastry", n=48, bits=20, queries=400, seed=7, pastry_mode="greedy"
        )
        assert run_stable(replace(base, engine="objects")) == run_stable(
            replace(base, engine="columnar")
        )


class TestFigureCrossEngine:
    def test_figure_json_byte_identical_after_strip(self):
        """The ``--engine`` flag must be invisible in the stripped
        FIGURE_v1 document — same bytes, either engine."""
        preset = tiny_preset()
        documents = {}
        for engine in ("objects", "columnar"):
            result = run_figure("3", preset, jobs=1, engine=engine)
            payload = json.loads(result_to_json(result, preset, wall_time_s=1.0))
            documents[engine] = json.dumps(strip_volatile(payload), sort_keys=True)
        assert documents["objects"] == documents["columnar"]


class TestColumnarJobsDeterminism:
    def test_sweep_identical_across_job_counts(self):
        base = ExperimentConfig(
            overlay="chord", n=48, bits=16, queries=300, seed=7, engine="columnar"
        )
        values = [0.9, 1.2, 1.5]
        assert sweep(base, "alpha", values, jobs=1) == sweep(
            base, "alpha", values, jobs=4
        )
