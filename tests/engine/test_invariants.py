"""The engine invariants catch what they claim to catch.

Green-path coverage lives in the scenario engine (tests/verify); here
the checkers run against deliberately broken snapshots and routers —
the repo's monkeypatch-a-broken-solver idiom — to prove the oracles
actually fire.
"""

import random

import pytest

pytest.importorskip("numpy")

from repro.chord.ring import ChordRing
from repro.engine import columnar, router
from repro.pastry.network import PastryNetwork
from repro.verify.invariants import (
    REGISTRY,
    check_engine_coherence,
    check_engine_routing,
    invariants_for,
)


def lookup_stream(overlay, count=10, seed=0):
    rng = random.Random(seed)
    alive = overlay.alive_ids()
    sources = [rng.choice(alive) for __ in range(count)]
    keys = [rng.randrange(overlay.space.size) for __ in range(count)]
    return sources, keys


class TestGreenPath:
    def test_stabilized_overlays_are_coherent_and_clean(self):
        for kind, overlay in (
            ("chord", ChordRing.build(40, seed=6)),
            ("pastry", PastryNetwork.build(40, seed=6)),
        ):
            assert check_engine_coherence(kind, overlay) == []
            progress, termination = check_engine_routing(
                kind, overlay, *lookup_stream(overlay)
            )
            assert progress == [] and termination == []

    def test_registry_lists_engine_invariants_for_both_overlays(self):
        for overlay in ("chord", "pastry"):
            names = invariants_for("engine", overlay)
            assert names == [
                "engine.routing_progress",
                "engine.routing_termination",
                "engine.table_coherence",
            ]
        for name in invariants_for("engine", "chord"):
            assert REGISTRY[name].scope == "engine"


class TestCoherenceFires:
    def test_misclassified_pointer_is_caught(self, monkeypatch):
        real = columnar.snapshot_chord

        def corrupted(ring):
            snapshot = real(ring)
            snapshot.table_class[0] = 3  # "unknown": no stabilized entry is
            return snapshot

        monkeypatch.setattr(columnar, "snapshot_chord", corrupted)
        messages = check_engine_coherence("chord", ChordRing.build(24, seed=1))
        assert messages and "classed" in messages[0]

    def test_broken_dense_row_is_caught(self, monkeypatch):
        real = columnar.snapshot_chord

        def corrupted(ring):
            snapshot = real(ring)
            # Swap the first two gap-sorted slots of row 0: the CSR image
            # stays intact, only the dense re-layout lies.
            snapshot.hop_gaps[[0, 1]] = snapshot.hop_gaps[[1, 0]]
            return snapshot

        monkeypatch.setattr(columnar, "snapshot_chord", corrupted)
        messages = check_engine_coherence("chord", ChordRing.build(24, seed=1))
        assert messages and "dense" in messages[0]

    def test_wrong_pastry_leaf_row_is_caught(self, monkeypatch):
        real = columnar.snapshot_pastry

        def corrupted(network):
            snapshot = real(network)
            snapshot.leaf_mat[0, 0] = int(snapshot.ids[0])  # own id too early
            return snapshot

        monkeypatch.setattr(columnar, "snapshot_pastry", corrupted)
        messages = check_engine_coherence("pastry", PastryNetwork.build(24, seed=1))
        assert messages and "leaf" in messages[0]


class TestRoutingFires:
    def test_inflated_hop_count_is_caught(self, monkeypatch):
        real = router.batch_route_chord

        def inflated(*args, **kwargs):
            result = real(*args, **kwargs)
            result.hops[0] += 1
            return result

        monkeypatch.setattr(router, "batch_route_chord", inflated)
        overlay = ChordRing.build(24, seed=2)
        __, termination = check_engine_routing(
            "chord", overlay, *lookup_stream(overlay)
        )
        assert any("lane 0" in message for message in termination)

    def test_false_failure_is_caught_under_clean(self, monkeypatch):
        real = router.batch_route_pastry

        def failing(*args, **kwargs):
            result = real(*args, **kwargs)
            result.succeeded[0] = False
            result.destinations[0] = -1
            return result

        monkeypatch.setattr(router, "batch_route_pastry", failing)
        overlay = PastryNetwork.build(24, seed=2)
        __, termination = check_engine_routing(
            "pastry", overlay, *lookup_stream(overlay), clean=True
        )
        assert any("lane 0" in message for message in termination)
