"""Columnar snapshot construction: shape, fallbacks, and direct synthesis."""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.chord.ring import ChordRing
from repro.engine.columnar import (
    build_direct_chord,
    snapshot_chord,
    snapshot_pastry,
)
from repro.engine.router import batch_route_chord
from repro.pastry.network import PastryNetwork
from repro.util.ids import IdSpace


class TestChordSnapshot:
    def test_axes_and_dense_tables(self):
        ring = ChordRing.build(64, seed=2)
        snapshot = snapshot_chord(ring)
        assert snapshot.ids.tolist() == ring.alive_ids()
        offsets = snapshot.table_offsets
        assert offsets[0] == 0 and (np.diff(offsets) > 0).all()
        assert snapshot.hop_gaps is not None
        # Dense rows are gap-sorted with >= 1 pad column each.
        width = snapshot.hop_width
        assert width == int(np.diff(offsets).max()) + 1
        rows = snapshot.hop_gaps.reshape(snapshot.n, width)
        assert (np.diff(rows.astype(np.int64), axis=1) >= 0).all()

    def test_wide_spaces_fall_back_to_csr(self):
        """Spaces past the uint32/exact-float window keep hop tables off;
        routing goes through the CSR bisect path instead."""
        rng = random.Random(2)
        ring = ChordRing(IdSpace(62))
        for node_id in {rng.getrandbits(62) for __ in range(16)}:
            ring.add_node(node_id)
        ring.stabilize_all()
        snapshot = snapshot_chord(ring)
        assert snapshot.hop_gaps is None
        rng = random.Random(0)
        alive = ring.alive_ids()
        sources = [rng.choice(alive) for __ in range(30)]
        keys = [rng.randrange(ring.space.size) for __ in range(30)]
        result = batch_route_chord(snapshot, sources, keys)
        for lane, key in enumerate(keys):
            assert bool(result.succeeded[lane])
            assert int(result.destinations[lane]) == ring.responsible(key)

    def test_responsible_matches_ring_oracle(self):
        ring = ChordRing.build(48, seed=4)
        snapshot = snapshot_chord(ring)
        keys = np.asarray([0, 1, 2**31, ring.space.size - 1], dtype=np.int64)
        expected = [ring.responsible(int(key)) for key in keys]
        assert snapshot.responsible(keys).tolist() == expected


class TestPastrySnapshot:
    def test_axes_and_leaf_geometry(self):
        network = PastryNetwork.build(48, seed=3)
        snapshot = snapshot_pastry(network)
        assert snapshot.ids.tolist() == network.alive_ids()
        assert snapshot.row_ptr.shape == (snapshot.n, snapshot.bits + 1)
        # Leaf rows are padded with the owner's own id.
        for position, node_id in enumerate(network.alive_ids()):
            leaves = sorted(network.node(node_id).leaves)
            row = snapshot.leaf_mat[position].tolist()
            assert row[: len(leaves)] == leaves
            assert all(value == node_id for value in row[len(leaves):])

    def test_non_binary_digits_are_rejected(self):
        network = PastryNetwork.build(16, seed=3, digit_bits=2)
        with pytest.raises(ValueError, match="digit_bits"):
            snapshot_pastry(network)


class TestDirectSynthesis:
    def test_direct_ring_is_routable_and_bounded(self):
        """The memory-gate synthesizer builds a stabilized ring whose
        batched lookups all terminate at the snapshot's own responsible
        oracle within the O(log n) bound."""
        snapshot = build_direct_chord(2048, bits=32, seed=1)
        rng = random.Random(1)
        ids = snapshot.ids
        sources = np.asarray([int(ids[rng.randrange(ids.size)]) for __ in range(500)])
        keys = np.asarray([rng.randrange(1 << 32) for __ in range(500)])
        result = batch_route_chord(snapshot, sources, keys)
        assert bool(result.succeeded.all())
        assert np.array_equal(result.destinations, snapshot.responsible(keys))
        assert int(result.hops.max()) <= 2 * 32

    def test_bytes_per_node_counts_every_array(self):
        snapshot = build_direct_chord(1024, bits=32, seed=0)
        total = (
            snapshot.ids.nbytes
            + snapshot.table_offsets.nbytes
            + snapshot.table_ids.nbytes
            + snapshot.table_class.nbytes
            + snapshot.hop_gaps.nbytes
            + snapshot.hop_pos.nbytes
            + snapshot.hop_class.nbytes
        )
        assert snapshot.nbytes == total
        assert snapshot.bytes_per_node == pytest.approx(total / 1024)
