"""Engine bench sections: document shape and smoke-mode gates."""

import pytest

pytest.importorskip("numpy")

from repro.perf.engine import (
    ENGINE_MEMORY_THRESHOLD,
    ENGINE_SPEEDUP_THRESHOLD,
    engine_equivalence,
    engine_memory,
    engine_speedup,
)


class TestEngineMemory:
    def test_smoke_gate_passes_with_full_shape(self):
        section = engine_memory(smoke=True)
        assert section["n"] == 10_000
        assert section["threshold"] == ENGINE_MEMORY_THRESHOLD
        assert section["bytes_per_node"] > 0
        assert section["total_bytes"] >= section["bytes_per_node"] * section["n"] * 0.99
        assert section["passed"]


class TestEngineEquivalence:
    def test_smoke_cells_are_identical_across_engines(self):
        section = engine_equivalence(smoke=True)
        assert set(section["cells"]) == {"chord", "pastry"}
        for cell in section["cells"].values():
            assert cell["identical"]
            assert cell["objects_s"] > 0 and cell["columnar_s"] > 0
        assert section["identical"]


class TestEngineSpeedup:
    def test_smoke_batching_wins_with_full_shape(self):
        section = engine_speedup(smoke=True)
        assert set(section["overlays"]) == {"chord", "pastry"}
        for overlay in section["overlays"].values():
            assert overlay["lookups"] == 1024
            assert overlay["routing_speedup"] > 0
            assert overlay["snapshot_s"] > 0
        assert section["threshold"] < ENGINE_SPEEDUP_THRESHOLD  # smoke bar
        assert section["worst_routing_speedup"] == min(
            entry["routing_speedup"] for entry in section["overlays"].values()
        )
        assert section["passed"]
