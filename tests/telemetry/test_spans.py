"""Tests for the span profiler (deterministic counts, volatile wall time)."""

from repro.obs.manifest import strip_volatile
from repro.telemetry.spans import SpanProfiler


class TestSpanProfiler:
    def test_span_counts_entries_and_accumulates_time(self):
        spans = SpanProfiler()
        for __ in range(3):
            with spans.span("selection.recompute"):
                pass
        assert spans.counts == {"selection.recompute": 3}
        assert spans.wall_s["selection.recompute"] >= 0.0

    def test_span_records_time_even_when_body_raises(self):
        spans = SpanProfiler()
        try:
            with spans.span("phase"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert spans.counts["phase"] == 1
        assert "phase" in spans.wall_s

    def test_add_work_accumulates(self):
        spans = SpanProfiler()
        spans.add_work("pointer_updates", 3)
        spans.add_work("pointer_updates", 2.5)
        assert spans.work == {"pointer_updates": 5.5}

    def test_to_dict_quarantines_wall_time_as_volatile(self):
        spans = SpanProfiler()
        with spans.span("phase"):
            pass
        spans.add_work("w", 2)
        snapshot = spans.to_dict()
        assert snapshot["counts"] == {"phase": 1}
        assert snapshot["work"] == {"w": 2}
        assert "wall_s" in snapshot["volatile"]
        stripped = strip_volatile(snapshot)
        assert stripped == {"counts": {"phase": 1}, "work": {"w": 2}}

    def test_integral_work_serializes_as_int(self):
        spans = SpanProfiler()
        spans.add_work("w", 2.0)
        assert spans.to_dict()["work"]["w"] == 2
        assert isinstance(spans.to_dict()["work"]["w"], int)
