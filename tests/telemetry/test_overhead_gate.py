"""Tests for the disabled-telemetry overhead gate (cheap pieces plus the
leaky-registry mutation test; the full gated measurement runs via
``repro bench`` in CI).

The mutation test is the important one: it proves the gate would catch a
regression where the "disabled" path silently runs a live registry. We
monkeypatch the seam (:func:`repro.perf.telemetry.disabled_telemetry`)
to return an *enabled* runtime and assert the measured ratio blows past
the threshold — so a leak cannot slip through the bench unnoticed.
"""

import repro.perf.telemetry as perf_telemetry
from repro.perf.overhead import OVERHEAD_THRESHOLD, _build_workload
from repro.perf.telemetry import (
    TELEMETRY_THRESHOLD,
    _measure_overlay,
    _trial_ratio,
    disabled_telemetry,
)
from repro.telemetry.runtime import RoundTelemetry


class TestGatePieces:
    def test_threshold_matches_trace_gate(self):
        assert TELEMETRY_THRESHOLD == OVERHEAD_THRESHOLD

    def test_disabled_telemetry_is_inert(self):
        telemetry = disabled_telemetry()
        assert telemetry.enabled is False
        assert telemetry.recorder.enabled is False

    def test_trial_ratio_is_a_sane_positive_number(self):
        overlay, pairs = _build_workload("chord", 32, 40)
        ratio = _trial_ratio(overlay, pairs, chunk=5, rounds=2)
        assert 1 / 3 < ratio < 3

    def test_measure_overlay_reports_sorted_ratios_and_median(self):
        report = _measure_overlay("chord", n=48, lookups=100, trials=3, chunk=5, rounds=2)
        assert report["trials"] == 3
        assert len(report["ratios"]) == 3
        assert report["ratios"] == sorted(report["ratios"])
        assert report["min_ratio"] <= report["median_ratio"] <= report["max_ratio"]


class TestMutation:
    def test_leaky_disabled_path_is_caught_by_the_gate(self, monkeypatch):
        """If the disabled path secretly runs an enabled registry, the
        measured overhead must exceed the gate threshold."""
        monkeypatch.setattr(
            perf_telemetry,
            "disabled_telemetry",
            lambda: RoundTelemetry(rounds=1, enabled=True),
        )
        report = _measure_overlay("chord", n=64, lookups=150, trials=5, chunk=5, rounds=4)
        assert report["median_ratio"] >= TELEMETRY_THRESHOLD
