"""Determinism and observe-only pins for the telemetry driver.

These are the acceptance tests for the round clock: the stripped
METRICS_v1 document must be byte-identical at any worker count, and
attaching telemetry must never change what the simulation computes.
"""

import json

import pytest

from repro.obs.manifest import strip_volatile
from repro.sim.runner import ChurnConfig, ExperimentConfig, run_churn, run_stable
from repro.telemetry.driver import metrics_cell, metrics_document
from repro.telemetry.export import parse_openmetrics, to_openmetrics
from repro.telemetry.runtime import RoundTelemetry
from repro.util.errors import ConfigurationError


def small_stable(overlay, seed=3):
    return ExperimentConfig(overlay=overlay, n=64, bits=16, queries=400, seed=seed)


def small_churn(seed=4):
    return ChurnConfig(
        overlay="chord", n=48, bits=18, seed=seed, duration=300.0, warmup=75.0
    )


def stripped(document):
    return json.dumps(strip_volatile(document), sort_keys=True)


class TestDeterminism:
    @pytest.mark.parametrize("overlay", ["chord", "pastry"])
    def test_stable_document_identical_serial_vs_parallel(self, overlay):
        config = small_stable(overlay)
        serial = metrics_document(config, rounds=4, jobs=1)
        parallel = metrics_document(config, rounds=4, jobs=4)
        assert stripped(serial) == stripped(parallel)

    def test_churn_document_identical_serial_vs_parallel(self):
        config = small_churn()
        serial = metrics_document(config, rounds=4, jobs=1)
        parallel = metrics_document(config, rounds=4, jobs=4)
        assert stripped(serial) == stripped(parallel)

    def test_repeat_run_identical(self):
        config = small_stable("chord")
        assert stripped(metrics_document(config, rounds=3)) == stripped(
            metrics_document(config, rounds=3)
        )

    def test_different_seed_differs(self):
        first = metrics_document(small_stable("chord", seed=3), rounds=3)
        second = metrics_document(small_stable("chord", seed=7), rounds=3)
        assert stripped(first) != stripped(second)


class TestObserveOnly:
    def test_stable_results_unchanged_by_telemetry(self):
        config = small_stable("chord")
        bare = run_stable(config)
        telemetry = {
            "optimal": RoundTelemetry(rounds=4, const_labels={"policy": "optimal"}),
            "oblivious": RoundTelemetry(rounds=4, const_labels={"policy": "oblivious"}),
        }
        observed = run_stable(config, telemetry=telemetry)
        assert observed.optimized.mean_hops == bare.optimized.mean_hops
        assert observed.baseline.mean_hops == bare.baseline.mean_hops
        assert observed.improvement == bare.improvement
        # ...and the registry actually saw the traffic.
        payload = telemetry["optimal"].registry.to_payload()
        lookups = next(e for e in payload if e["name"] == "repro_lookups_total")
        assert lookups["value"] == config.queries

    def test_churn_results_unchanged_by_telemetry(self):
        config = small_churn()
        bare = run_churn(config)
        observed = run_churn(
            config,
            telemetry={
                "optimal": RoundTelemetry(rounds=3),
                "oblivious": RoundTelemetry(rounds=3),
            },
        )
        assert observed.optimized.mean_hops == bare.optimized.mean_hops
        assert observed.baseline.mean_hops == bare.baseline.mean_hops
        assert observed.optimized.timeout_rate == bare.optimized.timeout_rate

    def test_disabled_telemetry_records_nothing(self):
        config = small_stable("chord")
        inert = {
            "optimal": RoundTelemetry.disabled(),
            "oblivious": RoundTelemetry.disabled(),
        }
        run_stable(config, telemetry=inert)
        payload = inert["optimal"].registry.to_payload()
        lookups = next(e for e in payload if e["name"] == "repro_lookups_total")
        assert lookups["value"] == 0
        assert inert["optimal"].registry.rounds_sampled == 0


class TestCells:
    def test_cell_samples_requested_rounds_and_matches_bare_stats(self):
        config = small_stable("pastry")
        cell = metrics_cell(config, "optimal", rounds=5)
        assert cell["rounds_sampled"] == 5
        bare = run_stable(config)
        assert cell["stats"]["mean_hops"] == bare.optimized.mean_hops
        assert cell["stats"]["lookups"] == bare.optimized.lookups

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            metrics_cell(small_stable("chord"), "greedy")

    def test_bad_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            metrics_document(small_stable("chord"), rounds=0)

    def test_churn_cell_tracks_virtual_time(self):
        config = small_churn()
        cell = metrics_cell(config, "optimal", rounds=3)
        clock = next(
            e
            for e in cell["metrics"]
            if e["name"] == "repro_virtual_time_seconds"
        )
        times = [value for __, value in clock["series"]]
        assert times == [100.0, 200.0, 300.0]


class TestEndToEndExposition:
    def test_document_round_trips_through_openmetrics(self):
        document = metrics_document(small_stable("chord"), rounds=3)
        samples = parse_openmetrics(to_openmetrics(document))
        lookup_samples = [
            s
            for s in samples
            if s.name == "repro_lookups_total"
            and dict(s.labels)["policy"] == "optimal"
        ]
        assert [s.timestamp for s in lookup_samples] == [0.0, 1.0, 2.0]
        assert lookup_samples[-1].value == 400.0
