"""Tests for METRICS_v1 assembly and the OpenMetrics exposition/parser."""

import math

import pytest

from repro.sim.runner import ExperimentConfig
from repro.telemetry.export import (
    METRICS_SCHEMA,
    build_metrics_document,
    parse_openmetrics,
    to_openmetrics,
)
from repro.telemetry.registry import MetricsRegistry
from repro.util.errors import ConfigurationError


def make_document():
    registry = MetricsRegistry(const_labels={"policy": "optimal"})
    lookups = registry.counter("repro_lookups_total", "Lookups.").labels()
    rate = registry.gauge("repro_round_timeout_rate", "Rate.").labels()
    hist = registry.histogram("repro_lookup_cost", "Cost.", edges=(1.0, 2.0)).labels()
    lookups.inc(10)
    hist.observe(1.0)
    registry.sample_round()  # rate gauge still NaN in round 0
    lookups.inc(5)
    rate.set(0.25)
    hist.observe(3.0)
    registry.sample_round()
    config = ExperimentConfig(overlay="chord", n=32, bits=16, queries=100, seed=1)
    cells = {"optimal": {"policy": "optimal", "metrics": registry.to_payload()}}
    return build_metrics_document(
        config, cells, {"mode": "stable", "rounds": 2, "boundaries": [50, 100]}
    )


class TestDocument:
    def test_top_level_shape(self):
        document = make_document()
        assert document["schema"] == METRICS_SCHEMA
        assert document["overlay"] == "chord"
        assert document["mode"] == "stable"
        assert document["manifest"]["schema"] == "MANIFEST_v1"
        assert document["manifest"]["rounds"] == 2
        assert document["round_clock"]["boundaries"] == [50, 100]


class TestExposition:
    def test_round_index_is_the_sample_timestamp(self):
        text = to_openmetrics(make_document())
        samples = parse_openmetrics(text)
        series = [
            sample for sample in samples if sample.name == "repro_lookups_total"
        ]
        assert [(sample.value, sample.timestamp) for sample in series] == [
            (10.0, 0.0),
            (15.0, 1.0),
        ]

    def test_nan_gauge_renders_as_nan_sample(self):
        text = to_openmetrics(make_document())
        samples = parse_openmetrics(text)
        rates = [s for s in samples if s.name == "repro_round_timeout_rate"]
        assert math.isnan(rates[0].value)
        assert rates[1].value == 0.25

    def test_histogram_final_snapshot_with_inf_bucket(self):
        text = to_openmetrics(make_document())
        samples = parse_openmetrics(text)
        buckets = [s for s in samples if s.name == "repro_lookup_cost_bucket"]
        les = [dict(s.labels)["le"] for s in buckets]
        assert les == ["1", "2", "+Inf"]
        assert [s.value for s in buckets] == [1.0, 1.0, 2.0]
        assert all(s.timestamp == 1.0 for s in buckets)
        count = next(s for s in samples if s.name == "repro_lookup_cost_count")
        total = next(s for s in samples if s.name == "repro_lookup_cost_sum")
        assert count.value == 2.0
        assert total.value == 4.0

    def test_metadata_and_framing(self):
        text = to_openmetrics(make_document())
        assert "# TYPE repro_lookups_total counter" in text
        assert "# HELP repro_lookup_cost Cost." in text
        assert text.endswith("# EOF\n")

    def test_labels_sorted_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", 'has "quotes"\nand newline').labels(
            b="2", a="1"
        ).inc()
        registry.sample_round()
        config = ExperimentConfig(overlay="chord", n=32, bits=16, queries=100, seed=1)
        cells = {"optimal": {"policy": "optimal", "metrics": registry.to_payload()}}
        text = to_openmetrics(build_metrics_document(config, cells, {"rounds": 1}))
        assert 'repro_x_total{a="1",b="2"} 1 0' in text
        assert "\\n" in text  # help newline escaped
        parse_openmetrics(text)


class TestParserStrictness:
    def test_missing_eof_rejected(self):
        with pytest.raises(ConfigurationError, match="EOF"):
            parse_openmetrics("# TYPE x counter\nx 1 0\n")

    def test_sample_without_type_metadata_rejected(self):
        with pytest.raises(ConfigurationError, match="TYPE"):
            parse_openmetrics("x 1 0\n# EOF")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            parse_openmetrics("# TYPE x counter\nx\n# EOF")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigurationError, match="bad sample value"):
            parse_openmetrics("# TYPE x counter\nx abc 0\n# EOF")

    def test_non_cumulative_buckets_rejected(self):
        text = (
            "# TYPE x histogram\n"
            'x_bucket{le="1"} 5 0\n'
            'x_bucket{le="+Inf"} 3 0\n'
            "# EOF"
        )
        with pytest.raises(ConfigurationError, match="cumulative"):
            parse_openmetrics(text)

    def test_bucket_suffix_resolves_to_family_type(self):
        text = "# TYPE x histogram\n" 'x_bucket{le="+Inf"} 3 0\n' "x_count 3 0\n# EOF"
        samples = parse_openmetrics(text)
        assert len(samples) == 2
