"""Tests for the labelled metrics registry and its round clock."""

import pytest

from repro.sim.metrics import LATENCY_BUCKET_EDGES
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.util.errors import ConfigurationError


class TestCounter:
    def test_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ConfigurationError):
            Counter().inc(-1.0)

    def test_sample_appends_round_and_value(self):
        counter = Counter()
        counter.inc(2)
        counter.sample(0)
        counter.inc(1)
        counter.sample(1)
        assert counter.series == [[0, 2], [1, 3]]


class TestGauge:
    def test_defaults_to_nan_sampled_as_null(self):
        gauge = Gauge()
        gauge.sample(0)
        assert gauge.series == [[0, None]]

    def test_set_then_sample(self):
        gauge = Gauge()
        gauge.set(4.25)
        gauge.sample(3)
        assert gauge.series == [[3, 4.25]]


class TestHistogram:
    def test_default_edges_are_the_canonical_latency_buckets(self):
        assert Histogram().edges == LATENCY_BUCKET_EDGES

    def test_le_semantics_inclusive_upper_bound(self):
        hist = Histogram(edges=(1.0, 2.0, 4.0))
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            hist.observe(value)
        # le=1 -> {1}; le=2 -> {2}; le=4 -> {3, 4}; +inf -> {5}
        assert hist.counts == [1, 1, 2, 1]
        assert hist.cumulative() == [1, 2, 4, 5]
        assert hist.count == 5
        assert hist.sum == 15.0

    def test_rejects_non_increasing_edges(self):
        with pytest.raises(ConfigurationError):
            Histogram(edges=(1.0, 1.0, 2.0))
        with pytest.raises(ConfigurationError):
            Histogram(edges=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram(edges=())

    def test_sample_snapshots_cumulative_sum_count(self):
        hist = Histogram(edges=(1.0, 2.0))
        hist.observe(1.0)
        hist.observe(5.0)
        hist.sample(2)
        assert hist.series == [[2, [1, 1, 2], 6, 2]]


class TestMetricFamily:
    def test_children_keyed_by_label_set(self):
        family = MetricFamily("hops", "h", "counter")
        a = family.labels(pointer_class="core")
        b = family.labels(pointer_class="core")
        c = family.labels(pointer_class="leaf")
        assert a is b
        assert a is not c

    def test_children_iterate_in_sorted_label_order(self):
        family = MetricFamily("hops", "h", "counter")
        family.labels(kind="z")
        family.labels(kind="a")
        labels = [labels for labels, __ in family.children()]
        assert labels == [{"kind": "a"}, {"kind": "z"}]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricFamily("x", "h", "timer")


class TestMetricsRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x", "x")
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_x", "x")

    def test_same_name_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_x", "x") is registry.counter("repro_x", "other help")

    def test_sample_round_advances_and_snapshots_every_child(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_c", "c").labels()
        gauge = registry.gauge("repro_g", "g").labels(kind="a")
        counter.inc(1)
        gauge.set(7)
        assert registry.sample_round() == 0
        counter.inc(2)
        assert registry.sample_round() == 1
        assert registry.rounds_sampled == 2
        assert counter.series == [[0, 1], [1, 3]]
        assert gauge.series == [[0, 7], [1, 7]]

    def test_payload_sorted_and_carries_const_labels(self):
        registry = MetricsRegistry(const_labels={"policy": "optimal"})
        registry.gauge("repro_b", "b").labels()
        registry.counter("repro_a", "a").labels(kind="x")
        registry.sample_round()
        payload = registry.to_payload()
        assert [entry["name"] for entry in payload] == ["repro_a", "repro_b"]
        assert payload[0]["labels"] == {"policy": "optimal", "kind": "x"}
        assert payload[0]["type"] == "counter"
        assert payload[1]["value"] is None  # unset gauge -> NaN -> null

    def test_histogram_payload_carries_edges(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", "h", edges=(1.0, 2.0)).labels().observe(1.5)
        registry.sample_round()
        (entry,) = registry.to_payload()
        assert entry["edges"] == [1.0, 2.0]
        assert entry["series"] == [[0, [0, 1, 1], 1.5, 1]]

    def test_late_created_children_start_at_their_first_round(self):
        registry = MetricsRegistry()
        registry.counter("repro_a", "a").labels().inc()
        registry.sample_round()
        late = registry.counter("repro_late", "l").labels()
        late.inc(5)
        registry.sample_round()
        assert late.series == [[1, 5]]
