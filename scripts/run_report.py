"""Thin shim: ``python scripts/run_report.py`` == ``python -m repro report``.

The report runner moved into the package (:func:`repro.experiments.report.
run_report`, surfaced as the ``repro report`` subcommand); this script
stays for muscle memory and CI back-compat and just delegates.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["report", *sys.argv[1:]]))
