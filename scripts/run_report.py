"""Generate the EXPERIMENTS.md measurement tables.

Runs every figure at "report" scale: the paper's node counts and 32-bit
ids, with query volumes and churn durations sized for a small box.
Writes markdown tables and the detailed series to results/report.*.

Figure cells fan out over worker processes (``--jobs``, or the
``REPRO_JOBS`` environment variable, default: all CPUs); the emitted
series are bit-identical at any worker count.
"""

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.figures import FigurePreset, run_figure
from repro.experiments.report import render_detail, render_markdown, render_table
from repro.util.parallel import resolve_jobs

REPORT = FigurePreset(
    name="report",
    bits=32,
    queries=10_000,
    pastry_sizes=(256, 512, 1024, 2048),
    pastry_k_base=1024,
    chord_sizes=(128, 256, 512, 1024),
    chord_k_base=512,
    churn_duration=600.0,
    churn_warmup=150.0,
    seed=0,
)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for figure cells (default: REPRO_JOBS or CPU count)",
    )
    parser.add_argument(
        "--figures",
        nargs="+",
        default=("3", "4", "5", "6"),
        choices=("3", "4", "5", "6"),
        help="subset of figures to regenerate",
    )
    args = parser.parse_args(argv)
    jobs = resolve_jobs(args.jobs)
    print(f"running figures {', '.join(args.figures)} with {jobs} worker(s)", flush=True)

    out_dir = pathlib.Path(__file__).resolve().parent.parent / "results"
    out_dir.mkdir(exist_ok=True)
    markdown_parts = []
    raw = {}
    for figure_id in args.figures:
        started = time.time()
        result = run_figure(figure_id, REPORT, jobs=jobs)
        elapsed = time.time() - started
        print(render_table(result))
        print(f"[{elapsed:.0f}s]\n", flush=True)
        markdown_parts.append(render_markdown(result))
        markdown_parts.append("")
        raw[figure_id] = {
            "title": result.title,
            "elapsed_s": round(elapsed, 1),
            "jobs": jobs,
            "series": {
                series.label: {
                    "x": [point.x for point in series.points],
                    "improvement_pct": [round(point.improvement, 2) for point in series.points],
                    "optimized_hops": [round(point.comparison.optimized.mean_hops, 4) for point in series.points],
                    "baseline_hops": [round(point.comparison.baseline.mean_hops, 4) for point in series.points],
                    "optimized_fail": [round(point.comparison.optimized.failure_rate, 5) for point in series.points],
                    "baseline_fail": [round(point.comparison.baseline.failure_rate, 5) for point in series.points],
                }
                for series in result.series
            },
            "detail": render_detail(result),
        }
        (out_dir / "report.json").write_text(json.dumps(raw, indent=2))
        (out_dir / "report.md").write_text("\n".join(markdown_parts))
    print("report written to results/")


if __name__ == "__main__":
    main()
