"""Adaptive (drift-triggered) vs periodic recomputation under popularity drift.

Section III: the selection algorithm "can be invoked either periodically
or based on some criteria that determines that the system has undergone a
significant change". This module runs both policies against a
:class:`~repro.workload.dynamics.DynamicPopularity` workload and reports
the trade-off: lookup quality achieved vs selections spent.

Strategies compared by :func:`compare_maintenance_strategies`:

* ``periodic`` — every node recomputes on the paper's 62.5 s schedule;
* ``adaptive`` — a node recomputes only when its
  :class:`~repro.core.drift.RecomputationTrigger` fires (L1 drift above a
  threshold, rate-limited);
* ``static`` — one initial selection, never refreshed (the floor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chord.ring import ChordRing, optimal_policy
from repro.core.drift import RecomputationTrigger
from repro.faults import arm_stable_plane
from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace
from repro.util.rng import SeedSequenceRegistry
from repro.workload.dynamics import DynamicPopularity, FlashCrowd
from repro.workload.items import ItemCatalog

__all__ = ["MaintenanceReport", "compare_maintenance_strategies"]

STRATEGIES = ("periodic", "adaptive", "static")


@dataclass
class MaintenanceReport:
    """Outcome of one maintenance strategy under drifting popularity.

    ``mean_hops`` counts network transfers only (hops plus timed-out
    probes); retry backoff *penalty* — a latency proxy, not a message
    count — accumulates separately in ``mean_penalty`` so an armed fault
    schedule cannot inflate the hop metric. With ``faults=None`` the
    single-attempt policy never assigns penalty and ``mean_hops`` equals
    the legacy latency numbers bit for bit.
    """

    strategy: str
    mean_hops: float
    recomputations: int
    queries: int
    mean_penalty: float = 0.0

    def summary(self) -> str:
        penalty = f" (+{self.mean_penalty:.3f} penalty)" if self.mean_penalty else ""
        return (
            f"{self.strategy}: {self.mean_hops:.3f} hops{penalty} using "
            f"{self.recomputations} recomputations over {self.queries} queries"
        )


def compare_maintenance_strategies(
    n: int = 64,
    bits: int = 18,
    alpha: float = 1.2,
    k: int | None = None,
    duration: float = 600.0,
    epoch: float = 12.5,
    queries_per_epoch: int = 60,
    swap_interval: float = 30.0,
    swap_count: int = 4,
    drift_threshold: float = 0.08,
    periodic_interval: float = 62.5,
    seed: int = 0,
    flash_crowd_windows: list[tuple[float, float]] | None = None,
    faults=None,
) -> dict[str, MaintenanceReport]:
    """Run the three strategies against identical drifting workloads.

    The simulation advances in ``epoch``-sized steps: the popularity
    process drifts, each node's frequency view is refreshed to the current
    converged distribution, maintenance runs per strategy, then the epoch's
    queries are routed and measured. Returns ``{strategy: report}``.

    ``flash_crowd_windows`` is a list of ``(start, duration)`` pairs; each
    promotes one of the catalog's coldest items to rank 1 for the window
    (the items are chosen deterministically from the internal catalog).

    ``faults`` optionally arms a
    :class:`~repro.faults.schedule.FaultSchedule` on every strategy's ring
    before measurement (setup faults once, per-message loss with robust
    retries throughout); ``None`` preserves the legacy numbers bit for bit.
    """
    if epoch <= 0 or duration <= 0 or duration < epoch:
        raise ConfigurationError("need 0 < epoch <= duration")
    registry = SeedSequenceRegistry(seed)
    space = IdSpace(bits)
    effective_k = k if k is not None else max(1, n.bit_length() - 1)
    reports: dict[str, MaintenanceReport] = {}

    for strategy in STRATEGIES:
        ring = ChordRing.build(n, space=space, seed=registry.fresh("overlay").randrange(2**31))
        catalog = ItemCatalog(space, 4 * n, seed=registry.fresh("items").randrange(2**31))
        crowds = [
            FlashCrowd(catalog.item_ids[-(index + 1)], start, length)
            for index, (start, length) in enumerate(flash_crowd_windows or [])
        ]
        popularity = DynamicPopularity(
            catalog,
            alpha,
            seed=registry.fresh("drift").randrange(2**31),
            swap_interval=swap_interval,
            swap_count=swap_count,
            flash_crowds=crowds,
        )
        plane, retry = arm_stable_plane(faults, registry.fresh("fault-plane"), ring)
        policy_rng = registry.fresh("policy")
        query_rng = registry.fresh("queries")
        triggers = {
            node_id: RecomputationTrigger(threshold=drift_threshold, min_interval=epoch)
            for node_id in ring.alive_ids()
        }
        recomputations = 0
        total_hops = 0
        total_penalty = 0.0
        total_queries = 0

        def refresh_frequencies() -> dict[int, dict[int, float]]:
            views = {}
            base = popularity.node_frequencies(ring.responsible)
            for node_id in ring.alive_ids():
                view = dict(base)
                view.pop(node_id, None)
                ring.seed_frequencies(node_id, view)
                views[node_id] = view
            return views

        def recompute(node_id: int) -> None:
            nonlocal recomputations
            ring.recompute_auxiliary(node_id, effective_k, optimal_policy, policy_rng, 256)
            recomputations += 1

        # Initial selection for everyone (all strategies start equal).
        views = refresh_frequencies()
        for node_id in ring.alive_ids():
            recompute(node_id)
            triggers[node_id].committed(0.0, views[node_id], ring.node(node_id).auxiliary)

        now = 0.0
        last_periodic = 0.0
        while now < duration:
            now = min(now + epoch, duration)
            popularity.advance(now)
            views = refresh_frequencies()
            if strategy == "periodic" and now - last_periodic >= periodic_interval:
                last_periodic = now
                for node_id in ring.alive_ids():
                    recompute(node_id)
            elif strategy == "adaptive":
                for node_id in ring.alive_ids():
                    trigger = triggers[node_id]
                    if trigger.should_recompute(now, views[node_id]):
                        recompute(node_id)
                        trigger.committed(now, views[node_id], ring.node(node_id).auxiliary)
            alive = ring.alive_ids()
            for __ in range(queries_per_epoch):
                source = alive[query_rng.randrange(len(alive))]
                item = popularity.sample_item(query_rng)
                result = ring.lookup(source, item, record_access=False, retry=retry, faults=plane)
                total_hops += result.hops + result.timeouts
                total_penalty += result.penalty
                total_queries += 1

        reports[strategy] = MaintenanceReport(
            strategy=strategy,
            mean_hops=total_hops / total_queries,
            recomputations=recomputations,
            queries=total_queries,
            mean_penalty=total_penalty / total_queries,
        )
    return reports
