"""Globally-coordinated auxiliary selection (paper Section VII future work).

The paper's algorithms are *locally* optimal: each node minimizes its own
expected lookup cost, ignoring the auxiliary choices of other nodes. The
conclusions note that "the globally optimal choice of auxiliary neighbors
can be different" and leave a decentralized globally-aware algorithm as an
open challenge.

This module implements the centralized tournament that quantifies the
gap: starting from core-only tables, repeatedly grant one pointer to the
(node, pointer) pair that most reduces the *network-wide* expected cost —
the sum over source nodes of eq. 1 under that source's query
distribution. The machinery is :mod:`repro.core.budget`: each node's
marginal gains come off its own cost curve, and a lazy max-heap picks the
network-wide best next grant.

Under the paper's cost model a pointer at node ``s`` only affects ``s``'s
own lookups, so with the per-node cap binding (total budget ``n * k``)
the tournament's final assignment coincides with running the local
optimum at budget ``k`` at every node — that equivalence is what makes
the local algorithms also globally optimal *for this cost model*, and
:func:`select_global_greedy` exploits it as a fast path. The interesting
regime is an *uncapped* total budget (``total_k``), where the tournament
concentrates pointers on high-traffic nodes; see ``repro allocate``.
"""

from __future__ import annotations

from repro.chord.ring import ChordRing
from repro.core import budget as budget_mod
from repro.core import cost as cost_mod
from repro.util.validation import require_non_negative_int

__all__ = ["GlobalAssignment", "select_global_greedy", "network_cost"]


class GlobalAssignment:
    """The outcome of a global selection round: per-node pointer sets."""

    def __init__(self, assignment: dict[int, set[int]], total_cost: float) -> None:
        self.assignment = assignment
        self.total_cost = total_cost

    def install(self, ring: ChordRing) -> None:
        """Install the computed auxiliary sets on every node."""
        for node_id, pointers in self.assignment.items():
            ring.node(node_id).set_auxiliary(set(pointers))


def network_cost(
    ring,
    demands: dict[int, dict[int, float]],
    overlay: str = "chord",
) -> float:
    """Network-wide expected cost: the sum of eq. 1 over all source nodes.

    ``demands[source]`` is the source's destination-frequency mapping.
    Uses each node's *currently installed* core + auxiliary neighbors.
    This is the shared evaluation the budget allocator's figure gates on:
    an installed :class:`~repro.core.budget.BudgetAllocation` must
    reproduce its predicted ``total_cost`` here.
    """
    total = 0.0
    for source, frequencies in demands.items():
        core = budget_mod.core_neighbors_of(overlay, ring, source)
        auxiliary = ring.node(source).auxiliary
        if overlay == "chord":
            total += cost_mod.chord_cost(
                ring.space, source, frequencies, core, auxiliary
            )
        else:
            total += cost_mod.pastry_cost(ring.space, frequencies, core, auxiliary)
    return total


def select_global_greedy(
    ring,
    demands: dict[int, dict[int, float]],
    k: int,
    overlay: str = "chord",
    total_k: int | None = None,
) -> GlobalAssignment:
    """Greedy global tournament over (node, pointer) marginal gains.

    Grants ``total_k`` pointers (default ``k * len(demands)``) one at a
    time, each round to the node whose next pointer most reduces the
    network-wide cost, capping every node at ``k``. Per-node convexity
    (DESIGN.md §12) makes each node's greedy chain optimal, so the
    tournament's round-``j`` grant really is the best (node, pointer)
    pair available — no re-evaluation against other nodes' tables is
    needed because a pointer only affects its owner's lookups under the
    paper's cost model.

    With the default budget the per-node cap binds and the result equals
    the paper's local optimum at every node (the proven-equivalent fast
    path — the tournament merely reorders grants that all happen anyway).
    Pass ``total_k < k * n`` to let the tournament concentrate budget on
    heavy nodes instead.
    """
    require_non_negative_int(k, "k")
    if total_k is not None:
        require_non_negative_int(total_k, "total_k")
    problems = {
        source: budget_mod.SelectionProblem(
            space=ring.space,
            source=source,
            frequencies=frequencies,
            core_neighbors=budget_mod.core_neighbors_of(overlay, ring, source),
            k=0,
        )
        for source, frequencies in demands.items()
    }
    curves = {
        source: _CappedCurve(problem, overlay, cap=k)
        for source, problem in problems.items()
    }
    budget = len(problems) * k if total_k is None else total_k
    allocation = budget_mod.allocate_greedy(curves, budget)
    assignment = {
        source: set(curves[source].result(allocation.quota(source)).auxiliary)
        for source in problems
    }
    return GlobalAssignment(assignment, allocation.total_cost)


class _CappedCurve(budget_mod.CostCurve):
    """A cost curve whose capacity is clamped to the per-node cap ``k``,
    so the tournament never over-grants one node."""

    __slots__ = ("cap",)

    def __init__(self, problem, overlay: str, cap: int) -> None:
        super().__init__(problem, overlay)
        self.cap = cap

    @property
    def capacity(self) -> int:
        return min(self.cap, len(self.problem.candidates))
