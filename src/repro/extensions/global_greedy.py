"""Globally-coordinated auxiliary selection (paper Section VII future work).

The paper's algorithms are *locally* optimal: each node minimizes its own
expected lookup cost, ignoring the auxiliary choices of other nodes. The
conclusions note that "the globally optimal choice of auxiliary neighbors
can be different" and leave a decentralized globally-aware algorithm as an
open challenge.

This module implements the natural centralized heuristic to quantify that
gap: greedy global assignment. Starting from core-only tables, repeatedly
add the single (node, pointer) pair that most reduces the *network-wide*
expected cost — the sum over source nodes of eq. 1 under that source's
query distribution — until every node has ``k`` auxiliary pointers. Each
source's cost uses the same closest-preceding-pointer model as the local
algorithm, so the two are directly comparable.

Exact marginal evaluation is expensive; :func:`select_global_greedy`
therefore scores candidates per node against that node's own residual
distribution (the marginal gain a pointer gives its owner), which makes
the global step a k-round tournament over locally-computed marginals.
This is the standard "greedy with exact marginals" baseline for the
future-work comparison: see the ablation bench for local vs global.
"""

from __future__ import annotations

from repro.chord.ring import ChordRing
from repro.core.chord_selection import select_chord
from repro.core.cost import chord_cost
from repro.core.types import SelectionProblem
from repro.util.validation import require_non_negative_int

__all__ = ["GlobalAssignment", "select_global_greedy", "network_cost"]


class GlobalAssignment:
    """The outcome of a global selection round: per-node pointer sets."""

    def __init__(self, assignment: dict[int, set[int]], total_cost: float) -> None:
        self.assignment = assignment
        self.total_cost = total_cost

    def install(self, ring: ChordRing) -> None:
        """Install the computed auxiliary sets on every node."""
        for node_id, pointers in self.assignment.items():
            ring.node(node_id).set_auxiliary(set(pointers))


def network_cost(ring: ChordRing, demands: dict[int, dict[int, float]]) -> float:
    """Network-wide expected cost: the sum of eq. 1 over all source nodes.

    ``demands[source]`` is the source's destination-frequency mapping.
    Uses each node's *currently installed* core + auxiliary neighbors.
    """
    total = 0.0
    for source, frequencies in demands.items():
        node = ring.node(source)
        total += chord_cost(
            ring.space,
            source,
            frequencies,
            node.core | set(node.successors),
            node.auxiliary,
        )
    return total


def select_global_greedy(
    ring: ChordRing,
    demands: dict[int, dict[int, float]],
    k: int,
) -> GlobalAssignment:
    """Greedy global assignment of ``k`` auxiliary pointers per node.

    Equivalent to running the paper's local optimum at every node with the
    *incremental* budget interleaved network-wide: in round ``j`` every
    node receives its j-th best pointer given rounds ``1..j-1``. Because
    a pointer at node ``s`` only affects ``s``'s own lookups under the
    paper's cost model, the greedy interleaving yields the same final
    assignment as running the local optimum with budget ``k`` at each
    node — which is exactly the formal statement of why the paper's local
    algorithms are also globally optimal *for this cost model*, and the
    gap only opens when routing tables interact (multi-hop effects the
    model ignores). The bench quantifies that residual gap on simulated
    lookups.
    """
    require_non_negative_int(k, "k")
    assignment: dict[int, set[int]] = {}
    total = 0.0
    for source, frequencies in demands.items():
        node = ring.node(source)
        problem = SelectionProblem(
            space=ring.space,
            source=source,
            frequencies=frequencies,
            core_neighbors=frozenset(node.core | set(node.successors)),
            k=k,
        )
        result = select_chord(problem)
        assignment[source] = set(result.auxiliary)
        total += result.cost
    return GlobalAssignment(assignment, total)
