"""Extensions beyond the paper's core: comparators and future-work ideas.

* :mod:`repro.extensions.item_cache` — item caching vs pointer caching
  under item churn (the Section I motivation, quantified).
* :mod:`repro.extensions.replication` — Beehive-style replication vs
  pointer caching (Section II-C related work, quantified).
* :mod:`repro.extensions.global_greedy` — globally-coordinated selection
  (the Section VII future-work question).
"""

from repro.extensions.global_greedy import GlobalAssignment, network_cost, select_global_greedy
from repro.extensions.item_cache import ItemCache, ItemChurnReport, simulate_item_churn
from repro.extensions.replication import (
    ReplicaDirectory,
    ReplicationReport,
    simulate_replication,
)

__all__ = [
    "GlobalAssignment",
    "ItemCache",
    "ItemChurnReport",
    "ReplicaDirectory",
    "ReplicationReport",
    "network_cost",
    "select_global_greedy",
    "simulate_item_churn",
    "simulate_replication",
]

from repro.extensions.adaptive import MaintenanceReport, compare_maintenance_strategies

__all__ += ["MaintenanceReport", "compare_maintenance_strategies"]
