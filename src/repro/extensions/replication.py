"""Beehive-style replication comparator (paper Section II-C, ref [16]).

Beehive replicates popular items proactively along lookup paths so that
hot queries terminate in O(1) hops. The paper contrasts it with pointer
caching: replication's win on hops comes with an *update cost* — every
item modification must refresh all replicas — which explodes when items
change often.

This module implements a simplified level-based Beehive on our Chord
substrate: an item replicated at level ``l`` is stored on every node
within ``2**l`` id-distance "hops-worth" of its home (approximated as the
``r_l`` ring-predecessors of the responsible node, doubling per level),
so a lookup stops as soon as it reaches any replica holder.

:func:`simulate_replication` reports mean hops, total replica count and
update traffic (replica refreshes per item update) for a popularity-ranked
replication budget, alongside the pointer-caching scheme.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.chord.ring import ChordRing, optimal_policy
from repro.faults import arm_stable_plane
from repro.util.ids import IdSpace
from repro.util.rng import SeedSequenceRegistry
from repro.util.validation import require_non_negative_int
from repro.workload.items import ItemCatalog, PopularityModel
from repro.workload.spec import DEFAULT_RATE, WorkloadContext, WorkloadSpec

__all__ = ["ReplicaDirectory", "ReplicationReport", "simulate_replication"]


class ReplicaDirectory:
    """Placement of item replicas on ring predecessors of the home node.

    Level ``l`` places ``2**l`` replicas: the home node plus the
    ``2**l - 1`` live nodes preceding it clockwise (the nodes a Chord
    lookup traverses last, per Beehive's intuition).
    """

    def __init__(self, ring: ChordRing) -> None:
        self.ring = ring
        self._holders: dict[int, set[int]] = {}

    def replicate(self, item: int, level: int) -> set[int]:
        """Install replicas of ``item`` at the given level; returns holders."""
        require_non_negative_int(level, "level")
        alive = self.ring.alive_ids()
        home = self.ring.responsible(item)
        copies = min(1 << level, len(alive))
        index = bisect_right(alive, home) - 1
        if alive[index] != home:  # wrapped: responsible() is alive[-1]
            index = alive.index(home)
        holders = {alive[(index - offset) % len(alive)] for offset in range(copies)}
        self._holders[item] = holders
        return holders

    def holders(self, item: int) -> set[int]:
        """Current replica holders (home node only when never replicated)."""
        return self._holders.get(item, {self.ring.responsible(item)})

    def replica_count(self) -> int:
        """Total replicas beyond the home copies."""
        return sum(len(holders) - 1 for holders in self._holders.values())

    def update_cost(self, item: int) -> int:
        """Messages required to refresh every replica after one update."""
        return len(self.holders(item)) - 1


@dataclass
class ReplicationReport:
    """Outcome of one strategy in the replication comparison."""

    strategy: str
    mean_hops: float
    replicas: int
    update_messages_per_update: float

    def summary(self) -> str:
        return (
            f"{self.strategy}: {self.mean_hops:.3f} hops, "
            f"{self.replicas} replicas, "
            f"{self.update_messages_per_update:.1f} msgs/update"
        )


def _route_until_replica(
    ring: ChordRing, source: int, item: int, holders: set[int], retry=None, faults=None
) -> int:
    """Hop count of a lookup that may stop early at any replica holder."""
    if source in holders:
        return 0
    result = ring.lookup(source, item, record_access=False, retry=retry, faults=faults)
    hops = 0
    for node_id in result.path[1:]:
        hops += 1
        if node_id in holders:
            return hops
    return result.latency


def simulate_replication(
    n: int = 64,
    bits: int = 18,
    alpha: float = 1.2,
    k: int | None = None,
    queries: int = 3000,
    replicated_fraction: float = 0.05,
    replication_level: int = 3,
    seed: int = 0,
    faults=None,
    workload: str = "static-zipf",
) -> dict[str, ReplicationReport]:
    """Compare pointer caching against Beehive-style replication.

    The ``replicated_fraction`` most popular items get ``2**level``
    replicas each. Returns ``{strategy: ReplicationReport}`` for
    ``pointer``, ``replication`` and ``none``.

    ``faults`` is an optional :class:`~repro.faults.schedule.FaultSchedule`
    applied identically to every strategy's ring (setup crash burst /
    partition, then per-message loss with robust retries); ``None`` keeps
    the fault-free legacy behaviour bit for bit. ``workload`` selects the
    query scenario (default: the paper's static Zipf stream, draw-for-draw
    identical to the legacy path). Replica placement keys off the *static*
    ranking either way, so drifting scenarios show replication chasing a
    hot set that has moved on.
    """
    spec = WorkloadSpec.parse(workload)
    registry = SeedSequenceRegistry(seed)
    space = IdSpace(bits)
    effective_k = k if k is not None else max(1, n.bit_length() - 1)
    reports: dict[str, ReplicationReport] = {}
    for strategy in ("pointer", "replication", "none"):
        ring = ChordRing.build(n, space=space, seed=registry.fresh("overlay").randrange(2**31))
        catalog = ItemCatalog(space, 4 * n, seed=registry.fresh("items").randrange(2**31))
        popularity = PopularityModel(
            catalog, alpha, num_rankings=1, seed=registry.fresh("rankings").randrange(2**31)
        )
        assignment = popularity.assign_rankings(ring.alive_ids())
        destinations = popularity.node_frequencies(0, ring.responsible)
        for node_id in ring.alive_ids():
            weights = dict(destinations)
            weights.pop(node_id, None)
            ring.seed_frequencies(node_id, weights)

        directory = ReplicaDirectory(ring)
        if strategy == "pointer":
            ring.recompute_all_auxiliary(
                effective_k, optimal_policy, registry.fresh("policy"), frequency_limit=256
            )
        elif strategy == "replication":
            hot_count = max(1, int(replicated_fraction * len(catalog)))
            for item in popularity.rankings[0][:hot_count]:
                directory.replicate(item, replication_level)

        plane, retry = arm_stable_plane(faults, registry.fresh("fault-plane"), ring)
        stream = spec.build(
            WorkloadContext(
                popularity=popularity,
                assignment=assignment,
                rng=registry.fresh("queries"),
                scenario_rng=registry.fresh("queries-scenario"),
                alpha=alpha,
                horizon=queries / DEFAULT_RATE,
            )
        )
        alive = ring.alive_ids()
        total_hops = 0
        issued = 0
        for index in range(queries):
            stream.advance(index / DEFAULT_RATE)
            query = stream.next_query(alive)
            if query is None:
                break
            issued += 1
            if strategy == "replication":
                total_hops += _route_until_replica(
                    ring, query.source, query.item, directory.holders(query.item),
                    retry=retry, faults=plane,
                )
            else:
                total_hops += ring.lookup(
                    query.source, query.item, record_access=False, retry=retry, faults=plane
                ).latency

        replicated_items = list(directory._holders) or list(catalog)[:1]
        mean_update_cost = sum(directory.update_cost(item) for item in replicated_items) / len(
            replicated_items
        )
        reports[strategy] = ReplicationReport(
            strategy=strategy,
            mean_hops=total_hops / issued if issued else 0.0,
            replicas=directory.replica_count(),
            update_messages_per_update=mean_update_cost if strategy == "replication" else 0.0,
        )
    return reports
