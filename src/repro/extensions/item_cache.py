"""Item-caching comparator (paper Section I motivation).

The paper argues that caching *items* (query results) breaks down when
items are updated frequently — cached copies go stale — whereas caching
*peer pointers* never serves stale data: a pointer accelerates the route
to the authoritative node regardless of how often the item changes.

This module makes that argument measurable. :class:`ItemCache` is a
node-local LRU cache of item copies with version tracking;
:func:`simulate_item_churn` runs a Chord workload where items are updated
at a configurable rate and reports, for three strategies:

* ``pointer`` — the paper's auxiliary-neighbor scheme,
* ``item-cache`` — per-node LRU item caching on top of plain Chord,
* ``none`` — plain Chord,

the average hops *and* the fraction of answers that were stale. Item
caching wins on hops (a hit is 0 hops) but pays in staleness as the update
rate grows; pointer caching keeps hops low at zero staleness.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.chord.ring import ChordRing, optimal_policy
from repro.faults import arm_stable_plane
from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace
from repro.util.rng import SeedSequenceRegistry
from repro.util.validation import require_positive_int
from repro.workload.items import ItemCatalog, PopularityModel
from repro.workload.spec import DEFAULT_RATE, WorkloadContext, WorkloadSpec

__all__ = ["CACHE_POLICIES", "ItemCache", "ItemChurnReport", "simulate_item_churn"]


CACHE_POLICIES = ("lru", "lfu")


class ItemCache:
    """A node-local cache of item copies with version stamps.

    ``policy`` picks the eviction discipline: ``"lru"`` (the original
    behaviour, bit-identical at the defaults) evicts the least recently
    used entry; ``"lfu"`` (icarus-style) evicts the least frequently hit
    entry, breaking ties toward the least recently touched.
    ``admission_probability`` < 1 turns :meth:`store` into probabilistic
    caching (Psaras et al.'s ProbCache idea in its simplest form): a miss
    only populates the cache with that probability, which shields the
    small cache from one-hit wonders under heavy-tailed workloads.
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "lru",
        admission_probability: float = 1.0,
        rng: random.Random | None = None,
    ) -> None:
        require_positive_int(capacity, "capacity")
        if policy not in CACHE_POLICIES:
            raise ConfigurationError(
                f"unknown cache policy {policy!r}; expected one of {CACHE_POLICIES}"
            )
        if not 0.0 < admission_probability <= 1.0:
            raise ConfigurationError(
                f"admission_probability must be in (0, 1], got {admission_probability!r}"
            )
        if admission_probability < 1.0 and rng is None:
            raise ConfigurationError(
                "probabilistic admission needs an explicit rng for determinism"
            )
        self.capacity = capacity
        self.policy = policy
        self.admission_probability = admission_probability
        self._rng = rng
        self._entries: OrderedDict[int, int] = OrderedDict()  # item -> cached version
        self._frequencies: dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0

    def lookup(self, item: int, current_version: int) -> bool:
        """Return True on a cache hit; track staleness against the
        authoritative ``current_version``."""
        cached = self._entries.get(item)
        if cached is None:
            self.misses += 1
            return False
        self._entries.move_to_end(item)
        self._frequencies[item] = self._frequencies.get(item, 0) + 1
        self.hits += 1
        if cached != current_version:
            self.stale_hits += 1
        return True

    def store(self, item: int, version: int) -> None:
        """Insert/update an item copy, evicting per policy when full."""
        if (
            self.admission_probability < 1.0
            and item not in self._entries
            and self._rng.random() >= self.admission_probability
        ):
            return
        self._entries[item] = version
        self._entries.move_to_end(item)
        self._frequencies.setdefault(item, 0)
        while len(self._entries) > self.capacity:
            victim = self._victim(protected=item)
            del self._entries[victim]
            self._frequencies.pop(victim, None)

    def _victim(self, protected: int) -> int:
        # The entry being stored is immune for this round: admission is
        # the admission filter's job, not the eviction policy's.
        if self.policy == "lru":
            return next(entry for entry in self._entries if entry != protected)
        # LFU: smallest hit count, ties broken by recency (OrderedDict
        # iterates least-recently-touched first).
        return min(
            (entry for entry in self._entries if entry != protected),
            key=lambda entry: self._frequencies.get(entry, 0),
        )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def stale_rate(self) -> float:
        """Fraction of hits that served an out-of-date copy."""
        if self.hits == 0:
            return 0.0
        return self.stale_hits / self.hits


@dataclass
class ItemChurnReport:
    """Outcome of one strategy under item churn."""

    strategy: str
    mean_hops: float
    stale_answer_rate: float
    queries: int = 0
    cache_hit_rate: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.strategy}: {self.mean_hops:.3f} hops, "
            f"{100 * self.stale_answer_rate:.1f}% stale answers"
        )


@dataclass
class _ItemWorld:
    """Shared ground truth: per-item version counters bumped by updates."""

    versions: dict[int, int] = field(default_factory=dict)

    def version(self, item: int) -> int:
        return self.versions.get(item, 0)

    def update(self, item: int) -> None:
        self.versions[item] = self.versions.get(item, 0) + 1


def simulate_item_churn(
    n: int = 64,
    bits: int = 18,
    alpha: float = 1.2,
    k: int | None = None,
    queries: int = 4000,
    update_probability: float = 0.05,
    cache_capacity: int = 64,
    seed: int = 0,
    faults=None,
    workload: str = "static-zipf",
    cache_policy: str = "lru",
    admission_probability: float = 1.0,
) -> dict[str, ItemChurnReport]:
    """Compare pointer caching, item caching and plain Chord while a
    fraction ``update_probability`` of queries is preceded by an update to
    a (popularity-weighted) random item.

    ``faults`` optionally injects a
    :class:`~repro.faults.schedule.FaultSchedule` into every strategy's
    ring (same plane seed per strategy, robust retries); ``None`` is the
    bit-identical fault-free path. ``workload`` names the query scenario
    (:data:`repro.workload.spec.WORKLOADS`); ``cache_policy`` and
    ``admission_probability`` configure the item-cache strategy's
    eviction/admission behaviour. Defaults run the legacy comparison
    draw-for-draw. Returns ``{strategy: ItemChurnReport}``.
    """
    if not 0.0 <= update_probability <= 1.0:
        raise ConfigurationError("update_probability must be in [0, 1]")
    spec = WorkloadSpec.parse(workload)
    registry = SeedSequenceRegistry(seed)
    space = IdSpace(bits)
    effective_k = k if k is not None else max(1, n.bit_length() - 1)

    reports: dict[str, ItemChurnReport] = {}
    for strategy in ("pointer", "item-cache", "none"):
        ring = ChordRing.build(n, space=space, seed=registry.fresh("overlay").randrange(2**31))
        catalog = ItemCatalog(space, 4 * n, seed=registry.fresh("items").randrange(2**31))
        popularity = PopularityModel(
            catalog, alpha, num_rankings=1, seed=registry.fresh("rankings").randrange(2**31)
        )
        assignment = popularity.assign_rankings(ring.alive_ids())
        destinations = popularity.node_frequencies(0, ring.responsible)
        for node_id in ring.alive_ids():
            weights = dict(destinations)
            weights.pop(node_id, None)
            ring.seed_frequencies(node_id, weights)
        if strategy == "pointer":
            ring.recompute_all_auxiliary(
                effective_k, optimal_policy, registry.fresh("policy"), frequency_limit=256
            )
        plane, retry = arm_stable_plane(faults, registry.fresh("fault-plane"), ring)
        admission_rng = (
            registry.fresh("cache-admission") if admission_probability < 1.0 else None
        )
        caches = {
            node_id: ItemCache(
                cache_capacity,
                policy=cache_policy,
                admission_probability=admission_probability,
                rng=admission_rng,
            )
            for node_id in ring.alive_ids()
        }
        world = _ItemWorld()
        stream = spec.build(
            WorkloadContext(
                popularity=popularity,
                assignment=assignment,
                rng=registry.fresh("queries"),
                scenario_rng=registry.fresh("queries-scenario"),
                alpha=alpha,
                horizon=queries / DEFAULT_RATE,
            )
        )
        update_rng = registry.fresh("updates")

        total_hops = 0
        issued = 0
        alive = ring.alive_ids()
        for index in range(queries):
            if update_rng.random() < update_probability:
                world.update(popularity.sample_item(0, update_rng))
            stream.advance(index / DEFAULT_RATE)
            query = stream.next_query(alive)
            if query is None:
                break
            issued += 1
            if strategy == "item-cache":
                cache = caches[query.source]
                if cache.lookup(query.item, world.version(query.item)):
                    continue  # a hit costs zero hops (but may be stale)
                result = ring.lookup(
                    query.source, query.item, record_access=False, retry=retry, faults=plane
                )
                total_hops += result.latency
                cache.store(query.item, world.version(query.item))
            else:
                result = ring.lookup(
                    query.source, query.item, record_access=False, retry=retry, faults=plane
                )
                total_hops += result.latency
        stale = sum(cache.stale_hits for cache in caches.values())
        hits = sum(cache.hits for cache in caches.values())
        reports[strategy] = ItemChurnReport(
            strategy=strategy,
            mean_hops=total_hops / issued if issued else 0.0,
            stale_answer_rate=stale / issued if issued else 0.0,
            queries=issued,
            cache_hit_rate=hits / issued if issued else 0.0,
        )
    return reports
