"""Span profiler: per-phase work counters with volatile wall times.

The telemetry plane needs to answer "how much *maintenance work* did the
system do, and when?" — selection recomputes, pointer updates,
stabilization messages, retry attempts. Those counts are deterministic
functions of (config, seed), so they live in the reproducible part of
every METRICS_v1 document. The *wall time* spent inside each phase is
not deterministic (it depends on the machine), so it is quarantined in a
``"volatile"`` sub-dict that
:func:`repro.obs.manifest.strip_volatile` removes before any byte
comparison — exactly the manifest convention.

A span is opened as a context manager::

    with spans.span("selection.recompute"):
        result = policy(problem, rng, overlay)
    spans.add_work("selection.pointer_updates", changed)

``span()`` counts one entry and accumulates ``perf_counter`` elapsed
time; ``add_work()`` accumulates a plain work counter (how many pointers
moved, how many messages were sent) without timing anything.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["SpanProfiler"]


class SpanProfiler:
    """Accumulates per-phase counts, work units, and volatile wall time."""

    __slots__ = ("counts", "work", "wall_s")

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.work: dict[str, float] = {}
        self.wall_s: dict[str, float] = {}

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Count one entry into phase ``name`` and time it (volatile)."""
        self.counts[name] = self.counts.get(name, 0) + 1
        started = time.perf_counter()
        try:
            yield
        finally:
            self.wall_s[name] = self.wall_s.get(name, 0.0) + (
                time.perf_counter() - started
            )

    def add_work(self, name: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` work units under phase ``name``."""
        self.work[name] = self.work.get(name, 0.0) + amount

    def to_dict(self) -> dict:
        """JSON-ready snapshot: deterministic counts/work at the top,
        wall times under ``"volatile"`` (stripped before comparisons)."""
        return {
            "counts": dict(sorted(self.counts.items())),
            "work": {
                name: int(value) if float(value).is_integer() else value
                for name, value in sorted(self.work.items())
            },
            "volatile": {
                "wall_s": {name: round(value, 6) for name, value in sorted(self.wall_s.items())}
            },
        }
