"""Round-clocked telemetry: metrics registry, span profiler, exports.

The telemetry plane answers "what did the system *do over time*?" with
deterministic, diffable artifacts: every metric is sampled on a
simulation round clock (query chunks in stable mode, virtual-time
intervals under churn), so two runs of the same (config, seed) emit
byte-identical ``METRICS_v1`` documents — after
:func:`repro.obs.manifest.strip_volatile` — at any worker count.

Import discipline: the simulation / overlay / fault layers never import
this package (they duck-type the telemetry handle they are passed);
only drivers and the CLI construct :class:`RoundTelemetry`. That keeps
``repro.sim`` ↔ ``repro.telemetry`` acyclic.
"""

from repro.telemetry.export import (
    METRICS_SCHEMA,
    OpenMetricsSample,
    build_metrics_document,
    parse_openmetrics,
    to_openmetrics,
    write_metrics,
)
from repro.telemetry.registry import (
    LATENCY_BUCKET_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.telemetry.runtime import DEFAULT_ROUNDS, RoundTelemetry, TelemetryRecorder, normalize
from repro.telemetry.spans import SpanProfiler

__all__ = [
    "METRICS_SCHEMA",
    "DEFAULT_ROUNDS",
    "LATENCY_BUCKET_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "OpenMetricsSample",
    "RoundTelemetry",
    "SpanProfiler",
    "TelemetryRecorder",
    "build_metrics_document",
    "normalize",
    "parse_openmetrics",
    "to_openmetrics",
    "write_metrics",
]
