"""Round-clocked telemetry cells: run an instrumented comparison.

:func:`metrics_cell` replays exactly the universe the runners build for
one policy — same registry substreams, same overlay, same workload, same
fault/churn realization — with a fresh :class:`RoundTelemetry` attached.
Telemetry only observes, so the cell's summary statistics are
bit-identical to the uninstrumented run; ``tests/telemetry`` pins this.

:func:`metrics_document` fans the two policies over worker processes
with the same order-preserving, seed-rebuilding machinery as the other
drivers, then assembles the ``METRICS_v1`` document. Because every task
rebuilds its own seeds and the registry samples on the round clock (never
wall time), the stripped document is byte-identical at any ``--jobs``.
"""

from __future__ import annotations

import math

from repro.sim.metrics import HopStatistics
from repro.sim.runner import (
    ChurnConfig,
    ExperimentConfig,
    _round_boundaries,
    _run_churn_once,
    _run_stable_once,
)
from repro.telemetry.export import build_metrics_document
from repro.telemetry.runtime import DEFAULT_ROUNDS, RoundTelemetry
from repro.util.errors import ConfigurationError
from repro.util.parallel import run_tasks

__all__ = ["metrics_cell", "metrics_document"]

_POLICIES = ("optimal", "oblivious")


def _json_float(value: float) -> float | None:
    """NaN is not valid strict JSON; degrade it to ``null``."""
    return None if isinstance(value, float) and math.isnan(value) else value


def _stats_summary(stats: HopStatistics) -> dict:
    return {
        "lookups": stats.lookups,
        "successes": stats.successes,
        "failures": stats.failures,
        "mean_hops": _json_float(stats.mean_hops),
        "failure_rate": stats.failure_rate,
        "timeout_rate": stats.timeout_rate,
    }


def metrics_cell(config: ExperimentConfig, policy: str, rounds: int = DEFAULT_ROUNDS) -> dict:
    """Run one policy's universe with telemetry attached.

    Stable configs chunk the query stream into ``rounds`` near-equal
    rounds; :class:`~repro.sim.runner.ChurnConfig` configs sample at
    ``rounds`` equal virtual-time intervals. Returns a picklable cell
    payload: metric series, span profile, and summary statistics.
    """
    if policy not in _POLICIES:
        raise ConfigurationError(f"unknown policy {policy!r}; expected one of {_POLICIES}")
    telemetry = RoundTelemetry(
        rounds=rounds,
        const_labels={"overlay": config.overlay, "policy": policy},
    )
    if isinstance(config, ChurnConfig):
        stats = _run_churn_once(config, policy, telemetry=telemetry)
    else:
        stats = _run_stable_once(config, policy, telemetry=telemetry)
    return {
        "policy": policy,
        "rounds_sampled": telemetry.registry.rounds_sampled,
        "metrics": telemetry.registry.to_payload(),
        "spans": telemetry.spans.to_dict(),
        "stats": _stats_summary(stats),
    }


def _metrics_task(task: tuple[ExperimentConfig, str, int]) -> dict:
    config, policy, rounds = task
    return metrics_cell(config, policy, rounds=rounds)


def metrics_document(
    config: ExperimentConfig,
    rounds: int = DEFAULT_ROUNDS,
    jobs: int | None = None,
) -> dict:
    """Run both policies (optionally in parallel) and assemble METRICS_v1.

    Each policy task rebuilds its own seed registry from the
    config-embedded seed, so the document is identical (manifest/span
    volatile blocks aside) at any worker count.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds!r}")
    tasks = [(config, policy, rounds) for policy in _POLICIES]
    cells = run_tasks(_metrics_task, tasks, jobs=jobs)
    if isinstance(config, ChurnConfig):
        round_clock = {
            "mode": "churn",
            "rounds": rounds,
            "interval_s": config.duration / rounds,
            "duration_s": config.duration,
        }
    else:
        round_clock = {
            "mode": "stable",
            "rounds": rounds,
            "boundaries": _round_boundaries(config.queries, rounds),
            "queries": config.queries,
        }
    return build_metrics_document(
        config,
        {cell["policy"]: cell for cell in cells},
        round_clock,
    )
