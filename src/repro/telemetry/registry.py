"""Labelled metrics registry driven by a deterministic round clock.

The paper's dynamic claims (Sections V and VII) are about *evolution*:
incremental maintenance keeps auxiliary pointers near-optimal while
popularity drifts and peers churn. Evidence for that is a time series,
not a scalar — so this registry samples every metric on a **round
clock**: simulation rounds (query chunks in stable mode, fixed virtual-
time intervals in churn mode), never wall time. Two runs of the same
(config, seed) therefore emit bit-identical series at any ``--jobs``
fan-out, which is what lets CI diff telemetry documents for determinism.

Three metric kinds, deliberately Prometheus-shaped:

* :class:`Counter` — monotonically increasing totals (lookups, timeouts,
  injected faults, recompute spans);
* :class:`Gauge` — point-in-time values (alive nodes, per-round mean
  cost, per-round timeout rate);
* :class:`Histogram` — fixed log-spaced buckets over the hop/latency
  proxy. The bucket edges are *shared* with
  :meth:`repro.sim.metrics.HopStatistics.to_histogram`, so telemetry,
  trace reconciliation and reporting all bin latency identically.

A family (:class:`MetricFamily`) owns the name/help/type; ``labels()``
returns one child per label set. :meth:`MetricsRegistry.sample_round`
advances the round clock and appends every child's current value to its
series — children created mid-run simply start at their first sampled
round (each series entry carries its round index explicitly).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterator

from repro.sim.metrics import LATENCY_BUCKET_EDGES
from repro.util.errors import ConfigurationError

__all__ = [
    "LATENCY_BUCKET_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
]

_KINDS = ("counter", "gauge", "histogram")


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value", "series")
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0
        self.series: list[list] = []

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counters only go up, got increment {amount!r}")
        self.value += amount

    def sample(self, round_index: int) -> None:
        self.series.append([round_index, _json_value(self.value)])


class Gauge:
    """A point-in-time value (may go up, down, or be NaN for 'no data')."""

    __slots__ = ("value", "series")
    kind = "gauge"

    def __init__(self) -> None:
        self.value = float("nan")
        self.series: list[list] = []

    def set(self, value: float) -> None:
        self.value = float(value)

    def sample(self, round_index: int) -> None:
        self.series.append([round_index, _json_value(self.value)])


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``edges`` are inclusive upper bounds; an implicit +inf bucket closes
    the range. Defaults to the canonical latency binning
    (:data:`~repro.sim.metrics.LATENCY_BUCKET_EDGES`).
    """

    __slots__ = ("edges", "counts", "sum", "count", "series")
    kind = "histogram"

    def __init__(self, edges: tuple[float, ...] = LATENCY_BUCKET_EDGES) -> None:
        if not edges or list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ConfigurationError(f"bucket edges must be strictly increasing, got {edges!r}")
        self.edges = tuple(float(edge) for edge in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.sum = 0.0
        self.count = 0

        self.series: list[list] = []

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts (last entry == ``count``)."""
        running = 0
        out = []
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def sample(self, round_index: int) -> None:
        self.series.append(
            [round_index, self.cumulative(), _json_value(self.sum), self.count]
        )


class MetricFamily:
    """One named metric plus its labelled children."""

    __slots__ = ("name", "help", "kind", "edges", "_children")

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        edges: tuple[float, ...] = LATENCY_BUCKET_EDGES,
    ) -> None:
        if kind not in _KINDS:
            raise ConfigurationError(f"unknown metric kind {kind!r}; expected one of {_KINDS}")
        self.name = name
        self.help = help_text
        self.kind = kind
        self.edges = edges
        self._children: dict[tuple[tuple[str, str], ...], Counter | Gauge | Histogram] = {}

    def labels(self, **labels: str) -> Counter | Gauge | Histogram:
        """The child for this label set (created on first use)."""
        key = tuple(sorted((name, str(value)) for name, value in labels.items()))
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self.edges)
            self._children[key] = child
        return child

    def children(self) -> Iterator[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        """(labels, child) pairs in deterministic (sorted-label) order."""
        for key in sorted(self._children):
            yield dict(key), self._children[key]


class MetricsRegistry:
    """All metric families of one run, plus the round clock.

    ``const_labels`` (e.g. overlay and policy) are attached to every
    exported series without being repeated at each call site.
    """

    def __init__(self, const_labels: dict[str, str] | None = None) -> None:
        self.const_labels = dict(const_labels or {})
        self.round = -1  # no round sampled yet
        self._families: dict[str, MetricFamily] = {}

    # -- family constructors ------------------------------------------
    def counter(self, name: str, help_text: str) -> MetricFamily:
        return self._family(name, help_text, "counter")

    def gauge(self, name: str, help_text: str) -> MetricFamily:
        return self._family(name, help_text, "gauge")

    def histogram(
        self,
        name: str,
        help_text: str,
        edges: tuple[float, ...] = LATENCY_BUCKET_EDGES,
    ) -> MetricFamily:
        return self._family(name, help_text, "histogram", edges)

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        edges: tuple[float, ...] = LATENCY_BUCKET_EDGES,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, help_text, kind, edges)
            self._families[name] = family
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {family.kind}, not a {kind}"
            )
        return family

    # -- round clock ---------------------------------------------------
    def sample_round(self) -> int:
        """Advance the round clock and snapshot every child's value.

        Returns the round index just sampled (0-based).
        """
        self.round += 1
        for family in self._families.values():
            for __, child in family.children():
                child.sample(self.round)
        return self.round

    @property
    def rounds_sampled(self) -> int:
        return self.round + 1

    # -- export --------------------------------------------------------
    def to_payload(self) -> list[dict]:
        """JSON-ready series list, deterministically ordered by
        (name, labels); each entry carries its full per-round series."""
        payload = []
        for name in sorted(self._families):
            family = self._families[name]
            for labels, child in family.children():
                entry: dict = {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "labels": {**self.const_labels, **labels},
                    "series": child.series,
                }
                if family.kind == "histogram":
                    entry["edges"] = list(child.edges)
                else:
                    entry["value"] = _json_value(child.value)
                payload.append(entry)
        return payload


def _json_value(value: float) -> float | int | None:
    """Strict-JSON scalar: NaN degrades to null, integral floats to int."""
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if value.is_integer():
            return int(value)
    return value
