"""METRICS_v1 JSON documents and the OpenMetrics text exposition.

Two export surfaces over the same round-clocked registry:

* :func:`build_metrics_document` — the canonical ``METRICS_v1`` JSON:
  a MANIFEST_v1 provenance block, the round-clock description, and one
  cell per policy (metric series, span profile, summary statistics).
  Everything except the manifest/span ``volatile`` sub-dicts is a pure
  function of (config, seed), so two runs byte-match after
  :func:`repro.obs.manifest.strip_volatile` at any worker count.
* :func:`to_openmetrics` — a Prometheus/OpenMetrics text exposition of
  the same series. The **round index is the sample timestamp**: scalar
  series emit one timestamped sample per round, histograms emit their
  final cumulative snapshot (``_bucket``/``_sum``/``_count``) stamped
  with the last round. The exposition ends with ``# EOF`` per the
  OpenMetrics framing rule.

:func:`parse_openmetrics` is the minimal strict parser the test suite
and CI use to certify that the exposition actually parses: TYPE/HELP
metadata before samples, label syntax, monotone cumulative buckets,
terminal ``# EOF``.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass

from repro.obs.manifest import build_manifest
from repro.util.errors import ConfigurationError

__all__ = [
    "METRICS_SCHEMA",
    "build_metrics_document",
    "to_openmetrics",
    "parse_openmetrics",
    "OpenMetricsSample",
]

METRICS_SCHEMA = "METRICS_v1"

_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>\S+))?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def build_metrics_document(config, cells: dict[str, dict], round_clock: dict) -> dict:
    """Assemble the top-level METRICS_v1 document.

    ``cells`` maps policy name to the per-policy payload produced by the
    driver (metrics series, spans, stats); ``round_clock`` describes the
    clock (round count plus the stable chunk sizes or churn interval).
    """
    return {
        "schema": METRICS_SCHEMA,
        "overlay": config.overlay,
        "mode": round_clock.get("mode", "stable"),
        "manifest": build_manifest(config, extra={"rounds": round_clock.get("rounds")}),
        "round_clock": round_clock,
        "cells": {name: cells[name] for name in sorted(cells)},
    }


def write_metrics(document: dict, path) -> None:
    """Write a METRICS_v1 document as canonical, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(document, sort_keys=True, indent=2) + "\n")


# ----------------------------------------------------------------------
# OpenMetrics exposition
# ----------------------------------------------------------------------


def to_openmetrics(document: dict) -> str:
    """Render a METRICS_v1 document as an OpenMetrics text exposition."""
    lines: list[str] = []
    seen_meta: set[str] = set()
    entries = []
    for cell in document["cells"].values():
        entries.extend(cell["metrics"])
    # Group all samples of one family together (metadata once per name).
    entries.sort(key=lambda entry: (entry["name"], sorted(entry["labels"].items())))
    for entry in entries:
        name = entry["name"]
        if name not in seen_meta:
            seen_meta.add(name)
            lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
            lines.append(f"# TYPE {name} {entry['type']}")
        if entry["type"] == "histogram":
            lines.extend(_histogram_lines(entry))
        else:
            label_text = _label_text(entry["labels"])
            for round_index, value in entry["series"]:
                lines.append(f"{name}{label_text} {_value_text(value)} {round_index}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _histogram_lines(entry: dict) -> list[str]:
    """Final cumulative snapshot of one histogram series, stamped with
    the last sampled round."""
    if not entry["series"]:
        return []
    round_index, cumulative, total, count = entry["series"][-1]
    lines = []
    edges = [*entry["edges"], float("inf")]
    for edge, cum in zip(edges, cumulative):
        labels = _label_text({**entry["labels"], "le": _le_text(edge)})
        lines.append(f"{entry['name']}_bucket{labels} {cum} {round_index}")
    base = _label_text(entry["labels"])
    lines.append(f"{entry['name']}_sum{base} {_value_text(total)} {round_index}")
    lines.append(f"{entry['name']}_count{base} {count} {round_index}")
    return lines


def _label_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _le_text(edge: float) -> str:
    if math.isinf(edge):
        return "+Inf"
    return f"{edge:g}"


def _value_text(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


# ----------------------------------------------------------------------
# Minimal strict parser (used by tests and the CI determinism step)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OpenMetricsSample:
    """One parsed exposition sample."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float
    timestamp: float | None


def parse_openmetrics(text: str) -> list[OpenMetricsSample]:
    """Parse an exposition, enforcing the invariants we rely on.

    Raises :class:`ConfigurationError` on malformed lines, samples whose
    family has no ``# TYPE`` metadata, non-monotone histogram buckets,
    or a missing terminal ``# EOF``.
    """
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        raise ConfigurationError("exposition must end with '# EOF'")
    types: dict[str, str] = {}
    samples: list[OpenMetricsSample] = []
    bucket_state: dict[tuple, float] = {}
    for line_number, line in enumerate(lines[:-1], start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or not _NAME.fullmatch(parts[2]):
                raise ConfigurationError(f"line {line_number}: malformed TYPE line {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            raise ConfigurationError(f"line {line_number}: unknown comment {line!r}")
        match = _SAMPLE.match(line)
        if match is None:
            raise ConfigurationError(f"line {line_number}: malformed sample {line!r}")
        name = match.group("name")
        family = _family_name(name)
        if family not in types:
            raise ConfigurationError(
                f"line {line_number}: sample {name!r} has no TYPE metadata"
            )
        raw_labels = match.group("labels") or ""
        labels = tuple((key, value) for key, value in _LABEL.findall(raw_labels))
        parsed = _parse_value(match.group("value"), line_number)
        timestamp = (
            float(match.group("timestamp")) if match.group("timestamp") is not None else None
        )
        if name.endswith("_bucket"):
            key = (name, tuple(pair for pair in labels if pair[0] != "le"))
            previous = bucket_state.get(key, 0.0)
            if parsed < previous:
                raise ConfigurationError(
                    f"line {line_number}: histogram bucket counts must be cumulative"
                )
            bucket_state[key] = parsed
        samples.append(OpenMetricsSample(name, labels, parsed, timestamp))
    return samples


def _family_name(sample_name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            trimmed = sample_name[: -len(suffix)]
            if trimmed:
                return trimmed
    return sample_name


def _parse_value(text: str, line_number: int) -> float:
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(f"line {line_number}: bad sample value {text!r}") from None
