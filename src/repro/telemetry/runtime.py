"""The live telemetry runtime threaded through the simulation layers.

:class:`RoundTelemetry` bundles everything one instrumented universe
needs: a :class:`~repro.telemetry.registry.MetricsRegistry`, a
:class:`~repro.telemetry.spans.SpanProfiler`, and a
:class:`TelemetryRecorder` that plugs into the routing layers' existing
``TraceRecorder`` event path — so the hot loops gain **no new hook
sites**, and the zero-cost-when-disabled contract the obs plane already
certifies carries over unchanged (a disabled recorder is normalized to
``None`` at route entry; a disabled telemetry is normalized to ``None``
by every instrumented layer via :func:`normalize`).

Instrumented call sites and what they record:

* both routers (via ``record_lookup``): lookup totals, failures, the
  latency histogram, per-pointer-class hop counters, retry attempts,
  per-verdict timeout counters, backoff penalty;
* overlay maintenance (``recompute_auxiliary`` / ``stabilize``):
  selection-recompute spans, pointer-update work, stabilization
  messages;
* the churn process: crash/rejoin transition counters;
* the fault plane wiring: injected-fault counters by kind.

:meth:`RoundTelemetry.sample_round` is the round-clock tick the runners
call once per simulation round: it derives the per-round gauges (mean
cost, timeout rate, lookup volume — deltas of the running counters) and
snapshots every series.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.recorder import POINTER_CLASSES, VERDICTS, HopEvent
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import SpanProfiler
from repro.util.errors import ConfigurationError

__all__ = ["TelemetryRecorder", "RoundTelemetry", "normalize"]

#: Default round count when a driver does not choose one.
DEFAULT_ROUNDS = 12


def normalize(telemetry: "RoundTelemetry | None") -> "RoundTelemetry | None":
    """``None`` unless ``telemetry`` is enabled — the single idiom every
    instrumented layer uses, mirroring the trace recorder normalization,
    so the disabled path pays one ``is not None`` branch and nothing
    else."""
    if telemetry is not None and telemetry.enabled:
        return telemetry
    return None


class TelemetryRecorder:
    """A ``TraceRecorder`` that folds every lookup into the registry.

    Reuses the routing layers' observe-only event path: one call per
    finished lookup with the result object and its hop events. All
    children are pre-created so the per-lookup cost is dictionary-free
    attribute access plus counter increments.
    """

    __slots__ = (
        "enabled",
        "_lookups",
        "_successes",
        "_failures",
        "_latency_sum",
        "_latency",
        "_hops_by_class",
        "_timeouts_by_verdict",
        "_retried",
        "_penalty",
    )

    def __init__(self, registry: MetricsRegistry, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lookups = registry.counter(
            "repro_lookups_total", "Lookups routed (all outcomes)."
        ).labels()
        self._successes = registry.counter(
            "repro_lookup_successes_total", "Lookups that reached the responsible node."
        ).labels()
        self._failures = registry.counter(
            "repro_lookup_failures_total", "Lookups stranded before the responsible node."
        ).labels()
        self._latency_sum = registry.counter(
            "repro_lookup_cost_total",
            "Sum of the per-lookup latency proxy (hops + timeouts + penalty) "
            "over successful lookups.",
        ).labels()
        self._latency = registry.histogram(
            "repro_lookup_cost",
            "Latency proxy of successful lookups (canonical log-spaced buckets).",
        ).labels()
        hops = registry.counter(
            "repro_hops_total", "Delivered forwards by resolving pointer class."
        )
        self._hops_by_class = {name: hops.labels(pointer_class=name) for name in POINTER_CLASSES}
        timeouts = registry.counter(
            "repro_timeouts_total", "Failed delivery attempts by fault verdict."
        )
        self._timeouts_by_verdict = {name: timeouts.labels(verdict=name) for name in VERDICTS}
        self._retried = registry.counter(
            "repro_retry_attempts_total",
            "Extra delivery attempts beyond the first, across all targets.",
        ).labels()
        self._penalty = registry.counter(
            "repro_backoff_penalty_total",
            "Extra backoff latency charged beyond the one-hop-per-timeout baseline.",
        ).labels()

    def record_lookup(self, result, events: Sequence[HopEvent]) -> None:
        self._lookups.inc()
        if getattr(result, "succeeded", False):
            self._successes.inc()
            self._latency_sum.inc(result.latency)
            self._latency.observe(result.latency)
        else:
            self._failures.inc()
        for event in events:
            if event.delivered:
                self._hops_by_class[event.pointer_class].inc()
            if event.attempts > 1:
                self._retried.inc(event.attempts - 1)
            for verdict in event.verdicts:
                self._timeouts_by_verdict[verdict].inc()
            if event.penalty:
                self._penalty.inc(event.penalty)


class RoundTelemetry:
    """One universe's telemetry: registry + spans + recorder + round clock.

    ``rounds`` fixes how many round-clock samples the driving runner
    takes (query chunks in stable mode, equal virtual-time intervals in
    churn mode). ``enabled=False`` builds the inert variant every layer
    normalizes away — the shape the ``telemetry_overhead`` bench gate
    measures.
    """

    __slots__ = ("enabled", "rounds", "registry", "spans", "recorder", "_last", "_gauges")

    def __init__(
        self,
        rounds: int = DEFAULT_ROUNDS,
        const_labels: dict[str, str] | None = None,
        enabled: bool = True,
    ) -> None:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds!r}")
        self.enabled = enabled
        self.rounds = rounds
        self.registry = MetricsRegistry(const_labels)
        self.spans = SpanProfiler()
        self.recorder = TelemetryRecorder(self.registry, enabled=enabled)
        self._last: dict[str, float] = {}
        gauges = self.registry
        self._gauges = {
            "alive": gauges.gauge("repro_alive_nodes", "Live overlay nodes.").labels(),
            "round_cost": gauges.gauge(
                "repro_round_cost",
                "Mean latency proxy of the lookups that succeeded this round.",
            ).labels(),
            "round_timeout_rate": gauges.gauge(
                "repro_round_timeout_rate", "Timeouts per lookup this round."
            ).labels(),
            "round_lookups": gauges.gauge(
                "repro_round_lookups", "Lookups routed this round."
            ).labels(),
            "round_failure_rate": gauges.gauge(
                "repro_round_failure_rate", "Failed-lookup fraction this round."
            ).labels(),
            "virtual_time": gauges.gauge(
                "repro_virtual_time_seconds",
                "Simulation clock at the round boundary (churn mode only).",
            ).labels(),
        }

    @classmethod
    def disabled(cls) -> "RoundTelemetry":
        """The inert variant: every layer normalizes it to ``None``."""
        return cls(rounds=1, enabled=False)

    # -- instrumentation hooks (all no-ops when normalized away) -------
    def span(self, name: str):
        """Time-and-count one maintenance phase; also feeds the round
        series so per-phase work is visible per round."""
        self._span_counter(name).inc()
        return self.spans.span(name)

    def add_work(self, name: str, amount: float = 1.0) -> None:
        if amount:
            self.spans.add_work(name, amount)
            self._work_counter(name).inc(amount)

    def record_churn(self, kind: str) -> None:
        self.registry.counter(
            "repro_churn_transitions_total", "Churn-process node transitions by kind."
        ).labels(kind=kind).inc()

    def record_fault(self, kind: str, amount: float = 1.0) -> None:
        self.registry.counter(
            "repro_faults_injected_total", "Injected faults by kind."
        ).labels(kind=kind).inc(amount)

    def record_budget(self, kind: str, amount: float = 1.0) -> None:
        """Budget-rebalancer activity: rounds scored, rounds skipped for
        lack of drift, and single-pointer moves applied."""
        self.registry.counter(
            "repro_budget_rebalance_total", "Budget-rebalancer activity by kind."
        ).labels(kind=kind).inc(amount)

    def _span_counter(self, name: str):
        return self.registry.counter(
            "repro_span_entries_total", "Profiled maintenance-phase entries by span."
        ).labels(span=name)

    def _work_counter(self, name: str):
        return self.registry.counter(
            "repro_span_work_total", "Work units accumulated by span."
        ).labels(span=name)

    # -- the round-clock tick ------------------------------------------
    def sample_round(self, alive: int | None = None, now: float | None = None) -> int:
        """Derive the per-round gauges from counter deltas, then snapshot
        every series at the next round index. Called by the runners once
        per simulation round; returns the sampled round index."""
        if alive is not None:
            self._gauges["alive"].set(alive)
        if now is not None:
            self._gauges["virtual_time"].set(now)
        recorder = self.recorder
        lookups = recorder._lookups.value
        successes = recorder._successes.value
        failures = recorder._failures.value
        cost = recorder._latency_sum.value
        timeouts = sum(child.value for child in recorder._timeouts_by_verdict.values())
        d_lookups = lookups - self._last.get("lookups", 0.0)
        d_successes = successes - self._last.get("successes", 0.0)
        d_failures = failures - self._last.get("failures", 0.0)
        d_cost = cost - self._last.get("cost", 0.0)
        d_timeouts = timeouts - self._last.get("timeouts", 0.0)
        self._last = {
            "lookups": lookups,
            "successes": successes,
            "failures": failures,
            "cost": cost,
            "timeouts": timeouts,
        }
        nan = float("nan")
        self._gauges["round_lookups"].set(d_lookups)
        self._gauges["round_cost"].set(d_cost / d_successes if d_successes else nan)
        self._gauges["round_timeout_rate"].set(d_timeouts / d_lookups if d_lookups else nan)
        self._gauges["round_failure_rate"].set(d_failures / d_lookups if d_lookups else nan)
        return self.registry.sample_round()
