"""Churn process: alternating exponential up/down node sessions.

Section VI-C: "the n nodes crash and re-join the system alternately. Once
a node joins (or fails), it remains alive (or dead) for a mean duration of
900 seconds with the duration being sampled from an exponential
distribution." The defaults below reproduce that setting; the mean
lifetimes are configurable for sensitivity studies.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.sim.events import EventScheduler
from repro.util.validation import require_positive

__all__ = ["ChurnTarget", "ChurnProcess"]


class ChurnTarget(Protocol):
    """What the churn process drives: any overlay with crash/rejoin."""

    def crash(self, node_id: int) -> None: ...

    def rejoin(self, node_id: int) -> None: ...

    def alive_count(self) -> int: ...


class ChurnProcess:
    """Drives alternating crash/rejoin cycles for a fixed node population.

    Parameters
    ----------
    scheduler:
        The event loop to schedule transitions on.
    target:
        The overlay being churned.
    node_ids:
        The full (fixed) node population.
    rng:
        Randomness source for the exponential session lengths.
    mean_uptime / mean_downtime:
        Mean session lengths in (virtual) seconds; the paper uses 900 for
        both.
    min_alive:
        Crashes are skipped (the node draws a fresh uptime instead) when
        they would push the live population below this floor, keeping the
        overlay non-degenerate.
    telemetry:
        Optional telemetry runtime (duck-typed, normalized by the caller);
        when present, every transition bumps a churn counter by kind.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        target: ChurnTarget,
        node_ids: list[int],
        rng: random.Random,
        mean_uptime: float = 900.0,
        mean_downtime: float = 900.0,
        min_alive: int = 2,
        telemetry=None,
    ) -> None:
        require_positive(mean_uptime, "mean_uptime")
        require_positive(mean_downtime, "mean_downtime")
        self.scheduler = scheduler
        self.target = target
        self.node_ids = list(node_ids)
        self.rng = rng
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self.min_alive = min_alive
        self.telemetry = telemetry
        self.crashes = 0
        self.rejoins = 0

    def start(self) -> None:
        """Arm the first transition for every node (all assumed alive)."""
        for node_id in self.node_ids:
            self._schedule_crash(node_id)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _schedule_crash(self, node_id: int) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_uptime)
        self.scheduler.schedule(delay, lambda: self._crash(node_id))

    def _schedule_rejoin(self, node_id: int) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_downtime)
        self.scheduler.schedule(delay, lambda: self._rejoin(node_id))

    def _crash(self, node_id: int) -> None:
        if self.target.alive_count() <= self.min_alive:
            # Too few nodes up: postpone by drawing another uptime.
            if self.telemetry is not None:
                self.telemetry.record_churn("crash_deferred")
            self._schedule_crash(node_id)
            return
        self.target.crash(node_id)
        self.crashes += 1
        if self.telemetry is not None:
            self.telemetry.record_churn("crash")
        self._schedule_rejoin(node_id)

    def _rejoin(self, node_id: int) -> None:
        self.target.rejoin(node_id)
        self.rejoins += 1
        if self.telemetry is not None:
            self.telemetry.record_churn("rejoin")
        self._schedule_crash(node_id)
