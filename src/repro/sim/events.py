"""A minimal discrete-event scheduler for the churn simulations.

Classic calendar-queue design: a binary heap of ``(time, sequence,
event)`` triples. The sequence number makes ordering total (and therefore
runs reproducible) when events share a timestamp, and doubles as a handle
for O(1) cancellation via lazy deletion.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.util.errors import SimulationError

__all__ = ["EventScheduler", "ScheduledEvent"]


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "sequence", "action", "cancelled")

    def __init__(self, time: float, sequence: int, action: Callable[[], None]) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


class EventScheduler:
    """Priority-queue event loop with virtual time.

    Example
    -------
    >>> scheduler = EventScheduler()
    >>> fired = []
    >>> _ = scheduler.schedule(5.0, lambda: fired.append(scheduler.now))
    >>> scheduler.run_until(10.0)
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[ScheduledEvent] = []
        self._sequence = 0
        self._fired = 0

    def __len__(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def events_fired(self) -> int:
        """Total events executed so far."""
        return self._fired

    def schedule(self, delay: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = ScheduledEvent(self.now + delay, self._sequence, action)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` at absolute virtual ``time``."""
        return self.schedule(time - self.now, action)

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` when drained."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event; returns ``False`` when none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        if event.time < self.now:
            raise SimulationError("event heap corrupted: time went backwards")
        self.now = event.time
        self._fired += 1
        event.action()
        return True

    def run_until(self, end_time: float) -> None:
        """Run every event with timestamp <= ``end_time``, then advance the
        clock to exactly ``end_time``."""
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
        if end_time > self.now:
            self.now = end_time

    def run(self) -> None:
        """Drain the queue completely (careful with self-rescheduling events)."""
        while self.step():
            pass

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
