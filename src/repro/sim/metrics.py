"""Lookup-performance metrics and the paper's comparison statistic.

The evaluation's single plotted metric (Section VI-A) is the **percentage
reduction in the average number of hops** of the frequency-aware scheme
relative to the frequency-oblivious scheme. :class:`HopStatistics`
accumulates per-lookup results; :func:`percent_reduction` computes the
plotted number; :class:`ComparisonResult` bundles one experimental cell.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Protocol

from repro.util.errors import ConfigurationError

__all__ = [
    "LATENCY_BUCKET_EDGES",
    "HopStatistics",
    "ComparisonResult",
    "percent_reduction",
]

#: Canonical log-spaced (~sqrt(2) steps) upper bucket edges for the
#: hop/latency proxy, shared by :meth:`HopStatistics.to_histogram` and the
#: telemetry Histogram (:mod:`repro.telemetry.registry`) so every layer
#: bins latency identically; an implicit +inf bucket closes the range.
LATENCY_BUCKET_EDGES = (
    1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 11.0, 16.0, 23.0, 32.0, 45.0, 64.0, 91.0, 128.0,
)


class _LookupLike(Protocol):
    hops: int
    timeouts: int
    succeeded: bool

    @property
    def latency(self) -> int: ...


@dataclass
class HopStatistics:
    """Streaming accumulator of lookup outcomes.

    ``mean_hops`` averages the latency proxy (forwards + timeout
    penalties) of *successful* lookups; failures are tracked separately as
    a rate, mirroring how DHT evaluations usually separate the two.
    """

    lookups: int = 0
    successes: int = 0
    failures: int = 0
    total_hops: int = 0
    total_timeouts: int = 0
    _sum_latency: float = 0.0
    _sum_latency_sq: float = 0.0
    per_lookup: list[int] = field(default_factory=list)
    keep_samples: bool = False

    def record(self, result: _LookupLike) -> None:
        """Fold one lookup outcome into the statistics."""
        self.lookups += 1
        self.total_timeouts += result.timeouts
        if not result.succeeded:
            self.failures += 1
            return
        self.successes += 1
        self.total_hops += result.hops
        latency = result.latency
        self._sum_latency += latency
        self._sum_latency_sq += latency * latency
        if self.keep_samples:
            self.per_lookup.append(latency)

    @property
    def mean_hops(self) -> float:
        """Average latency (hops + timeouts) of successful lookups."""
        if self.successes == 0:
            return float("nan")
        return self._sum_latency / self.successes

    @property
    def stddev_hops(self) -> float:
        """Sample standard deviation of per-lookup latency."""
        if self.successes < 2:
            return float("nan")
        mean = self.mean_hops
        variance = (self._sum_latency_sq - self.successes * mean * mean) / (self.successes - 1)
        return math.sqrt(max(variance, 0.0))

    @property
    def failure_rate(self) -> float:
        """Fraction of lookups that did not reach the responsible node."""
        if self.lookups == 0:
            return 0.0
        return self.failures / self.lookups

    @property
    def timeout_rate(self) -> float:
        """Average timeouts per lookup (fault/staleness pressure gauge)."""
        if self.lookups == 0:
            return 0.0
        return self.total_timeouts / self.lookups

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of the normal-approximation CI on ``mean_hops``."""
        if self.successes < 2:
            return float("nan")
        return z * self.stddev_hops / math.sqrt(self.successes)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of per-lookup latency.

        Order statistics need retained samples (the streaming moments
        cannot recover them), so without ``keep_samples=True`` — or with
        an empty sample set, e.g. a cell where every lookup failed — the
        result is ``nan``: reporting paths degrade a column instead of
        crashing mid-report. Uses the nearest-rank method.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q!r}")
        if not self.keep_samples or not self.per_lookup:
            return float("nan")
        ordered = sorted(self.per_lookup)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return float(ordered[rank])

    def latency_percentiles(self) -> dict[str, float]:
        """The reporting trio ``{"p50", "p95", "p99"}`` of the latency
        proxy; all ``nan`` when samples were not kept (see
        :meth:`percentile`)."""
        return {
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def to_histogram(self) -> dict:
        """The retained latency samples binned into the canonical
        log-spaced buckets (:data:`LATENCY_BUCKET_EDGES`), as *cumulative*
        counts plus a final +inf bucket — the exact shape the telemetry
        Histogram exports, so trace reconciliation and round-clocked
        telemetry share one binning.

        Without retained samples (``keep_samples=False``, or a cell where
        every lookup failed) the buckets are all zero and ``count`` is 0,
        mirroring how :meth:`percentile` degrades to ``nan``.
        """
        edges = list(LATENCY_BUCKET_EDGES)
        cumulative = [0] * (len(edges) + 1)
        total = 0.0
        for sample in self.per_lookup if self.keep_samples else ():
            index = bisect_left(edges, sample)
            cumulative[index] += 1
            total += sample
        running = 0
        for index, count in enumerate(cumulative):
            running += count
            cumulative[index] = running
        return {
            "edges": edges,
            "cumulative": cumulative,
            "count": running,
            "sum": total,
        }

    def merge(self, other: "HopStatistics") -> None:
        """Fold another accumulator into this one."""
        self.lookups += other.lookups
        self.successes += other.successes
        self.failures += other.failures
        self.total_hops += other.total_hops
        self.total_timeouts += other.total_timeouts
        self._sum_latency += other._sum_latency
        self._sum_latency_sq += other._sum_latency_sq
        if self.keep_samples:
            self.per_lookup.extend(other.per_lookup)


def percent_reduction(baseline_mean: float, optimized_mean: float) -> float:
    """The paper's plotted metric: ``100 * (baseline - ours) / baseline``.

    Positive values mean the frequency-aware scheme wins. A ``nan`` input
    — the mean of a cell with zero successful lookups, e.g. under 100%
    message loss — yields ``nan`` rather than an exception, so one dead
    grid cell degrades its own row instead of aborting the whole report.
    """
    if math.isnan(baseline_mean) or math.isnan(optimized_mean):
        return float("nan")
    if not baseline_mean > 0:
        raise ConfigurationError(f"baseline mean must be positive, got {baseline_mean!r}")
    return 100.0 * (baseline_mean - optimized_mean) / baseline_mean


@dataclass(frozen=True)
class ComparisonResult:
    """One experimental cell: frequency-aware vs frequency-oblivious."""

    label: str
    optimized: HopStatistics
    baseline: HopStatistics

    @property
    def improvement(self) -> float:
        """Percentage reduction in average hops (the paper's y-axis)."""
        return percent_reduction(self.baseline.mean_hops, self.optimized.mean_hops)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.label}: ours {self.optimized.mean_hops:.3f} hops vs "
            f"oblivious {self.baseline.mean_hops:.3f} hops -> "
            f"{self.improvement:.1f}% reduction"
        )
