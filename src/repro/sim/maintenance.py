"""Routing-table maintenance-cost accounting (paper Section I).

"The maintenance cost of the routing table grows with the size of the
routing table" — every extra auxiliary pointer is another neighbor to
ping each refresh interval. The paper argues the benefit is worth roughly
doubling the table (k ≈ log n) and defers budget-driven sizing to [12].

This module quantifies the trade-off for our overlays:

* :func:`table_sizes` — per-node neighbor counts (core + successors +
  auxiliary for Chord; cells + leaf set for Pastry).
* :func:`maintenance_rate` — expected liveness-probe messages per second
  network-wide for a given stabilization interval: one ping per neighbor
  entry per round, the model the paper sketches.
* :func:`cost_benefit_curve` — sweeps the pointer budget and reports, for
  each ``k``: the measured hop improvement and the extra maintenance
  traffic it costs, i.e. the data behind a "bandwidth budget" decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.runner import ExperimentConfig, run_stable
from repro.util.errors import ConfigurationError
from repro.util.validation import require_positive

__all__ = ["table_sizes", "maintenance_rate", "TradeoffPoint", "cost_benefit_curve"]


def table_sizes(overlay) -> dict[int, int]:
    """Current neighbor-table size of every live node."""
    return {
        node_id: len(overlay.nodes[node_id].neighbor_ids())
        for node_id in overlay.alive_ids()
    }


def maintenance_rate(overlay, stabilize_interval: float) -> float:
    """Liveness-probe messages per second, network-wide.

    One ping per neighbor entry per stabilization round (Section III's
    ping process, extended to auxiliary entries).
    """
    require_positive(stabilize_interval, "stabilize_interval")
    return sum(table_sizes(overlay).values()) / stabilize_interval


@dataclass(frozen=True)
class TradeoffPoint:
    """One budget level in the cost/benefit sweep."""

    k: int
    improvement_pct: float
    optimal_mean_hops: float
    baseline_mean_hops: float
    pings_per_second: float
    mean_table_size: float


def cost_benefit_curve(
    overlay: str = "chord",
    n: int = 128,
    bits: int = 20,
    alpha: float = 1.2,
    budgets: tuple[int, ...] | None = None,
    queries: int = 3000,
    stabilize_interval: float = 25.0,
    seed: int = 0,
) -> list[TradeoffPoint]:
    """Measure hop improvement *and* maintenance traffic per budget ``k``.

    Each point runs a full stable comparison (same machinery as the
    figures) and then prices the optimal scheme's tables at the given
    stabilization interval.
    """
    if budgets is None:
        log_n = max(1, n.bit_length() - 1)
        budgets = (0, log_n, 2 * log_n, 3 * log_n)
    if not budgets:
        raise ConfigurationError("budgets must not be empty")
    points = []
    for k in budgets:
        config = ExperimentConfig(
            overlay=overlay,
            n=n,
            k=k,
            alpha=alpha,
            bits=bits,
            queries=queries,
            seed=seed,
        )
        from repro.sim.runner import _Bench  # reuse the bench plumbing
        from repro.util.rng import SeedSequenceRegistry

        comparison = run_stable(config)
        # Rebuild the optimal-policy universe to price its tables.
        registry = SeedSequenceRegistry(seed)
        bench = _Bench(config, registry)
        bench.seed_all()
        optimal, __ = bench.policies()
        bench.overlay.recompute_all_auxiliary(
            k, optimal, registry.fresh("policy-rng-optimal"), config.frequency_limit
        )
        sizes = table_sizes(bench.overlay)
        points.append(
            TradeoffPoint(
                k=k,
                improvement_pct=comparison.improvement,
                optimal_mean_hops=comparison.optimized.mean_hops,
                baseline_mean_hops=comparison.baseline.mean_hops,
                pings_per_second=maintenance_rate(bench.overlay, stabilize_interval),
                mean_table_size=sum(sizes.values()) / len(sizes),
            )
        )
    return points
