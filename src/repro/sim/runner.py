"""Experiment runners: stable-mode and churn-mode policy comparisons.

Both runners reproduce the paper's measurement protocol (Section VI-A):
build an overlay, give every node a zipf-driven destination distribution,
install auxiliary neighbors under two policies — the paper's
frequency-aware optimum and the frequency-oblivious baseline — route the
*same* query stream under each, and report the percentage reduction in
average hops.

Stable mode (no churn) seeds each node's frequency tracker with its exact
long-run destination distribution (the converged state of observing
queries forever) and routes queries against frozen tables. Churn mode runs
the full discrete-event machinery: exponential on/off node sessions,
staggered per-node stabilization (default every 25 s) and auxiliary
recomputation (every 62.5 s), Poisson queries (4/s), online frequency
learning, and crash-induced state loss — the Section VI-C configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.chord.ring import ChordRing
from repro.chord.ring import oblivious_policy as chord_oblivious
from repro.chord.ring import optimal_policy as chord_optimal
from repro.core import budget as budget_mod
from repro.engine.dispatch import ENGINES, resolve_engine
from repro.faults.injector import apply_stable_faults, install_fault_events, maybe_corrupt
from repro.faults.plane import FaultPlane
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule
from repro.kademlia.network import KademliaNetwork
from repro.kademlia.network import oblivious_policy as kademlia_oblivious
from repro.kademlia.network import optimal_policy as kademlia_optimal
from repro.pastry.network import PastryNetwork
from repro.pastry.network import oblivious_policy as pastry_oblivious
from repro.pastry.network import optimal_policy as pastry_optimal
from repro.sim.churn import ChurnProcess
from repro.sim.events import EventScheduler
from repro.sim.metrics import ComparisonResult, HopStatistics
from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace
from repro.util.rng import SeedSequenceRegistry
from repro.workload.items import ItemCatalog, PopularityModel
from repro.workload.queries import QueryGenerator
from repro.workload.spec import DEFAULT_RATE, WorkloadContext, WorkloadSpec, WorkloadStream

__all__ = ["ExperimentConfig", "ChurnConfig", "run_stable", "run_churn"]

OVERLAYS = ("chord", "pastry", "kademlia")


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one stable-mode comparison cell.

    Defaults follow Section VI-A: 32-bit ids, zipf ``alpha = 1.2``,
    ``k = log2(n)`` when ``k`` is ``None``, identical rankings for Pastry
    and five per-node rankings for Chord.
    """

    overlay: str
    n: int = 1024
    k: int | None = None
    alpha: float = 1.2
    bits: int = 32
    num_items: int | None = None
    num_rankings: int | None = None
    queries: int = 20_000
    frequency_limit: int | None = 256
    seed: int = 0
    pastry_mode: str = "proximity"
    #: When True, nodes learn frequencies by observing ``warmup_queries``
    #: real lookups (the paper's Section III protocol) instead of being
    #: handed their converged destination distribution.
    learned_frequencies: bool = False
    #: Warmup traffic for learned mode; ``None`` = 40 queries per node.
    warmup_queries: int | None = None
    #: Deterministic fault-injection schedule; ``None`` = fault-free.
    faults: FaultSchedule | None = None
    #: Lookup retry policy; ``None`` picks the legacy single-attempt
    #: policy, or :meth:`RetryPolicy.robust` when faults are active.
    retry: RetryPolicy | None = None
    #: Simulation engine: ``"objects"`` (object-graph oracle),
    #: ``"columnar"`` (vectorized struct-of-arrays frontier), or
    #: ``"auto"`` — columnar for large supported cells, objects
    #: otherwise. See :mod:`repro.engine.dispatch`.
    engine: str = "auto"
    #: Budget policy: ``"uniform"`` gives every node the same per-node
    #: ``k`` (the paper's scheme); ``"allocated"`` distributes one global
    #: pointer budget by marginal gain (:mod:`repro.core.budget`,
    #: DESIGN.md §12). With ``budget_mode="uniform"`` and no explicit
    #: ``budget_total`` the legacy per-node path runs bit-identically.
    budget_mode: str = "uniform"
    #: Total network-wide pointer budget ``K``; ``None`` means
    #: ``n * effective_k`` (the uniform scheme's spend).
    budget_total: int | None = None
    #: Query-stream scenario, as a ``NAME[:PARAM]`` selector resolved
    #: against :data:`repro.workload.spec.WORKLOADS`. The default
    #: ``"static-zipf"`` is the paper's workload and runs draw-for-draw
    #: identically to the pre-workload-plane code.
    workload: str = "static-zipf"

    def __post_init__(self) -> None:
        if self.overlay not in OVERLAYS:
            raise ConfigurationError(f"unknown overlay {self.overlay!r}; expected one of {OVERLAYS}")
        if self.engine not in ENGINES:
            raise ConfigurationError(f"unknown engine {self.engine!r}; expected one of {ENGINES}")
        if self.n < 2:
            raise ConfigurationError("need at least 2 nodes")
        if self.bits <= 0:
            raise ConfigurationError(f"bits must be positive, got {self.bits}")
        if self.n > 2**self.bits:
            raise ConfigurationError(
                f"n={self.n} exceeds the id-space capacity 2**{self.bits}={2**self.bits}"
            )
        if self.queries <= 0:
            raise ConfigurationError(f"queries must be positive, got {self.queries}")
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")
        if self.k is not None and self.k < 0:
            raise ConfigurationError(f"k must be non-negative, got {self.k}")
        if self.budget_mode not in ("uniform", "allocated"):
            raise ConfigurationError(
                f"unknown budget_mode {self.budget_mode!r}; expected 'uniform' or 'allocated'"
            )
        if self.budget_total is not None and self.budget_total < 0:
            raise ConfigurationError(
                f"budget_total must be non-negative, got {self.budget_total}"
            )
        # Validate the selector eagerly so a typo fails at config time,
        # not deep inside a worker process.
        WorkloadSpec.parse(self.workload)
        if self.k is not None and self.k >= self.n:
            # A node can hold at most n - 1 distinct auxiliary pointers;
            # beyond that the budget silently degenerates (selection just
            # takes every candidate), which always signals a typo.
            raise ConfigurationError(
                f"k={self.k} must be smaller than n={self.n}: a node cannot "
                f"point at more auxiliary neighbors than there are other peers"
            )

    @property
    def effective_warmup_queries(self) -> int:
        if self.warmup_queries is not None:
            return self.warmup_queries
        return 40 * self.n

    @property
    def effective_k(self) -> int:
        """``k`` or the paper's default of ``log2(n)``."""
        if self.k is not None:
            return self.k
        return max(1, self.n.bit_length() - 1)

    @property
    def effective_items(self) -> int:
        """Item count (defaults to four items per node)."""
        return self.num_items if self.num_items is not None else 4 * self.n

    @property
    def effective_rankings(self) -> int:
        """Ranking count: the paper uses 1 for Pastry plots, 5 for Chord."""
        if self.num_rankings is not None:
            return self.num_rankings
        return 5 if self.overlay == "chord" else 1

    @property
    def effective_budget(self) -> int:
        """The network-wide pointer budget ``K``: ``budget_total`` when
        set, otherwise the uniform scheme's spend ``n * effective_k``."""
        if self.budget_total is not None:
            return self.budget_total
        return self.n * self.effective_k

    @property
    def budget_plan_active(self) -> bool:
        """True when per-node quotas come from a global budget plan
        (allocated mode, or uniform with an explicit total) rather than
        the legacy constant-``k`` path."""
        return self.budget_mode == "allocated" or self.budget_total is not None

    @property
    def budget_label(self) -> str:
        """Label fragment for budget-planned cells, empty on legacy."""
        if not self.budget_plan_active:
            return ""
        return f" budget={self.budget_mode}:{self.effective_budget}"

    @property
    def workload_spec(self) -> WorkloadSpec:
        """The parsed workload selector."""
        return WorkloadSpec.parse(self.workload)

    @property
    def workload_label(self) -> str:
        """Label fragment for non-default workloads, empty on the
        legacy static stream (keeps historical labels byte-identical)."""
        spec = self.workload_spec
        if spec.is_static:
            return ""
        return f" workload={spec.label}"

    @property
    def faults_active(self) -> bool:
        """True when a fault schedule is attached and actually injects."""
        return self.faults is not None and self.faults.active

    @property
    def effective_retry(self) -> RetryPolicy | None:
        """The retry policy lookups run under: the explicit ``retry`` when
        set, the robust default when faults are active, otherwise ``None``
        (routing's legacy evict-on-first-timeout behaviour)."""
        if self.retry is not None:
            return self.retry
        if self.faults_active:
            return RetryPolicy.robust()
        return None


@dataclass(frozen=True)
class ChurnConfig(ExperimentConfig):
    """Churn-mode parameters (defaults from Section VI-C).

    ``queries`` is ignored in churn mode; query volume is
    ``queries_per_second * duration``.
    """

    duration: float = 1800.0
    warmup: float = 300.0
    queries_per_second: float = 4.0
    stabilize_interval: float = 25.0
    recompute_interval: float = 62.5
    #: Global budget-rebalancing cadence in allocated mode (two recompute
    #: intervals by default, so moved quotas take effect at the affected
    #: nodes' next recomputation before the next rebalancing round).
    rebalance_interval: float = 125.0
    mean_uptime: float = 900.0
    mean_downtime: float = 900.0
    frequency_limit: int | None = 128

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.warmup >= self.duration:
            raise ConfigurationError("warmup must be shorter than duration")
        if self.rebalance_interval <= 0:
            raise ConfigurationError(
                f"rebalance_interval must be positive, got {self.rebalance_interval}"
            )
        if self.engine == "columnar":
            raise ConfigurationError(
                "engine='columnar' is stable-mode only: churn mutates routing "
                "state mid-stream, which the frozen snapshot cannot observe"
            )


# ----------------------------------------------------------------------
# Shared setup
# ----------------------------------------------------------------------


@dataclass
class _Bench:
    """Everything both policies share: overlay, workload, seeding data."""

    config: ExperimentConfig
    registry: SeedSequenceRegistry
    overlay: object = field(init=False)
    popularity: PopularityModel = field(init=False)
    assignment: dict[int, int] = field(init=False)
    ranking_destinations: list[dict[int, float]] = field(init=False)

    def __post_init__(self) -> None:
        config = self.config
        space = IdSpace(config.bits)
        overlay_seed = self.registry.stream("overlay").randrange(2**31)
        if config.overlay == "chord":
            self.overlay = ChordRing.build(config.n, space=space, seed=overlay_seed)
        elif config.overlay == "kademlia":
            self.overlay = KademliaNetwork.build(config.n, space=space, seed=overlay_seed)
        else:
            self.overlay = PastryNetwork.build(config.n, space=space, seed=overlay_seed)
        catalog = ItemCatalog(space, config.effective_items, seed=self.registry.stream("items").randrange(2**31))
        self.popularity = PopularityModel(
            catalog,
            config.alpha,
            num_rankings=config.effective_rankings,
            seed=self.registry.stream("rankings").randrange(2**31),
        )
        self.assignment = self.popularity.assign_rankings(self.overlay.alive_ids())
        # Destination weights are identical for every node on the same
        # ranking (modulo excluding the node itself): compute once each.
        self.ranking_destinations = [
            self.popularity.node_frequencies(index, self.overlay.responsible)
            for index in range(self.popularity.num_rankings)
        ]

    def seed_node(self, node_id: int) -> None:
        """Give one node its converged destination distribution."""
        weights = dict(self.ranking_destinations[self.assignment[node_id]])
        weights.pop(node_id, None)
        self.overlay.seed_frequencies(node_id, weights)

    def seed_all(self) -> None:
        for node_id in self.overlay.alive_ids():
            self.seed_node(node_id)

    def policies(self):
        """(optimal, oblivious) policy pair for the configured overlay."""
        if self.config.overlay == "chord":
            return chord_optimal, chord_oblivious
        if self.config.overlay == "kademlia":
            return kademlia_optimal, kademlia_oblivious
        return pastry_optimal, pastry_oblivious

    def lookup(
        self,
        source: int,
        item: int,
        record_access: bool,
        retry: RetryPolicy | None = None,
        faults: FaultPlane | None = None,
        trace=None,
    ):
        if self.config.overlay in ("chord", "kademlia"):
            return self.overlay.lookup(
                source,
                item,
                record_access=record_access,
                retry=retry,
                faults=faults,
                trace=trace,
            )
        return self.overlay.lookup(
            source,
            item,
            mode=self.config.pastry_mode,
            record_access=record_access,
            retry=retry,
            faults=faults,
            trace=trace,
        )

    def query_generator(self, stream_name: str) -> QueryGenerator:
        return QueryGenerator(
            self.popularity, self.assignment, self.registry.fresh(stream_name)
        )

    def workload_stream(
        self, stream_name: str, horizon: float, rate: float = DEFAULT_RATE
    ) -> WorkloadStream:
        """Build the configured scenario's query substream for one cell.

        ``rng`` reuses the legacy ``stream_name`` substream seed, so the
        static default makes the exact same draw sequence the old
        :meth:`query_generator` path made; scenario-internal randomness
        lives on a separate ``-scenario`` substream.
        """
        context = WorkloadContext(
            popularity=self.popularity,
            assignment=self.assignment,
            rng=self.registry.fresh(stream_name),
            scenario_rng=self.registry.fresh(f"{stream_name}-scenario"),
            alpha=self.config.alpha,
            horizon=horizon,
            rate=rate,
        )
        return self.config.workload_spec.build(context)


# ----------------------------------------------------------------------
# Stable mode
# ----------------------------------------------------------------------


def _normalize_telemetry(telemetry):
    """``None`` unless ``telemetry`` is an enabled telemetry runtime —
    the same normalization idiom the routers apply to trace recorders
    (see :func:`repro.telemetry.runtime.normalize`; duck-typed here so
    the simulation layer never imports the telemetry package)."""
    if telemetry is not None and getattr(telemetry, "enabled", False):
        return telemetry
    return None


def _policy_telemetry(telemetry, policy_name: str):
    """The (normalized) telemetry runtime for one policy's universe."""
    if telemetry is None:
        return None
    return _normalize_telemetry(telemetry.get(policy_name))


def _round_boundaries(queries: int, rounds: int) -> list[int]:
    """Cumulative query indices at which the round clock ticks.

    The ``queries`` lookups are split into ``rounds`` near-equal chunks
    (earlier rounds absorb the remainder), so the boundaries — and hence
    every sampled series — are a pure function of (queries, rounds).
    """
    base, extra = divmod(queries, rounds)
    boundaries = []
    total = 0
    for index in range(rounds):
        total += base + (1 if index < extra else 0)
        boundaries.append(total)
    return boundaries


def _budget_allocation(bench: "_Bench", config: ExperimentConfig):
    """The global budget plan for one seeded bench, or ``None`` on the
    legacy constant-``k`` path.

    Quotas are computed once from the frequency-aware curves and shared
    by both policies, so the optimal/oblivious comparison inside a cell
    stays apples-to-apples: they differ in *what* they point at, never in
    how many pointers each node holds.
    """
    if not config.budget_plan_active:
        return None
    problems = budget_mod.overlay_problems(
        config.overlay, bench.overlay, config.frequency_limit
    )
    curves = budget_mod.curves_for_problems(problems, config.overlay)
    if config.budget_mode == "allocated":
        return budget_mod.allocate_greedy(curves, config.effective_budget)
    return budget_mod.allocate_uniform(curves, config.effective_budget)


def _install_policy_tables(
    overlay,
    config: ExperimentConfig,
    policy,
    rng: random.Random,
    allocation,
) -> None:
    """Install one policy's auxiliary tables: per-node quotas when a
    budget plan is active, the legacy uniform ``k`` otherwise."""
    if allocation is None:
        overlay.recompute_all_auxiliary(
            config.effective_k, policy, rng, frequency_limit=config.frequency_limit
        )
    else:
        budget_mod.install_allocation(
            overlay, allocation, policy, rng, config.frequency_limit
        )


def run_stable(config: ExperimentConfig, telemetry=None) -> ComparisonResult:
    """Stable-mode comparison: frequency-aware vs frequency-oblivious.

    The same overlay instance is reused for both policies (auxiliary sets
    are simply reinstalled) and both route an identical query stream, so
    the measured difference is attributable to pointer selection alone.

    When ``config.faults`` injects anything, the shared-overlay shortcut
    would be unfair — fault-driven evictions and planted stale pointers
    from the first policy's traffic would leak into the second — so each
    policy instead runs in its own fresh universe built from the same
    seeds (identical overlay, workload and fault realization).

    ``telemetry`` optionally maps policy names to
    :class:`~repro.telemetry.runtime.RoundTelemetry` runtimes; when one
    is attached, its round clock chunks the query stream and the
    registry is sampled at every chunk boundary. Telemetry is strictly
    observe-only: attached or not, the returned statistics are
    bit-identical.

    ``config.engine`` selects the routing engine. The columnar path
    (:mod:`repro.engine`) consumes the exact same seed streams, freezes
    the overlay after auxiliary installation and routes the identical
    query batch vectorized — the returned statistics are bit-identical
    to the object path.
    """
    telemetry_active = any(
        _policy_telemetry(telemetry, name) is not None for name in ("optimal", "oblivious")
    )
    if resolve_engine(config, telemetry_active) == "columnar":
        return _run_stable_columnar(config)
    if config.faults_active:
        stats = {
            name: _run_stable_once(config, name, telemetry=_policy_telemetry(telemetry, name))
            for name in ("optimal", "oblivious")
        }
        label = (
            f"{config.overlay} stable n={config.n} k={config.effective_k} "
            f"alpha={config.alpha}{config.budget_label}{config.workload_label} faults"
        )
        return ComparisonResult(label, stats["optimal"], stats["oblivious"])
    registry = SeedSequenceRegistry(config.seed)
    bench = _Bench(config, registry)
    if config.learned_frequencies:
        # Nodes learn by observation: route warmup traffic (core pointers
        # only) with access recording on, exactly like Section III.
        generator = bench.query_generator("warmup-queries")
        alive = bench.overlay.alive_ids()
        for query in generator.stream(config.effective_warmup_queries, lambda: alive):
            bench.lookup(query.source, query.item, record_access=True)
    else:
        bench.seed_all()
    optimal, oblivious = bench.policies()
    allocation = _budget_allocation(bench, config)
    retry = config.effective_retry
    stats = {}
    for name, policy in (("optimal", optimal), ("oblivious", oblivious)):
        tel = _policy_telemetry(telemetry, name)
        bench.overlay.attach_telemetry(tel)
        _install_policy_tables(
            bench.overlay, config, policy, registry.fresh(f"policy-rng-{name}"), allocation
        )
        workload = bench.workload_stream("queries", horizon=config.queries / DEFAULT_RATE)
        collected = HopStatistics()
        alive = bench.overlay.alive_ids()
        recorder = tel.recorder if tel is not None else None
        boundaries = _round_boundaries(config.queries, tel.rounds) if tel is not None else ()
        next_boundary = 0
        for index, query in enumerate(workload.stream(config.queries, lambda: alive), start=1):
            collected.record(
                bench.lookup(
                    query.source, query.item, record_access=False, retry=retry, trace=recorder
                )
            )
            while next_boundary < len(boundaries) and boundaries[next_boundary] == index:
                tel.sample_round(alive=bench.overlay.alive_count())
                next_boundary += 1
        stats[name] = collected
        bench.overlay.attach_telemetry(None)
    label = (
        f"{config.overlay} stable n={config.n} k={config.effective_k} "
        f"alpha={config.alpha}{config.budget_label}{config.workload_label}"
    )
    return ComparisonResult(label, stats["optimal"], stats["oblivious"])


def _run_stable_columnar(config: ExperimentConfig) -> ComparisonResult:
    """Stable-mode comparison on the columnar engine (DESIGN.md §10).

    Mirrors :func:`run_stable` stream for stream: the same
    :class:`~repro.util.rng.SeedSequenceRegistry` draws, the same
    warmup protocol, the same per-policy auxiliary recomputation and the
    same materialized query stream — then freezes each policy's overlay
    into a columnar snapshot and routes the whole batch vectorized.
    Clean measured lookups are side-effect-free (``record_access`` is
    off), so skipping the object walk is observationally invisible:
    the folded statistics are bit-identical.
    """
    from repro.engine.columnar import snapshot_chord, snapshot_pastry
    from repro.engine.router import batch_route_chord, batch_route_pastry

    registry = SeedSequenceRegistry(config.seed)
    bench = _Bench(config, registry)
    overlay = bench.overlay
    if config.learned_frequencies:
        # Warmup routing's only side effect on a clean overlay is the
        # source node observing the responsible node — which the ring
        # oracle gives directly, no hop-by-hop walk needed.
        generator = bench.query_generator("warmup-queries")
        alive = overlay.alive_ids()
        for query in generator.stream(config.effective_warmup_queries, lambda: alive):
            destination = overlay.responsible(query.item)
            if destination != query.source:
                overlay.node(query.source).record_access(destination)
    else:
        bench.seed_all()
    optimal, oblivious = bench.policies()
    stats = {}
    for name, policy in (("optimal", optimal), ("oblivious", oblivious)):
        overlay.recompute_all_auxiliary(
            config.effective_k,
            policy,
            registry.fresh(f"policy-rng-{name}"),
            frequency_limit=config.frequency_limit,
        )
        workload = bench.workload_stream("queries", horizon=config.queries / DEFAULT_RATE)
        alive = overlay.alive_ids()
        queries = list(workload.stream(config.queries, lambda: alive))
        sources = [query.source for query in queries]
        keys = [query.item for query in queries]
        if config.overlay == "chord":
            batch = batch_route_chord(snapshot_chord(overlay), sources, keys)
        else:
            batch = batch_route_pastry(
                snapshot_pastry(overlay), sources, keys, mode=config.pastry_mode
            )
        collected = HopStatistics()
        batch.fold_into(collected)
        stats[name] = collected
    label = (
        f"{config.overlay} stable n={config.n} k={config.effective_k} "
        f"alpha={config.alpha}{config.workload_label}"
    )
    return ComparisonResult(label, stats["optimal"], stats["oblivious"])


def _run_stable_once(
    config: ExperimentConfig,
    policy_name: str,
    telemetry=None,
) -> HopStatistics:
    """One policy's own-universe stable run (fault-injected comparisons
    and the telemetry/trace drivers).

    Setup faults (one crash burst, a static partition) land *after*
    frequency seeding and auxiliary installation, so every surviving node
    carries stale pointers to the burst victims — the stress the retry /
    failover machinery is measured under. Per-lookup samples are kept so
    robustness reports can quote latency percentiles.
    """
    registry = SeedSequenceRegistry(config.seed)
    bench = _Bench(config, registry)
    if config.learned_frequencies:
        generator = bench.query_generator("warmup-queries")
        alive = bench.overlay.alive_ids()
        for query in generator.stream(config.effective_warmup_queries, lambda: alive):
            bench.lookup(query.source, query.item, record_access=True)
    else:
        bench.seed_all()
    optimal, oblivious = bench.policies()
    policy = optimal if policy_name == "optimal" else oblivious
    # Allocation happens pre-fault (both universes share seeds, so the
    # curves — and hence the quotas — are identical across policies).
    allocation = _budget_allocation(bench, config)
    tel = _normalize_telemetry(telemetry)
    bench.overlay.attach_telemetry(tel)
    _install_policy_tables(
        bench.overlay, config, policy, registry.fresh(f"policy-rng-{policy_name}"), allocation
    )
    plane: FaultPlane | None = None
    if config.faults_active:
        # The plane's stream depends only on the seed, not the policy:
        # both universes realize the same burst, partition and loss
        # pattern.
        plane = FaultPlane(config.faults, registry.fresh("fault-plane"))
        apply_stable_faults(plane, bench.overlay, telemetry=tel)
    retry = config.effective_retry
    workload = bench.workload_stream("queries", horizon=config.queries / DEFAULT_RATE)
    stats = HopStatistics(keep_samples=True)
    alive = bench.overlay.alive_ids()
    recorder = tel.recorder if tel is not None else None
    boundaries = _round_boundaries(config.queries, tel.rounds) if tel is not None else ()
    next_boundary = 0
    for index, query in enumerate(workload.stream(config.queries, lambda: alive), start=1):
        if plane is not None:
            maybe_corrupt(plane, bench.overlay, telemetry=tel)
        stats.record(
            bench.lookup(
                query.source,
                query.item,
                record_access=False,
                retry=retry,
                faults=plane,
                trace=recorder,
            )
        )
        while next_boundary < len(boundaries) and boundaries[next_boundary] == index:
            tel.sample_round(alive=bench.overlay.alive_count())
            next_boundary += 1
    return stats


# ----------------------------------------------------------------------
# Churn mode
# ----------------------------------------------------------------------


def run_churn(config: ChurnConfig, telemetry=None) -> ComparisonResult:
    """Churn-mode comparison under the Section VI-C event schedule.

    Each policy runs in its own fresh universe built from the same seeds,
    so both see identical overlays, churn traces and query workloads.

    ``telemetry`` optionally maps policy names to telemetry runtimes;
    churn-mode round clocks are equal virtual-time intervals — the
    registry is sampled ``rounds`` times at ``i * duration / rounds``.
    """
    stats = {}
    for name in ("optimal", "oblivious"):
        stats[name] = _run_churn_once(config, name, telemetry=_policy_telemetry(telemetry, name))
    label = (
        f"{config.overlay} churn n={config.n} k={config.effective_k} "
        f"alpha={config.alpha}{config.budget_label}{config.workload_label}"
    )
    return ComparisonResult(label, stats["optimal"], stats["oblivious"])


def _run_churn_once(config: ChurnConfig, policy_name: str, telemetry=None) -> HopStatistics:
    registry = SeedSequenceRegistry(config.seed)
    bench = _Bench(config, registry)
    bench.seed_all()
    optimal, oblivious = bench.policies()
    policy = optimal if policy_name == "optimal" else oblivious
    policy_rng = registry.fresh(f"policy-rng-{policy_name}")
    overlay = bench.overlay
    k = config.effective_k
    tel = _normalize_telemetry(telemetry)
    overlay.attach_telemetry(tel)

    scheduler = EventScheduler()
    stats = HopStatistics(keep_samples=config.faults_active)

    # Initial auxiliary installation at t=0 (per-node quotas when a
    # global budget plan is active).
    allocation = _budget_allocation(bench, config)
    _install_policy_tables(overlay, config, policy, policy_rng, allocation)
    quotas = allocation.quotas if allocation is not None else None

    # Churn process (same trace for both policies via the shared seed).
    churn_rng = registry.fresh("churn")
    churn = ChurnProcess(
        scheduler,
        _ChurnAdapter(bench),
        overlay.alive_ids(),
        churn_rng,
        mean_uptime=config.mean_uptime,
        mean_downtime=config.mean_downtime,
        telemetry=tel,
    )
    churn.start()

    # Fault plane: same realization for both policies (seed-only streams).
    plane: FaultPlane | None = None
    if config.faults_active:
        plane = FaultPlane(config.faults, registry.fresh("fault-plane"))
        install_fault_events(
            scheduler,
            plane,
            overlay,
            registry.fresh("fault-events"),
            config.duration,
            telemetry=tel,
        )
    retry = config.effective_retry

    # Staggered per-node maintenance loops.
    offset_rng = registry.fresh("maintenance-offsets")
    for node_id in overlay.alive_ids():
        scheduler.schedule(
            offset_rng.uniform(0, config.stabilize_interval),
            _PeriodicNodeTask(scheduler, overlay, node_id, config.stabilize_interval, _stabilize),
        )
        scheduler.schedule(
            offset_rng.uniform(0, config.recompute_interval),
            _PeriodicNodeTask(
                scheduler,
                overlay,
                node_id,
                config.recompute_interval,
                _make_recompute(k, policy, policy_rng, config.frequency_limit, quotas),
            ),
        )

    # Allocated mode keeps the plan live: a bounded drift-gated rebalance
    # round every ``rebalance_interval`` mutates the shared quotas dict,
    # and moved budget lands at the next per-node recomputation. A node
    # that crashes keeps its quota until it rejoins and drifts.
    if allocation is not None and config.budget_mode == "allocated":
        problems = budget_mod.overlay_problems(
            config.overlay, overlay, config.frequency_limit
        )
        rebalancer = budget_mod.BudgetRebalancer.from_allocation(allocation)
        rebalancer.baseline(problems)
        scheduler.schedule(
            config.rebalance_interval,
            _PeriodicRebalanceTask(
                scheduler,
                overlay,
                config.overlay,
                rebalancer,
                config.frequency_limit,
                config.rebalance_interval,
                tel,
            ),
        )

    # Poisson query arrivals; frequencies keep learning online. The
    # workload's virtual clock rides the event scheduler directly, so
    # drift/crowd/rotation epochs land at real simulation times.
    workload = bench.workload_stream(
        "queries", horizon=config.duration, rate=config.queries_per_second
    )
    query_rng = registry.fresh("query-arrivals")
    recorder = tel.recorder if tel is not None else None

    def fire_query() -> None:
        alive = overlay.alive_ids()
        if alive:
            workload.advance(scheduler.now)
            query = workload.next_query(alive)
            if query is not None:
                result = bench.lookup(
                    query.source,
                    query.item,
                    record_access=True,
                    retry=retry,
                    faults=plane,
                    trace=recorder,
                )
                if scheduler.now >= config.warmup:
                    stats.record(result)
        scheduler.schedule(query_rng.expovariate(config.queries_per_second), fire_query)

    scheduler.schedule(query_rng.expovariate(config.queries_per_second), fire_query)
    if tel is not None:
        # Round clock: sample at the end of each of ``rounds`` equal
        # virtual-time intervals (run_until is inclusive of the horizon,
        # so the final boundary fires). Telemetry observes warmup traffic
        # too — the dashboard is meant to show the system settling.
        for index in range(1, tel.rounds + 1):
            scheduler.schedule_at(
                index * config.duration / tel.rounds,
                _RoundSampleTask(tel, overlay, scheduler),
            )
    scheduler.run_until(config.duration)
    return stats


class _RoundSampleTask:
    """Round-clock tick in churn mode: snapshot the registry with the
    live-node count and the simulation clock."""

    __slots__ = ("telemetry", "overlay", "scheduler")

    def __init__(self, telemetry, overlay, scheduler) -> None:
        self.telemetry = telemetry
        self.overlay = overlay
        self.scheduler = scheduler

    def __call__(self) -> None:
        self.telemetry.sample_round(
            alive=self.overlay.alive_count(), now=self.scheduler.now
        )


class _ChurnAdapter:
    """Adapter giving the churn process rejoin-with-reseed semantics:
    a node that comes back starts with empty observations (its state was
    volatile) — it re-learns frequencies from live traffic.

    Transitions are idempotent because fault-plane crash bursts overlap
    the churn timeline: a churn crash may find its node already felled by
    a burst, and a churn rejoin may race a burst rejoin. Without faults
    the guards never trigger (churn alone strictly alternates states)."""

    def __init__(self, bench: _Bench) -> None:
        self.bench = bench

    def crash(self, node_id: int) -> None:
        overlay = self.bench.overlay
        if overlay.node(node_id).alive:
            overlay.crash(node_id)

    def rejoin(self, node_id: int) -> None:
        overlay = self.bench.overlay
        if not overlay.node(node_id).alive:
            overlay.rejoin(node_id)

    def alive_count(self) -> int:
        return self.bench.overlay.alive_count()


class _PeriodicNodeTask:
    """Self-rescheduling per-node maintenance action (skips dead phases)."""

    __slots__ = ("scheduler", "overlay", "node_id", "interval", "action")

    def __init__(self, scheduler, overlay, node_id, interval, action) -> None:
        self.scheduler = scheduler
        self.overlay = overlay
        self.node_id = node_id
        self.interval = interval
        self.action = action

    def __call__(self) -> None:
        node = self.overlay.node(self.node_id)
        if node.alive:
            self.action(self.overlay, self.node_id)
        self.scheduler.schedule(self.interval, self)


def _stabilize(overlay, node_id: int) -> None:
    overlay.stabilize(node_id)


def _make_recompute(
    k: int,
    policy,
    rng: random.Random,
    frequency_limit: int | None,
    quotas: dict[int, int] | None = None,
):
    """Per-node recompute action; ``quotas`` (shared by reference with the
    rebalancer) overrides the uniform ``k`` when a budget plan is live.
    Nodes outside the plan — e.g. rejoined after the allocation was cut —
    fall back to the uniform ``k``."""

    def action(overlay, node_id: int) -> None:
        node_k = k if quotas is None else quotas.get(node_id, k)
        overlay.recompute_auxiliary(node_id, node_k, policy, rng, frequency_limit)

    return action


class _PeriodicRebalanceTask:
    """Self-rescheduling drift-gated budget rebalance round (allocated
    mode only). Mutates the rebalancer's quotas dict in place — the same
    dict the per-node recompute tasks read."""

    __slots__ = (
        "scheduler",
        "overlay",
        "overlay_kind",
        "rebalancer",
        "frequency_limit",
        "interval",
        "telemetry",
    )

    def __init__(
        self,
        scheduler,
        overlay,
        overlay_kind: str,
        rebalancer,
        frequency_limit: int | None,
        interval: float,
        telemetry,
    ) -> None:
        self.scheduler = scheduler
        self.overlay = overlay
        self.overlay_kind = overlay_kind
        self.rebalancer = rebalancer
        self.frequency_limit = frequency_limit
        self.interval = interval
        self.telemetry = telemetry

    def __call__(self) -> None:
        problems = budget_mod.overlay_problems(
            self.overlay_kind, self.overlay, self.frequency_limit
        )
        self.rebalancer.rebalance(
            problems, self.overlay_kind, telemetry=self.telemetry
        )
        self.scheduler.schedule(self.interval, self)


def scaled_down(config: ChurnConfig, factor: float = 0.25) -> ChurnConfig:
    """A cheaper variant of a churn config for smoke tests and benches."""
    return replace(
        config,
        duration=max(120.0, config.duration * factor),
        warmup=max(30.0, config.warmup * factor),
    )
