"""Discrete-event simulation: scheduler, churn process, experiment runners."""

from repro.sim.churn import ChurnProcess, ChurnTarget
from repro.sim.events import EventScheduler, ScheduledEvent
from repro.sim.metrics import ComparisonResult, HopStatistics, percent_reduction
from repro.sim.runner import ChurnConfig, ExperimentConfig, run_churn, run_stable

__all__ = [
    "ChurnConfig",
    "ChurnProcess",
    "ChurnTarget",
    "ComparisonResult",
    "EventScheduler",
    "ExperimentConfig",
    "HopStatistics",
    "ScheduledEvent",
    "percent_reduction",
    "run_churn",
    "run_stable",
]

from repro.sim.maintenance import TradeoffPoint, cost_benefit_curve, maintenance_rate, table_sizes

__all__ += ["TradeoffPoint", "cost_benefit_curve", "maintenance_rate", "table_sizes"]
