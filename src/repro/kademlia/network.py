"""The Kademlia overlay: membership, responsibility, maintenance, policies.

Keys are assigned to the live node *XOR-closest* to the key — XOR is
injective for a fixed key, so the owner is always unique (no tie-break
rule needed, unlike Chord's clockwise successor or Pastry's numeric
proximity). Core routing tables are rebuilt through the k-bucket tree of
:class:`repro.kademlia.node.RoutingTable`: every live id is offered to
the tree in ascending order and the surviving bucket contents become the
node's ``core`` contact set — fine-grained coverage near the own id
(own-range buckets split instead of evicting), at most ``bucket_size``
contacts per distant distance class.

Churn semantics mirror the Chord and Pastry substrates: crashes leave
stale contacts at other nodes until a lookup timeout or the next
stabilization round cleans them up.

The default id space is the protocol's 160-bit SHA-1 space
(:data:`KADEMLIA_BITS`); experiments pass narrower spaces, which also
keeps the eq.-1 cost kernels on their NumPy fast path (exact only below
53 bits — see :mod:`repro.core.kademlia_selection`).
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from typing import Callable, Iterable

from repro.core.kademlia_selection import select_kademlia
from repro.core.oblivious import select_kademlia_oblivious, select_uniform_random
from repro.core.types import SelectionProblem, SelectionResult
from repro.kademlia.node import KademliaNode, RoutingTable
from repro.kademlia.routing import (
    FindNodeResult,
    KademliaLookupResult,
    iterative_find_node,
    route,
)
from repro.util.errors import ConfigurationError, NodeAbsentError
from repro.util.ids import IdSpace
from repro.util.validation import require_non_negative_int, require_positive_int

__all__ = [
    "KADEMLIA_BITS",
    "KademliaNetwork",
    "optimal_policy",
    "oblivious_policy",
    "uniform_policy",
]

#: The protocol's canonical id width (SHA-1).
KADEMLIA_BITS = 160

#: Signature of an auxiliary-selection policy: (problem, rng, overlay).
AuxiliaryPolicy = Callable[[SelectionProblem, random.Random, "KademliaNetwork"], SelectionResult]


def optimal_policy(
    problem: SelectionProblem, rng: random.Random, overlay: "KademliaNetwork | None" = None
) -> SelectionResult:
    """The paper's frequency-aware optimal selection (rng/overlay unused)."""
    return select_kademlia(problem)


def oblivious_policy(
    problem: SelectionProblem, rng: random.Random, overlay: "KademliaNetwork | None" = None
) -> SelectionResult:
    """The frequency-oblivious baseline of Section VI-A: random nodes per
    XOR distance class, drawn from the live population when available."""
    pool = overlay.alive_ids() if overlay is not None else None
    return select_kademlia_oblivious(problem, rng, pool=pool)


def uniform_policy(
    problem: SelectionProblem, rng: random.Random, overlay: "KademliaNetwork | None" = None
) -> SelectionResult:
    """Uniform-random ablation baseline."""
    pool = overlay.alive_ids() if overlay is not None else None
    return select_uniform_random(problem, rng, "kademlia", pool=pool)


class KademliaNetwork:
    """A complete Kademlia overlay with explicit, inspectable state.

    Example
    -------
    >>> network = KademliaNetwork.build(64, space=IdSpace(16), seed=1)
    >>> result = network.lookup(network.alive_ids()[0], key=12345)
    >>> result.succeeded
    True
    """

    def __init__(
        self,
        space: IdSpace | None = None,
        bucket_size: int = 8,
        alpha: int = 3,
    ) -> None:
        self.space = space or IdSpace(KADEMLIA_BITS)
        require_positive_int(bucket_size, "bucket_size")
        require_positive_int(alpha, "alpha")
        self.bucket_size = bucket_size
        self.alpha = alpha
        self.nodes: dict[int, KademliaNode] = {}
        self._alive: list[int] = []
        self._telemetry = None  # set via attach_telemetry

    def attach_telemetry(self, telemetry) -> None:
        """Attach (or detach with ``None``) a telemetry runtime; feeds the
        maintenance spans. Observe-only — never touches routing state or
        randomness (see :meth:`repro.chord.ring.ChordRing.attach_telemetry`).
        """
        self._telemetry = telemetry if telemetry is not None and telemetry.enabled else None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n: int,
        space: IdSpace | None = None,
        seed: int = 0,
        bucket_size: int = 8,
        alpha: int = 3,
    ) -> "KademliaNetwork":
        """Create a stabilized network of ``n`` nodes with random ids."""
        require_positive_int(n, "n")
        network = cls(space, bucket_size=bucket_size, alpha=alpha)
        rng = random.Random(seed)
        if n > network.space.size:
            raise ConfigurationError(f"cannot place {n} nodes in a {network.space.bits}-bit space")
        if network.space.bits <= 62:
            ids = rng.sample(range(network.space.size), n)
        else:
            # range() objects wider than ssize_t cannot be sampled;
            # rejection-sample instead (collisions are ~2**-100 events).
            chosen: set[int] = set()
            while len(chosen) < n:
                chosen.add(rng.randrange(network.space.size))
            ids = sorted(chosen)
        for node_id in ids:
            network.add_node(node_id)
        network.stabilize_all()
        return network

    def add_node(self, node_id: int) -> KademliaNode:
        """Add a brand-new node (not yet known to others)."""
        self.space.validate(node_id, "node id")
        if node_id in self.nodes:
            raise ConfigurationError(f"node {node_id} already exists")
        node = KademliaNode(node_id, self.space, self.bucket_size)
        self.nodes[node_id] = node
        insort(self._alive, node_id)
        self._rebuild_tables(node)
        return node

    def join_via(self, node_id: int, bootstrap: int) -> KademliaNode:
        """Protocol-faithful join (Maymounkov & Mazières §2.3): insert the
        bootstrap contact, run an iterative FIND_NODE on the own id, and
        populate the newcomer's buckets from every contact the lookup
        surfaced. Other nodes learn about the newcomer only via their
        later stabilization rounds."""
        self.space.validate(node_id, "node id")
        if node_id in self.nodes and self.nodes[node_id].alive:
            raise ConfigurationError(f"node {node_id} already exists")
        boot = self.nodes.get(bootstrap)
        if boot is None or not boot.alive:
            raise NodeAbsentError(f"bootstrap node {bootstrap} is not alive")

        existing = self.nodes.get(node_id)
        if existing is not None:
            # Keep the node unroutable while the join lookup runs.
            existing.alive = False
        answer = iterative_find_node(self, bootstrap, node_id, alpha=self.alpha)
        node = existing
        if node is None:
            node = KademliaNode(node_id, self.space, self.bucket_size)
            self.nodes[node_id] = node
        node.classes.clear()
        node.core.clear()
        node.auxiliary.clear()

        # Feed every surfaced contact through a fresh bucket tree, in the
        # order the lookup heard of them (bootstrap first).
        table = RoutingTable(node_id, self.space, self.bucket_size)
        for contact in [bootstrap, *answer.queried, *answer.found]:
            if self.nodes.get(contact) is not None and self.nodes[contact].alive:
                table.insert(contact)
        node.set_core(set(table.contacts()))

        node.alive = True
        insort(self._alive, node_id)
        return node

    # ------------------------------------------------------------------
    # Membership queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> KademliaNode:
        """Fetch a node object by id (KeyError when unknown)."""
        return self.nodes[node_id]

    def alive_ids(self) -> list[int]:
        """Sorted ids of live nodes (a copy)."""
        return list(self._alive)

    def alive_count(self) -> int:
        return len(self._alive)

    def responsible(self, key: int) -> int:
        """The live node XOR-closest to ``key`` (unique: XOR is injective
        for a fixed key)."""
        if not self._alive:
            raise NodeAbsentError("network has no live nodes")
        return min(self._alive, key=key.__xor__)

    # ------------------------------------------------------------------
    # Verification hooks (read-only introspection)
    # ------------------------------------------------------------------
    def class_snapshot(self) -> dict[int, dict[int, frozenset[int]]]:
        """Per-live-node per-prefix-class contact sets, as installed now."""
        return {node_id: self.nodes[node_id].class_snapshot() for node_id in self._alive}

    def reference_core(self, node_id: int) -> frozenset[int]:
        """Ground-truth core contacts from the global view — what a
        stabilization round installs. Verification compares per-node state
        against this independent derivation."""
        return frozenset(self._bucket_core(node_id))

    def hop_distances(self, path: Iterable[int], key: int) -> list[int]:
        """XOR distance from each path node to ``key`` — the quantity
        Kademlia routing must strictly shrink on every hop."""
        return [node_id ^ key for node_id in path]

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> None:
        """Abruptly fail a node; others keep stale contacts to it."""
        node = self.nodes[node_id]
        if not node.alive:
            raise NodeAbsentError(f"node {node_id} is already down")
        node.crash()
        index = bisect_left(self._alive, node_id)
        del self._alive[index]

    def rejoin(self, node_id: int) -> None:
        """Bring a crashed node back with fresh state and rebuilt tables."""
        node = self.nodes[node_id]
        if node.alive:
            raise NodeAbsentError(f"node {node_id} is already up")
        node.alive = True
        insort(self._alive, node_id)
        self._rebuild_tables(node)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stabilize(self, node_id: int) -> None:
        """One node's maintenance round: rebuild the bucket contacts from
        the current population and drop dead auxiliaries (the ping process
        of Section III extended to auxiliary entries)."""
        node = self.nodes[node_id]
        if not node.alive:
            raise NodeAbsentError(f"cannot stabilize dead node {node_id}")
        tel = self._telemetry
        if tel is not None:
            with tel.span("maintenance.stabilize"):
                stale_aux = {aux for aux in node.auxiliary if not self.nodes[aux].alive}
                node.set_auxiliary(node.auxiliary - stale_aux)
                self._rebuild_tables(node)
            # One ping per auxiliary pointer plus the table re-init sweep.
            tel.add_work("maintenance.stabilize_messages", len(node.auxiliary) + len(stale_aux))
            tel.add_work("maintenance.stale_evictions", len(stale_aux))
            return
        stale_aux = {aux for aux in node.auxiliary if not self.nodes[aux].alive}
        node.set_auxiliary(node.auxiliary - stale_aux)
        self._rebuild_tables(node)

    def stabilize_all(self) -> None:
        """Stabilize every live node (used to reach a steady state)."""
        for node_id in self.alive_ids():
            self.stabilize(node_id)

    def recompute_auxiliary(
        self,
        node_id: int,
        k: int,
        policy: AuxiliaryPolicy,
        rng: random.Random,
        frequency_limit: int | None = None,
    ) -> SelectionResult:
        """Run a selection policy at one node and install the result."""
        require_non_negative_int(k, "k")
        node = self.nodes[node_id]
        if not node.alive:
            raise NodeAbsentError(f"cannot select auxiliaries at dead node {node_id}")
        frequencies = node.frequency_snapshot(frequency_limit)
        problem = SelectionProblem(
            space=self.space,
            source=node_id,
            frequencies=frequencies,
            core_neighbors=frozenset(node.core),
            k=k,
        )
        tel = self._telemetry
        if tel is not None:
            previous = set(node.auxiliary)
            with tel.span("selection.recompute"):
                result = policy(problem, rng, self)
                node.set_auxiliary(set(result.auxiliary))
            tel.add_work(
                "selection.pointer_updates", len(previous ^ set(result.auxiliary))
            )
            return result
        result = policy(problem, rng, self)
        node.set_auxiliary(set(result.auxiliary))
        return result

    def recompute_all_auxiliary(
        self,
        k: int,
        policy: AuxiliaryPolicy,
        rng: random.Random,
        frequency_limit: int | None = None,
    ) -> None:
        """Recompute auxiliary sets at every live node."""
        for node_id in self.alive_ids():
            self.recompute_auxiliary(node_id, k, policy, rng, frequency_limit)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(
        self,
        source: int,
        key: int,
        record_access: bool = True,
        retry=None,
        faults=None,
        trace=None,
    ) -> KademliaLookupResult:
        """Route a query for ``key`` from ``source``; see :func:`route`.

        ``retry``/``faults`` forward to the router's fault-aware knobs
        (:class:`~repro.faults.retry.RetryPolicy`,
        :class:`~repro.faults.plane.FaultPlane`); ``trace`` attaches an
        observe-only :class:`~repro.obs.recorder.TraceRecorder`."""
        return route(
            self,
            source,
            key,
            record_access=record_access,
            retry=retry,
            faults=faults,
            trace=trace,
        )

    def find_node(
        self, source: int, key: int, alpha: int | None = None, count: int | None = None
    ) -> FindNodeResult:
        """Iterative α-parallel FIND_NODE: the ``count`` (default
        ``bucket_size``) XOR-closest nodes to ``key``; see
        :func:`repro.kademlia.routing.iterative_find_node`."""
        return iterative_find_node(
            self,
            source,
            key,
            alpha=alpha if alpha is not None else self.alpha,
            count=count,
        )

    def seed_frequencies(self, node_id: int, frequencies: dict[int, float]) -> None:
        """Pre-load a node's tracker with a destination distribution."""
        from repro.core.frequency import ExactFrequencyTable

        node = self.nodes[node_id]
        tracker = ExactFrequencyTable()
        for peer, weight in frequencies.items():
            if peer != node_id and weight > 0:
                tracker.observe(peer, weight)
        node.tracker = tracker

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rebuild_tables(self, node: KademliaNode) -> None:
        node.set_core(self._bucket_core(node.node_id))

    def _bucket_core(self, node_id: int) -> set[int]:
        """Offer every live id to a fresh bucket tree in ascending order
        (deterministic recency: higher ids read as fresher) and keep the
        survivors. Own-range buckets split rather than evict, so every
        distance class with live members keeps at least one contact — the
        property greedy XOR routing's termination proof rests on."""
        table = RoutingTable(node_id, self.space, self.bucket_size)
        for other in self._alive:
            if other != node_id:
                table.insert(other)
        return set(table.contacts())
