"""Kademlia XOR routing: greedy forwarding plus the iterative FIND_NODE.

Kademlia's metric is ``d(u, v) = u XOR v``; its *distance class* is
``bitlength(u XOR v)``. Two lookup styles are implemented:

* :func:`route` — hop-accounted greedy forwarding with the same metric
  semantics, retry/fault handling and trace hooks as the Chord and
  Pastry substrates: each hop forwards to the known contact strictly
  XOR-closest to the key; the lookup terminates when the current node
  has no strictly closer contact. On a stabilized table that terminal
  node *is* the global XOR minimizer: if any node ``m`` were closer,
  the highest differing bit ``q`` of ``m XOR key`` vs ``current XOR key``
  puts ``m`` in the current node's prefix class ``b - 1 - q``, every
  member of which is strictly closer — and core maintenance keeps at
  least one contact in every non-empty class (non-owner buckets evict
  only past ``bucket_size`` entries of the *same* class; the owner-range
  bucket splits instead of evicting).

* :func:`iterative_find_node` — the protocol's α-parallel node lookup
  (Maymounkov & Mazières §2.3): keep a shortlist of the ``count``
  XOR-closest contacts heard of, query up to ``alpha`` of the closest
  unqueried ones per round, merge each reply, stop when the whole
  shortlist has been queried. Fully deterministic given the network
  state (XOR injectivity leaves no ties to break), which the
  seeded-replay tests rely on.

Dead candidates cost a timeout, are evicted from the forwarding node and
the next-best contact is tried; an optional
:class:`~repro.faults.retry.RetryPolicy` adds bounded retries with
backoff-as-hop-penalty, and an optional
:class:`~repro.faults.plane.FaultPlane` can drop or block messages —
exactly as in the other two routing layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.retry import RetryPolicy
from repro.obs.recorder import HopEvent
from repro.util.errors import NodeAbsentError

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.faults.plane import FaultPlane
    from repro.kademlia.network import KademliaNetwork
    from repro.obs.recorder import TraceRecorder

__all__ = ["KademliaLookupResult", "FindNodeResult", "route", "iterative_find_node"]

#: Default policy: one attempt, unit timeout penalty (legacy behaviour).
_SINGLE_ATTEMPT = RetryPolicy.single()


@dataclass
class KademliaLookupResult:
    """Outcome of one Kademlia lookup (same metric semantics as Chord's)."""

    key: int
    source: int
    destination: int | None
    hops: int
    timeouts: int = 0
    succeeded: bool = True
    path: list[int] = field(default_factory=list)
    penalty: float = 0.0

    @property
    def latency(self) -> int | float:
        """Hop-count latency proxy: forwards plus timeout penalties."""
        base = self.hops + self.timeouts
        return base + self.penalty if self.penalty else base


@dataclass(frozen=True)
class FindNodeResult:
    """Outcome of one iterative α-parallel FIND_NODE."""

    key: int
    source: int
    #: The ``count`` XOR-closest nodes discovered, closest first.
    found: tuple[int, ...]
    #: Every node queried, in query order (seeded-replay fingerprint).
    queried: tuple[int, ...]
    rounds: int
    messages: int
    timeouts: int


def _best_candidate(node, key: int) -> int | None:
    """The known contact strictly XOR-closer to ``key`` than the node
    itself, or ``None`` when no contact improves. XOR is injective for a
    fixed key, so the minimizer is unique — no tie-break needed."""
    best = None
    best_distance = node.node_id ^ key
    for neighbor in node.core:
        distance = neighbor ^ key
        if distance < best_distance:
            best = neighbor
            best_distance = distance
    for neighbor in node.auxiliary:
        distance = neighbor ^ key
        if distance < best_distance:
            best = neighbor
            best_distance = distance
    return best


def _pointer_class(node, target: int) -> str:
    """Which pointer kind supplied this candidate; an id living in both
    sets is credited to the stronger claim (core > auxiliary)."""
    if target in node.core:
        return "core"
    if target in node.auxiliary:
        return "auxiliary"
    return "unknown"


def route(
    network: "KademliaNetwork",
    source: int,
    key: int,
    max_hops: int | None = None,
    record_access: bool = True,
    retry: RetryPolicy | None = None,
    faults: "FaultPlane | None" = None,
    trace: "TraceRecorder | None" = None,
) -> KademliaLookupResult:
    """Route a query for ``key`` from ``source`` across ``network``.

    ``retry`` bounds delivery attempts per contact (default: one attempt,
    evict on first timeout); ``faults`` lets a fault plane drop or block
    individual forwards. A contact that exhausts its attempts is evicted
    and the next iteration re-ranks, failing over to the next-closest
    contact.

    ``trace`` attaches an observe-only recorder (see
    :mod:`repro.obs.recorder`): one :class:`~repro.obs.recorder.HopEvent`
    per attempted forwarding target. Disabled recorders are normalized to
    ``None`` up front, so the default path pays only inert branch checks.
    """
    node = network.node(source)
    if not node.alive:
        raise NodeAbsentError(f"source node {source} is not alive")
    rec = trace if trace is not None and trace.enabled else None
    events: list[HopEvent] | None = [] if rec is not None else None
    policy = retry if retry is not None else _SINGLE_ATTEMPT
    limit = max_hops if max_hops is not None else 4 * network.space.bits
    true_destination = network.responsible(key)
    if record_access and true_destination != source:
        node.record_access(true_destination)

    current = node
    hops = 0
    timeouts = 0
    penalty = 0.0
    path = [source]

    def attempt_forward(target_id: int, pointer_class: str) -> bool:
        """Try to deliver to ``target_id`` under the retry policy; on
        exhaustion evict it from ``current`` so the next iteration fails
        over to the next-closest contact. ``pointer_class`` labels the
        structure that nominated the target (trace attribution only)."""
        nonlocal timeouts, penalty
        target = network.node(target_id)
        if rec is None and faults is None and target.alive:
            # Fault-free fast path: with a live target, no fault plane and
            # no recorder, the first attempt always delivers.
            return True
        delivered = False
        if rec is not None:
            timeouts_before = timeouts
            penalty_before = penalty
            verdicts: list[str] = []
        for attempt in range(policy.max_attempts):
            if hops + timeouts > limit:
                break
            if target.alive and (faults is None or faults.deliver(current.node_id, target_id)):
                delivered = True
                break
            if rec is not None:
                verdicts.append("dead" if not target.alive else faults.last_verdict)
            timeouts += 1
            penalty += policy.attempt_penalty(attempt) - 1.0
        if rec is not None:
            failed = timeouts - timeouts_before
            events.append(
                HopEvent(
                    forwarder=current.node_id,
                    target=target_id,
                    pointer_class=pointer_class,
                    delivered=delivered,
                    attempts=failed + (1 if delivered else 0),
                    timeouts=failed,
                    penalty=penalty - penalty_before,
                    verdicts=tuple(verdicts),
                )
            )
        if delivered:
            return True
        current.evict(target_id)
        return False

    while hops + timeouts <= limit:
        best = _best_candidate(current, key)
        if best is None:
            # No strictly closer contact: this node is (locally) the XOR
            # minimizer; on coherent tables it is the global one.
            succeeded = current.node_id == true_destination
            result = KademliaLookupResult(
                key=key,
                source=source,
                destination=current.node_id if succeeded else None,
                hops=hops,
                timeouts=timeouts,
                succeeded=succeeded,
                path=path,
                penalty=penalty,
            )
            if rec is not None:
                rec.record_lookup(result, events)
            return result
        if attempt_forward(best, _pointer_class(current, best) if rec is not None else "unknown"):
            hops += 1
            path.append(best)
            current = network.node(best)
    result = KademliaLookupResult(
        key=key,
        source=source,
        destination=None,
        hops=hops,
        timeouts=timeouts,
        succeeded=False,
        path=path,
        penalty=penalty,
    )
    if rec is not None:
        rec.record_lookup(result, events)
    return result


def iterative_find_node(
    network: "KademliaNetwork",
    source: int,
    key: int,
    alpha: int = 3,
    count: int | None = None,
) -> FindNodeResult:
    """The protocol's iterative node lookup: the ``count`` XOR-closest
    nodes to ``key`` the querier can discover.

    Each round queries the ``alpha`` closest not-yet-queried shortlist
    members in parallel; a live contact replies with the ``count``
    XOR-closest entries of its own tables, a dead one costs a timeout and
    drops off the shortlist. The search converges when every member of
    the current ``count``-closest shortlist has been queried.
    """
    node = network.node(source)
    if not node.alive:
        raise NodeAbsentError(f"source node {source} is not alive")
    if count is None:
        count = network.bucket_size
    known: set[int] = {source}
    known.update(node.neighbor_ids())
    queried: set[int] = {source}
    dead: set[int] = set()
    order: list[int] = []
    rounds = 0
    messages = 0
    timeouts = 0
    while True:
        shortlist = sorted(known, key=key.__xor__)[:count]
        targets = [nid for nid in shortlist if nid not in queried][:alpha]
        if not targets:
            break
        rounds += 1
        for target in targets:
            queried.add(target)
            order.append(target)
            messages += 1
            peer = network.node(target)
            if not peer.alive:
                timeouts += 1
                dead.add(target)
                known.discard(target)
                continue
            reply = sorted(peer.neighbor_ids() | {target}, key=key.__xor__)[:count]
            # A peer may still advertise a contact this search already saw
            # time out; never let a known-dead node back onto the shortlist.
            known.update(set(reply) - dead)
    found = tuple(sorted(known, key=key.__xor__)[:count])
    return FindNodeResult(
        key=key,
        source=source,
        found=found,
        queried=tuple(order),
        rounds=rounds,
        messages=messages,
        timeouts=timeouts,
    )
