"""A single Kademlia peer: k-bucket routing table, auxiliary pointers.

Two structures live here:

* :class:`RoutingTable` — the classic Kademlia bucket *tree*
  (Maymounkov & Mazières §2.4 / §4.2): one bucket initially covers the
  whole id space; a full bucket splits into halves only while it contains
  the owner's id, so the table keeps fine-grained coverage near the owner
  and at most ``bucket_size`` contacts per distant subtree. Buckets order
  contacts least-recently-seen first; a full non-splittable bucket evicts
  its LRU head (this simulation has no liveness ping to spare it).
  Because splitting always peels the sibling subtree off the owner's
  path, every non-owner bucket covers exactly one XOR distance class.

* :class:`KademliaNode` — the peer object the routing and verification
  planes consume, mirroring :class:`repro.pastry.node.PastryNode`: a
  ``core`` contact set (the rebuilt bucket contents), an ``auxiliary``
  pointer set (selection output), and a per-class candidate index keyed
  by common prefix length (``class == b - bitlength(self XOR other)``).
  The per-class index is capacity-free — it is the *view* routing scans,
  while the bucket tree is the *policy* deciding which contacts the core
  retains.
"""

from __future__ import annotations

from repro.core.frequency import ExactFrequencyTable
from repro.util.ids import IdSpace

__all__ = ["KBucket", "RoutingTable", "KademliaNode"]


class KBucket:
    """One bucket: a contiguous id range ``[low, high)`` holding at most
    ``capacity`` contacts in least-recently-seen-first order."""

    __slots__ = ("low", "high", "capacity", "entries")

    def __init__(self, low: int, high: int, capacity: int) -> None:
        self.low = low
        self.high = high
        self.capacity = capacity
        #: Least-recently-seen contact at index 0, freshest at the tail.
        self.entries: list[int] = []

    def covers(self, node_id: int) -> bool:
        return self.low <= node_id < self.high

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    @property
    def midpoint(self) -> int:
        return (self.low + self.high) // 2

    def touch(self, node_id: int) -> bool:
        """Move an already-known contact to the fresh end. Returns whether
        the contact was known."""
        try:
            self.entries.remove(node_id)
        except ValueError:
            return False
        self.entries.append(node_id)
        return True

    def split(self) -> tuple["KBucket", "KBucket"]:
        """Halve the covered range, redistributing contacts and keeping
        the relative recency order within each half."""
        mid = self.midpoint
        lower = KBucket(self.low, mid, self.capacity)
        upper = KBucket(mid, self.high, self.capacity)
        for entry in self.entries:
            (lower if entry < mid else upper).entries.append(entry)
        return lower, upper

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KBucket([{self.low}, {self.high}), {self.entries})"


class RoutingTable:
    """The owner's bucket tree over ``space``, flattened to a range-sorted
    bucket list (ranges always partition ``[0, space.size)``)."""

    def __init__(self, owner: int, space: IdSpace, bucket_size: int = 8) -> None:
        self.owner = space.validate(owner, "owner id")
        self.space = space
        self.bucket_size = bucket_size
        self.buckets: list[KBucket] = [KBucket(0, space.size, bucket_size)]

    def _bucket_index(self, node_id: int) -> int:
        # Ranges are sorted and disjoint; binary-search the covering one.
        lo, hi = 0, len(self.buckets) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.buckets[mid].high <= node_id:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def bucket_for(self, node_id: int) -> KBucket:
        return self.buckets[self._bucket_index(node_id)]

    def insert(self, node_id: int) -> int | None:
        """Record that ``node_id`` was seen. Returns the id evicted to
        make room, or ``None``.

        A known contact is refreshed (moved to the bucket tail); a full
        bucket containing the owner splits and the insert retries; a full
        distant bucket drops its least-recently-seen contact.
        """
        if node_id == self.owner:
            return None
        self.space.validate(node_id, "contact id")
        while True:
            index = self._bucket_index(node_id)
            bucket = self.buckets[index]
            if bucket.touch(node_id):
                return None
            if not bucket.full:
                bucket.entries.append(node_id)
                return None
            if bucket.covers(self.owner) and bucket.high - bucket.low > 1:
                lower, upper = bucket.split()
                self.buckets[index : index + 1] = [lower, upper]
                continue
            evicted = bucket.entries.pop(0)
            bucket.entries.append(node_id)
            return evicted

    def remove(self, node_id: int) -> None:
        bucket = self.bucket_for(node_id)
        try:
            bucket.entries.remove(node_id)
        except ValueError:
            pass

    def contacts(self) -> list[int]:
        """Every contact, in bucket-range order (deterministic)."""
        out: list[int] = []
        for bucket in self.buckets:
            out.extend(sorted(bucket.entries))
        return out

    def closest(self, key: int, count: int) -> list[int]:
        """The ``count`` contacts XOR-closest to ``key`` (no ties: XOR is
        injective for a fixed key)."""
        return sorted(self.contacts(), key=key.__xor__)[:count]

    def __len__(self) -> int:
        return sum(len(bucket.entries) for bucket in self.buckets)


class KademliaNode:
    """One Kademlia peer.

    Parameters
    ----------
    node_id:
        Identifier in the XOR id space.
    space:
        The identifier space.
    bucket_size:
        The protocol's ``k``: contacts retained per bucket.
    """

    __slots__ = (
        "node_id",
        "space",
        "bucket_size",
        "alive",
        "classes",
        "core",
        "auxiliary",
        "tracker",
    )

    def __init__(self, node_id: int, space: IdSpace, bucket_size: int = 8) -> None:
        self.node_id = space.validate(node_id, "node id")
        self.space = space
        self.bucket_size = bucket_size
        self.alive = True
        #: prefix length -> set of known contacts in that XOR distance
        #: class (``class = space.bits - prefix``); capacity-free view of
        #: ``core | auxiliary`` the routing loop scans.
        self.classes: dict[int, set[int]] = {}
        self.core: set[int] = set()
        self.auxiliary: set[int] = set()
        self.tracker = ExactFrequencyTable()

    # ------------------------------------------------------------------
    # Class bookkeeping
    # ------------------------------------------------------------------
    def class_key(self, other: int) -> int:
        """The prefix-length class another node's id belongs to."""
        return self.space.common_prefix_length(self.node_id, other)

    def _add_to_class(self, other: int) -> None:
        self.classes.setdefault(self.class_key(other), set()).add(other)

    def _remove_from_class(self, other: int) -> None:
        key = self.class_key(other)
        bucket = self.classes.get(key)
        if bucket is not None:
            bucket.discard(other)
            if not bucket:
                del self.classes[key]

    # ------------------------------------------------------------------
    # Neighbor-set maintenance
    # ------------------------------------------------------------------
    def set_core(self, entries: set[int]) -> None:
        """Replace the core contacts (the rebuilt bucket contents)."""
        for old in self.core - entries - self.auxiliary:
            self._remove_from_class(old)
        self.core = {entry for entry in entries if entry != self.node_id}
        for entry in self.core:
            self._add_to_class(entry)

    def set_auxiliary(self, pointers: set[int]) -> None:
        """Install a new auxiliary set (selection output)."""
        for old in self.auxiliary - pointers - self.core:
            self._remove_from_class(old)
        self.auxiliary = {p for p in pointers if p != self.node_id}
        for pointer in self.auxiliary:
            self._add_to_class(pointer)

    def evict(self, dead_id: int) -> None:
        """Drop a contact discovered dead via a lookup timeout."""
        self.core.discard(dead_id)
        self.auxiliary.discard(dead_id)
        self._remove_from_class(dead_id)

    def neighbor_ids(self) -> set[int]:
        """Every currently-known contact."""
        return self.core | self.auxiliary

    def class_snapshot(self) -> dict[int, frozenset[int]]:
        """Read-only copy of the per-class index (verification hook)."""
        return {prefix: frozenset(members) for prefix, members in self.classes.items()}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail abruptly, losing all volatile state."""
        self.alive = False
        self.classes.clear()
        self.core.clear()
        self.auxiliary.clear()
        self.tracker = ExactFrequencyTable()

    # ------------------------------------------------------------------
    # Frequency tracking
    # ------------------------------------------------------------------
    def record_access(self, destination: int) -> None:
        """Note the node that held a queried item (Section III)."""
        if destination != self.node_id:
            self.tracker.observe(destination)

    def frequency_snapshot(self, limit: int | None = None) -> dict[int, float]:
        """Observed per-peer frequencies, optionally top-``limit`` only."""
        snapshot = self.tracker.snapshot(limit)
        snapshot.pop(self.node_id, None)
        return snapshot
