"""Kademlia overlay: k-bucket tables, XOR routing, auxiliary pointers.

The third overlay backend (after :mod:`repro.chord` and
:mod:`repro.pastry`), implementing the same overlay protocol the
simulation, fault, observability, verification and telemetry planes
consume. XOR distance classes are common prefix lengths, so the paper's
eq.-1 machinery transfers verbatim — see
:mod:`repro.core.kademlia_selection`.
"""

from repro.kademlia.network import (
    KADEMLIA_BITS,
    KademliaNetwork,
    oblivious_policy,
    optimal_policy,
    uniform_policy,
)
from repro.kademlia.node import KademliaNode, KBucket, RoutingTable
from repro.kademlia.routing import (
    FindNodeResult,
    KademliaLookupResult,
    iterative_find_node,
    route,
)

__all__ = [
    "KADEMLIA_BITS",
    "FindNodeResult",
    "KBucket",
    "KademliaLookupResult",
    "KademliaNetwork",
    "KademliaNode",
    "RoutingTable",
    "iterative_find_node",
    "oblivious_policy",
    "optimal_policy",
    "route",
    "uniform_policy",
]
