"""Query stream generation for the simulation experiments.

A query is a ``(source_node, item_id)`` pair: a live node asks the overlay
for an item. Sources are drawn uniformly from the live population and the
item follows the source's assigned popularity ranking — matching the
paper's setup where "the queries are samples from this distribution".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.util.errors import ConfigurationError
from repro.workload.items import PopularityModel

__all__ = ["Query", "QueryGenerator"]


@dataclass(frozen=True)
class Query:
    """One lookup request: ``source`` asks for ``item`` (a key in id space)."""

    source: int
    item: int


class QueryGenerator:
    """Draws queries from a popularity model.

    Parameters
    ----------
    popularity:
        The item popularity model (rankings + zipf weights).
    assignment:
        ``{node_id: ranking_index}`` — which ranking each node samples from.
    rng:
        Source of randomness (callers should pass a dedicated substream).
    """

    def __init__(
        self,
        popularity: PopularityModel,
        assignment: dict[int, int],
        rng: random.Random,
    ) -> None:
        if not assignment:
            raise ConfigurationError("assignment must map at least one node")
        for node, index in assignment.items():
            if not 0 <= index < popularity.num_rankings:
                raise ConfigurationError(f"node {node} assigned unknown ranking {index}")
        self.popularity = popularity
        self.assignment = dict(assignment)
        self.rng = rng

    def query_from(self, source: int) -> Query:
        """One query issued by a specific node."""
        ranking = self.assignment.get(source)
        if ranking is None:
            raise ConfigurationError(f"node {source} has no ranking assignment")
        return Query(source, self.popularity.sample_item(ranking, self.rng))

    def random_source(self, live_sources: Sequence[int]) -> int:
        """Uniformly pick a live querying node."""
        if not live_sources:
            raise ConfigurationError("no live sources to query from")
        return live_sources[self.rng.randrange(len(live_sources))]

    def stream(
        self,
        count: int,
        live_sources_fn: Callable[[], Sequence[int]],
    ) -> Iterator[Query]:
        """Yield ``count`` queries, re-reading the live population each time
        (so churn between queries is respected)."""
        for __ in range(count):
            source = self.random_source(live_sources_fn())
            yield self.query_from(source)
