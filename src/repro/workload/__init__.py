"""Workload generation: zipf popularities, item catalogs, query streams."""

from repro.workload.items import ItemCatalog, PopularityModel
from repro.workload.queries import Query, QueryGenerator
from repro.workload.zipf import ZipfDistribution

__all__ = [
    "ItemCatalog",
    "PopularityModel",
    "Query",
    "QueryGenerator",
    "ZipfDistribution",
]

from repro.workload.dynamics import DynamicPopularity, FlashCrowd
from repro.workload.trace import QueryTrace, TimedQuery

__all__ += ["DynamicPopularity", "FlashCrowd", "QueryTrace", "TimedQuery"]

from repro.workload.spec import (
    WORKLOADS,
    WorkloadContext,
    WorkloadSpec,
    WorkloadStream,
    record_trace,
)

__all__ += [
    "WORKLOADS",
    "WorkloadContext",
    "WorkloadSpec",
    "WorkloadStream",
    "record_trace",
]
