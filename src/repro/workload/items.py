"""Item catalogs and popularity models (paper Section VI-A).

The evaluation stores ``m`` items with randomly-generated identifiers in
the overlay and queries them by zipf-distributed popularity. Two ranking
modes exist:

* **identical** — all nodes agree on which item is the most popular
  (one ranking; the mode shown in the Pastry plots), and
* **per-node** — several distinct rankings with the same zipf parameter;
  each node is assigned one at random (five lists in the Chord plots),
  modelling node-local popularity skews.

:class:`PopularityModel` bundles the catalog, distribution and rankings,
and can aggregate item weights into per-destination-node frequencies —
the converged access-frequency table a node would observe after a long
query history.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.util.errors import ConfigurationError
from repro.util.ids import IdSpace
from repro.util.validation import require_positive_int
from repro.workload.zipf import ZipfDistribution

__all__ = ["ItemCatalog", "PopularityModel"]


class ItemCatalog:
    """A set of items with distinct random identifiers in the id space."""

    def __init__(self, space: IdSpace, num_items: int, seed: int = 0) -> None:
        require_positive_int(num_items, "num_items")
        if num_items > space.size:
            raise ConfigurationError(
                f"cannot place {num_items} distinct items in a {space.bits}-bit space"
            )
        self.space = space
        rng = random.Random(seed)
        self.item_ids: list[int] = rng.sample(range(space.size), num_items)

    def __len__(self) -> int:
        return len(self.item_ids)

    def __iter__(self):
        return iter(self.item_ids)


class PopularityModel:
    """Zipf popularities over an item catalog, with one or more rankings.

    Parameters
    ----------
    catalog:
        The items being queried.
    alpha:
        Zipf parameter shared by every ranking.
    num_rankings:
        1 for the identical mode; 5 reproduces the paper's per-node Chord
        setup.
    seed:
        Drives the ranking permutations and node-to-ranking assignment.
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        alpha: float,
        num_rankings: int = 1,
        seed: int = 0,
    ) -> None:
        require_positive_int(num_rankings, "num_rankings")
        self.catalog = catalog
        self.distribution = ZipfDistribution(alpha, len(catalog))
        self._rng = random.Random(seed)
        base = list(catalog.item_ids)
        self.rankings: list[list[int]] = []
        for index in range(num_rankings):
            ranking = list(base)
            if index:  # ranking 0 keeps catalog order: the "identical" list
                self._rng.shuffle(ranking)
            self.rankings.append(ranking)

    @property
    def num_rankings(self) -> int:
        return len(self.rankings)

    def assign_rankings(self, node_ids: Sequence[int]) -> dict[int, int]:
        """Assign each node one ranking uniformly at random (paper VI-A)."""
        return {node_id: self._rng.randrange(self.num_rankings) for node_id in node_ids}

    def sample_item(self, ranking_index: int, rng: random.Random) -> int:
        """Draw an item id according to the given ranking's zipf weights."""
        rank = self.distribution.sample_rank(rng)
        return self.rankings[ranking_index][rank - 1]

    def item_weights(self, ranking_index: int) -> dict[int, float]:
        """``{item_id: probability}`` under one ranking."""
        ranking = self.rankings[ranking_index]
        weights = self.distribution.weights()
        return {item: weight for item, weight in zip(ranking, weights)}

    def node_frequencies(
        self,
        ranking_index: int,
        responsible: Callable[[int], int],
        exclude: int | None = None,
    ) -> dict[int, float]:
        """Aggregate item probabilities by their responsible node.

        This is the long-run destination distribution a node assigned this
        ranking would observe; ``exclude`` drops the querying node itself
        (local items need no pointer).
        """
        frequencies: dict[int, float] = {}
        for item, weight in self.item_weights(ranking_index).items():
            destination = responsible(item)
            if destination == exclude:
                continue
            frequencies[destination] = frequencies.get(destination, 0.0) + weight
        return frequencies
