"""Pluggable workload scenarios: the workload plane (DESIGN.md §13).

The paper measures pointer caching under a single static Zipf stream;
its §II-C "caching items vs caching pointers" argument really turns on
how caches behave when demand *moves*. This module makes the query
stream a first-class, named, swappable component: a
:class:`WorkloadSpec` is parsed from ``NAME[:PARAM]`` (the CLI's
``--workload`` flag), validated against the :data:`WORKLOADS` registry,
and built into a :class:`WorkloadStream` — a deterministic per-cell
query substream the runners consume in place of the bare
:class:`~repro.workload.queries.QueryGenerator`.

Scenarios
---------
``static-zipf``
    The paper's workload, bit-identical to the legacy path: uniform
    sources, per-ranking Zipf items, no time variation.
``drifting-zipf[:SWAP_INTERVAL]``
    Time-varying exponent ranking via
    :class:`~repro.workload.dynamics.DynamicPopularity`: adjacent rank
    pairs swap every ``SWAP_INTERVAL`` virtual seconds (default 30).
``flash-crowd[:CROWDS]``
    Static ranking plus ``CROWDS`` scheduled popularity spikes (default
    3), each promoting a cold item to rank 1 for a slice of the horizon.
``diurnal[:PERIOD]``
    Sinusoidal rate modulation on the round clock: each node is active
    only while the diurnal intensity exceeds its (seeded) threshold, so
    the querying population swells and shrinks with period ``PERIOD``
    virtual seconds (default half the horizon).
``hotspot-rotation[:PERIOD]``
    Adversarial periodic re-ranking: every ``PERIOD`` virtual seconds
    (default 120) the whole ranking rotates by a quarter of the catalog,
    so the learned hot set goes cold in one step.
``trace:PATH``
    Replay of an external :class:`~repro.workload.trace.QueryTrace`
    JSONL file; entries whose source is not live are skipped, and stable
    mode cycles the trace to fill the configured query count.

Determinism contract
--------------------
Every generator must be a pure function of its
:class:`WorkloadContext`: all randomness comes from the two
constructor-injected streams (``rng``, ``scenario_rng``), never from
module or process state; ``advance`` is monotone in virtual time and
idempotent at equal times; and ``stream(count, live_fn)`` is exactly the
``advance(index / rate)`` + ``next_query`` call sequence. Two streams
built from equal contexts therefore emit identical queries — which is
what keeps every scenario byte-identical under ``--jobs`` process
fan-out, and what the mutation test in ``tests/workload`` enforces by
registering a deliberately state-leaking generator and watching the
gate trip.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.util.errors import ConfigurationError
from repro.workload.dynamics import DynamicPopularity, FlashCrowd
from repro.workload.items import ItemCatalog, PopularityModel
from repro.workload.queries import Query, QueryGenerator
from repro.workload.trace import QueryTrace

__all__ = [
    "DEFAULT_RATE",
    "WORKLOADS",
    "WorkloadContext",
    "WorkloadSpec",
    "WorkloadStream",
    "record_trace",
]

#: Nominal arrival rate mapping stable-mode query indices onto the
#: virtual clock (matches the churn runner's Poisson default of 4/s).
DEFAULT_RATE = 4.0


@dataclass
class WorkloadContext:
    """Everything a scenario factory may draw on — and nothing else.

    ``rng`` carries the cell's legacy ``"queries"`` substream (source and
    item draws), ``scenario_rng`` a separate stream for scenario-internal
    randomness (drift seeds, activity thresholds), so ``static-zipf``
    consumes ``rng`` exactly like the pre-plane code did.
    """

    popularity: PopularityModel
    assignment: dict[int, int]
    rng: random.Random
    scenario_rng: random.Random
    alpha: float
    horizon: float
    rate: float = DEFAULT_RATE

    @property
    def catalog(self) -> ItemCatalog:
        return self.popularity.catalog


class WorkloadStream:
    """Base class: a deterministic per-cell query substream.

    Subclasses implement :meth:`next_query`; :meth:`advance` moves the
    virtual clock (no-op for time-invariant scenarios). The stable
    runner drives :meth:`stream`, the churn runner calls
    ``advance(scheduler.now)`` + ``next_query(alive)`` per arrival.
    """

    def __init__(self, context: WorkloadContext) -> None:
        self.context = context

    def advance(self, now: float) -> None:
        """Move the scenario's virtual clock to ``now`` (monotone)."""

    def next_query(self, live_sources: Sequence[int]) -> Query | None:
        """One query from the live population, or ``None`` when the
        scenario is exhausted (trace replay past its last entry)."""
        raise NotImplementedError

    def stream(
        self, count: int, live_sources_fn: Callable[[], Sequence[int]]
    ) -> Iterator[Query]:
        """Yield up to ``count`` queries, ticking the virtual clock at
        the nominal rate and re-reading the live population each time."""
        for index in range(count):
            self.advance(index / self.context.rate)
            query = self.next_query(live_sources_fn())
            if query is None:
                return
            yield query

    def _uniform_source(self, live_sources: Sequence[int]) -> int:
        if not live_sources:
            raise ConfigurationError("no live sources to query from")
        return live_sources[self.context.rng.randrange(len(live_sources))]


class StaticZipfStream(WorkloadStream):
    """The legacy workload, draw-for-draw: uniform source then one
    inverse-CDF item sample from the source's assigned ranking."""

    def __init__(self, context: WorkloadContext) -> None:
        super().__init__(context)
        self._generator = QueryGenerator(
            context.popularity, context.assignment, context.rng
        )

    def next_query(self, live_sources: Sequence[int]) -> Query | None:
        source = self._generator.random_source(live_sources)
        return self._generator.query_from(source)


class DriftingZipfStream(WorkloadStream):
    """Zipf stream whose ranking drifts on the virtual clock."""

    def __init__(self, context: WorkloadContext, swap_interval: float) -> None:
        super().__init__(context)
        catalog = context.catalog
        self.dynamics = DynamicPopularity(
            catalog,
            context.alpha,
            seed=context.scenario_rng.randrange(2**31),
            swap_interval=swap_interval,
            # Scale the per-step churn with the catalog so drift is
            # visible at any size without reshuffling everything.
            swap_count=max(1, len(catalog) // 32),
        )

    def advance(self, now: float) -> None:
        self.dynamics.advance(now)

    def next_query(self, live_sources: Sequence[int]) -> Query | None:
        source = self._uniform_source(live_sources)
        return Query(source, self.dynamics.sample_item(self.context.rng))


class FlashCrowdStream(WorkloadStream):
    """Static ranking punctuated by scheduled popularity spikes.

    ``crowds`` cold-tail items each hold rank 1 for ``horizon / (2 *
    crowds)`` virtual seconds, evenly spaced across the horizon.
    """

    def __init__(self, context: WorkloadContext, crowds: int) -> None:
        super().__init__(context)
        catalog = context.catalog
        items = list(catalog.item_ids)
        # Victims come from the cold tail so each spike is a real upset.
        tail = items[len(items) // 2 :] or items
        duration = max(context.horizon / (2 * crowds), 1.0 / context.rate)
        schedule = [
            FlashCrowd(
                item=tail[context.scenario_rng.randrange(len(tail))],
                start=context.horizon * index / crowds,
                duration=duration,
            )
            for index in range(crowds)
        ]
        self.dynamics = DynamicPopularity(
            catalog,
            context.alpha,
            seed=context.scenario_rng.randrange(2**31),
            swap_count=0,
            flash_crowds=schedule,
        )

    def advance(self, now: float) -> None:
        self.dynamics.advance(now)

    def next_query(self, live_sources: Sequence[int]) -> Query | None:
        source = self._uniform_source(live_sources)
        return Query(source, self.dynamics.sample_item(self.context.rng))


class DiurnalStream(WorkloadStream):
    """Sinusoidal activity modulation of the querying population.

    Node ``s`` is active at time ``t`` when its seeded threshold lies
    below the diurnal intensity ``(1 + sin(2πt / period)) / 2``; item
    draws follow the legacy per-ranking Zipf model, so only *who asks*
    varies with the clock, never *what is popular*.
    """

    def __init__(self, context: WorkloadContext, period: float) -> None:
        super().__init__(context)
        self.period = period
        self._generator = QueryGenerator(
            context.popularity, context.assignment, context.rng
        )
        # Thresholds are drawn in sorted-node order so they do not
        # depend on dict iteration order.
        self._thresholds = {
            source: context.scenario_rng.random()
            for source in sorted(context.assignment)
        }
        self._now = 0.0

    def advance(self, now: float) -> None:
        self._now = max(self._now, now)

    def intensity(self, now: float) -> float:
        """Diurnal activity level in [0, 1] at virtual time ``now``."""
        return 0.5 * (1.0 + math.sin(2.0 * math.pi * now / self.period))

    def active_sources(self, live_sources: Sequence[int]) -> list[int]:
        level = self.intensity(self._now)
        active = [
            source
            for source in live_sources
            if self._thresholds.get(source, 1.0) <= level
        ]
        # Midnight trough: nobody clears the bar, so arrivals fall back
        # to the whole live population rather than stalling the stream.
        return active or list(live_sources)

    def next_query(self, live_sources: Sequence[int]) -> Query | None:
        active = self.active_sources(live_sources)
        if not active:
            raise ConfigurationError("no live sources to query from")
        source = active[self.context.rng.randrange(len(active))]
        return self._generator.query_from(source)


class HotspotRotationStream(WorkloadStream):
    """Adversarial periodic re-ranking: every ``period`` virtual seconds
    the ranking rotates by a quarter of the catalog, so frequency tables
    learned in one epoch point at the wrong hot set in the next."""

    def __init__(self, context: WorkloadContext, period: float) -> None:
        super().__init__(context)
        self.period = period
        self._ranking = list(context.catalog.item_ids)
        self.stride = max(1, len(self._ranking) // 4)
        self._epoch = 0

    def advance(self, now: float) -> None:
        self._epoch = max(self._epoch, int(now // self.period))

    def ranking(self) -> list[int]:
        """The current epoch's ranking (hottest first)."""
        offset = (self._epoch * self.stride) % len(self._ranking)
        return self._ranking[offset:] + self._ranking[:offset]

    def next_query(self, live_sources: Sequence[int]) -> Query | None:
        source = self._uniform_source(live_sources)
        rank = self.context.popularity.distribution.sample_rank(self.context.rng)
        offset = (self._epoch * self.stride) % len(self._ranking)
        return Query(source, self._ranking[(rank - 1 + offset) % len(self._ranking)])


class TraceStream(WorkloadStream):
    """Replay of a recorded :class:`QueryTrace`.

    Entries are consumed in order; an entry whose source is not in the
    live population is skipped (matching ``QueryTrace.replay_onto``).
    Stable mode cycles the trace to fill the configured query count; a
    full fruitless pass (no live source anywhere) ends the stream.
    """

    def __init__(self, context: WorkloadContext, trace: QueryTrace) -> None:
        super().__init__(context)
        if not len(trace):
            raise ConfigurationError("trace workload is empty: no entries to replay")
        self.trace = trace
        self._cursor = 0

    def next_query(self, live_sources: Sequence[int]) -> Query | None:
        live = set(live_sources)
        for __ in range(len(self.trace)):
            entry = self.trace.entries[self._cursor]
            self._cursor = (self._cursor + 1) % len(self.trace)
            if entry.source in live:
                return entry.query()
        return None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def _parse_float(name: str, param: str, minimum: float) -> float:
    try:
        value = float(param)
    except ValueError:
        raise ConfigurationError(
            f"workload {name!r} expects a numeric parameter, got {param!r}"
        ) from None
    if value <= minimum:
        raise ConfigurationError(
            f"workload {name!r} parameter must be > {minimum:g}, got {value:g}"
        )
    return value


def _parse_int(name: str, param: str, minimum: int) -> int:
    try:
        value = int(param)
    except ValueError:
        raise ConfigurationError(
            f"workload {name!r} expects an integer parameter, got {param!r}"
        ) from None
    if value < minimum:
        raise ConfigurationError(
            f"workload {name!r} parameter must be >= {minimum}, got {value}"
        )
    return value


def _build_static(context: WorkloadContext, param: str | None) -> WorkloadStream:
    if param is not None:
        raise ConfigurationError("workload 'static-zipf' takes no parameter")
    return StaticZipfStream(context)


def _build_drifting(context: WorkloadContext, param: str | None) -> WorkloadStream:
    interval = _parse_float("drifting-zipf", param, 0.0) if param else 30.0
    return DriftingZipfStream(context, swap_interval=interval)


def _build_flash_crowd(context: WorkloadContext, param: str | None) -> WorkloadStream:
    crowds = _parse_int("flash-crowd", param, 1) if param else 3
    return FlashCrowdStream(context, crowds=crowds)


def _build_diurnal(context: WorkloadContext, param: str | None) -> WorkloadStream:
    period = (
        _parse_float("diurnal", param, 0.0)
        if param
        else max(context.horizon / 2.0, 1.0)
    )
    return DiurnalStream(context, period=period)


def _build_hotspot(context: WorkloadContext, param: str | None) -> WorkloadStream:
    period = _parse_float("hotspot-rotation", param, 0.0) if param else 120.0
    return HotspotRotationStream(context, period=period)


def _build_trace(context: WorkloadContext, param: str | None) -> WorkloadStream:
    if not param:
        raise ConfigurationError(
            "workload 'trace' needs a path parameter: trace:/path/to/file.jsonl"
        )
    return TraceStream(context, QueryTrace.load(param))


#: Scenario registry: name -> ``factory(context, param) -> WorkloadStream``.
WORKLOADS: dict[str, Callable[[WorkloadContext, str | None], WorkloadStream]] = {
    "static-zipf": _build_static,
    "drifting-zipf": _build_drifting,
    "flash-crowd": _build_flash_crowd,
    "diurnal": _build_diurnal,
    "hotspot-rotation": _build_hotspot,
    "trace": _build_trace,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """A parsed ``NAME[:PARAM]`` workload selector."""

    name: str
    param: str | None = None

    def __post_init__(self) -> None:
        if self.name not in WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.name!r}; expected one of {sorted(WORKLOADS)}"
            )

    @classmethod
    def parse(cls, text: str) -> "WorkloadSpec":
        """Parse ``NAME`` or ``NAME:PARAM`` (``trace:PATH`` keeps the
        whole remainder — paths may contain colons)."""
        if not isinstance(text, str) or not text:
            raise ConfigurationError(f"workload must be a non-empty string, got {text!r}")
        name, sep, param = text.partition(":")
        return cls(name, param if sep else None)

    @property
    def label(self) -> str:
        """Canonical ``NAME[:PARAM]`` round-trip form."""
        return self.name if self.param is None else f"{self.name}:{self.param}"

    @property
    def is_static(self) -> bool:
        """True for the legacy default (the bit-identical fast path)."""
        return self.name == "static-zipf"

    def describe(self) -> str:
        """Human-readable one-liner for banners and dashboards."""
        if self.name == "static-zipf":
            return "static zipf"
        if self.name == "drifting-zipf":
            return f"drifting zipf (swap every {self.param or '30'}s)"
        if self.name == "flash-crowd":
            return f"zipf + {self.param or '3'} flash crowds"
        if self.name == "diurnal":
            period = self.param or "horizon/2"
            return f"diurnal activity (period {period}s)"
        if self.name == "hotspot-rotation":
            return f"hotspot rotation (every {self.param or '120'}s)"
        return f"trace replay ({self.param})"

    def build(self, context: WorkloadContext) -> WorkloadStream:
        """Instantiate the scenario's stream for one cell."""
        return WORKLOADS[self.name](context, self.param)


def record_trace(
    stream: WorkloadStream,
    count: int,
    live_sources_fn: Callable[[], Sequence[int]],
    metadata: dict | None = None,
) -> QueryTrace:
    """Materialize ``count`` queries of ``stream`` into a replayable
    trace, timestamped on the stream's own virtual clock."""
    trace = QueryTrace(metadata=metadata or {})
    rate = stream.context.rate
    for index, query in enumerate(stream.stream(count, live_sources_fn)):
        trace.record(index / rate, query.source, query.item)
    return trace
