"""Query-trace recording and replay.

Research workflows often want the *same* query sequence replayed across
code versions, parameter sweeps, or against another implementation. A
trace is a plain JSON-lines file — one ``{"t": time, "src": node,
"item": key}`` object per line, with a one-line header carrying metadata —
so traces are diffable, greppable and creatable by external tools.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.util.errors import ConfigurationError
from repro.workload.queries import Query

__all__ = ["TimedQuery", "QueryTrace"]

_FORMAT = "repro-query-trace-v1"


@dataclass(frozen=True)
class TimedQuery:
    """A query with its (virtual) issue time."""

    time: float
    source: int
    item: int

    def query(self) -> Query:
        return Query(self.source, self.item)


@dataclass
class QueryTrace:
    """An in-memory query trace with JSONL persistence.

    Example
    -------
    >>> trace = QueryTrace(metadata={"workload": "zipf-1.2"})
    >>> trace.record(0.5, source=3, item=77)
    >>> [q.item for q in trace]
    [77]
    """

    metadata: dict = field(default_factory=dict)
    entries: list[TimedQuery] = field(default_factory=list)

    def record(self, time: float, source: int, item: int) -> None:
        """Append one query; times must be non-decreasing."""
        if self.entries and time < self.entries[-1].time:
            raise ConfigurationError("trace times must be non-decreasing")
        self.entries.append(TimedQuery(time, source, item))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TimedQuery]:
        return iter(self.entries)

    def sources(self) -> set[int]:
        """All distinct querying nodes in the trace."""
        return {entry.source for entry in self.entries}

    def between(self, start: float, end: float) -> list[TimedQuery]:
        """Entries with ``start <= time < end`` (times are sorted)."""
        return [entry for entry in self.entries if start <= entry.time < end]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace as JSONL (header line + one line per query)."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            header = {"format": _FORMAT, "metadata": self.metadata, "count": len(self.entries)}
            handle.write(json.dumps(header) + "\n")
            for entry in self.entries:
                handle.write(
                    json.dumps({"t": entry.time, "src": entry.source, "item": entry.item}) + "\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "QueryTrace":
        """Read a trace written by :meth:`save` (validating the format)."""
        source = Path(path)
        with source.open("r", encoding="utf-8") as handle:
            header_line = handle.readline()
            if not header_line:
                raise ConfigurationError(f"{source} is empty, not a trace")
            try:
                header = json.loads(header_line)
            except ValueError as error:
                raise ConfigurationError(
                    f"{source}:1: malformed trace header ({error})"
                ) from error
            if not isinstance(header, dict):
                raise ConfigurationError(
                    f"{source}:1: trace header must be a JSON object, "
                    f"got {type(header).__name__}"
                )
            if header.get("format") != _FORMAT:
                raise ConfigurationError(
                    f"{source}:1: not a {_FORMAT} file (format={header.get('format')!r})"
                )
            trace = cls(metadata=header.get("metadata", {}))
            for line_number, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    payload = json.loads(line)
                    trace.record(payload["t"], payload["src"], payload["item"])
                except (KeyError, TypeError, ValueError) as error:
                    raise ConfigurationError(
                        f"{source}:{line_number}: malformed trace entry ({error})"
                    ) from error
        if len(trace) != header.get("count", len(trace)):
            raise ConfigurationError(
                f"{source}: header promises {header['count']} entries, found {len(trace)}"
            )
        return trace

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_queries(cls, queries: Iterable[Query], rate: float = 4.0, metadata: dict | None = None) -> "QueryTrace":
        """Wrap untimed queries with evenly spaced timestamps at ``rate``/s."""
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate!r}")
        trace = cls(metadata=metadata or {})
        for index, query in enumerate(queries):
            trace.record(index / rate, query.source, query.item)
        return trace

    def replay_onto(self, overlay, record_access: bool = False, **lookup_kwargs) -> list:
        """Route every trace entry on ``overlay`` (Chord ring or Pastry
        network); returns the lookup results in trace order. Entries whose
        source is not alive at replay time are skipped."""
        results = []
        for entry in self.entries:
            node = overlay.nodes.get(entry.source)
            if node is None or not node.alive:
                continue
            results.append(
                overlay.lookup(entry.source, entry.item, record_access=record_access, **lookup_kwargs)
            )
        return results
