"""Time-varying popularity: gradual drift and flash crowds.

The paper's Section IV-C motivates incremental maintenance with "node
popularities change"; Section III leaves open *when* to recompute. This
module provides the workload side of those questions: a popularity process
whose ranking evolves over time, so maintenance policies (periodic,
drift-triggered, incremental) can be compared on something that actually
moves.

Two mechanisms, composable:

* **Gradual drift** — every ``swap_interval`` time units, ``swap_count``
  adjacent rank pairs swap (a lazy random transposition walk; the
  distribution's shape is preserved while the identity of the hot items
  slowly changes).
* **Flash crowds** — at scheduled times, a previously arbitrary item is
  promoted to rank 1 for a configurable duration, then demoted back.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.util.errors import ConfigurationError
from repro.util.validation import require_positive
from repro.workload.items import ItemCatalog
from repro.workload.zipf import ZipfDistribution

__all__ = ["FlashCrowd", "DynamicPopularity"]


@dataclass(frozen=True)
class FlashCrowd:
    """A scheduled popularity spike: ``item`` holds rank 1 during
    ``[start, start + duration)``."""

    item: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        require_positive(self.duration, "duration")
        if self.start < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


class DynamicPopularity:
    """A zipf popularity whose ranking evolves with virtual time.

    Unlike :class:`~repro.workload.items.PopularityModel` (static
    rankings), this class must be *advanced*: call :meth:`advance` with the
    current virtual time before sampling. Drift is applied in whole
    ``swap_interval`` steps so two runs advancing through the same times
    see identical rankings.

    Example
    -------
    >>> catalog = ItemCatalog(__import__("repro.util.ids", fromlist=["IdSpace"]).IdSpace(16), 10, seed=1)
    >>> pop = DynamicPopularity(catalog, alpha=1.2, seed=2, swap_interval=10.0, swap_count=1)
    >>> before = pop.ranking()
    >>> pop.advance(100.0)
    >>> sorted(before) == sorted(pop.ranking())
    True
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        alpha: float,
        seed: int = 0,
        swap_interval: float = 60.0,
        swap_count: int = 1,
        flash_crowds: list[FlashCrowd] | None = None,
    ) -> None:
        require_positive(swap_interval, "swap_interval")
        if swap_count < 0:
            raise ConfigurationError(f"swap_count must be >= 0, got {swap_count}")
        self.catalog = catalog
        self.distribution = ZipfDistribution(alpha, len(catalog))
        self.swap_interval = swap_interval
        self.swap_count = swap_count
        self.flash_crowds = list(flash_crowds or [])
        for crowd in self.flash_crowds:
            if crowd.item not in set(catalog.item_ids):
                raise ConfigurationError(f"flash-crowd item {crowd.item} not in the catalog")
        self._drift_rng = random.Random(seed)
        self._ranking: list[int] = list(catalog.item_ids)
        self._steps_applied = 0
        self.now = 0.0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def advance(self, now: float) -> int:
        """Move virtual time forward, applying any due drift steps.

        Returns the number of drift steps applied. Time never goes
        backwards.
        """
        if now < self.now:
            raise ConfigurationError("time cannot go backwards")
        self.now = now
        due = int(now // self.swap_interval)
        applied = 0
        while self._steps_applied < due:
            self._apply_drift_step()
            self._steps_applied += 1
            applied += 1
        return applied

    def _apply_drift_step(self) -> None:
        size = len(self._ranking)
        for __ in range(self.swap_count):
            index = self._drift_rng.randrange(size - 1) if size > 1 else 0
            self._ranking[index], self._ranking[index + 1] = (
                self._ranking[index + 1],
                self._ranking[index],
            )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def ranking(self) -> list[int]:
        """Current ranking, flash crowds applied (hottest first)."""
        ranking = list(self._ranking)
        # Active crowds are pulled to the front, latest-starting first.
        active = sorted(
            (crowd for crowd in self.flash_crowds if crowd.active_at(self.now)),
            key=lambda crowd: -crowd.start,
        )
        for crowd in active:
            ranking.remove(crowd.item)
            ranking.insert(0, crowd.item)
        return ranking

    def item_weights(self) -> dict[int, float]:
        """Current ``{item: probability}`` under the evolved ranking."""
        weights = self.distribution.weights()
        return {item: weight for item, weight in zip(self.ranking(), weights)}

    def sample_item(self, rng: random.Random) -> int:
        """Draw an item under the *current* ranking."""
        rank = self.distribution.sample_rank(rng)
        return self.ranking()[rank - 1]

    def node_frequencies(self, responsible, exclude: int | None = None) -> dict[int, float]:
        """Aggregate the current item weights by responsible node."""
        frequencies: dict[int, float] = {}
        for item, weight in self.item_weights().items():
            destination = responsible(item)
            if destination == exclude:
                continue
            frequencies[destination] = frequencies.get(destination, 0.0) + weight
        return frequencies
