"""Zipfian popularity distributions (paper Section VI-A).

The evaluation assigns item popularities from a zipf law with parameter
``alpha`` (1.2 and 0.91 in the plots): the item of popularity rank ``r``
has weight proportional to ``1 / r**alpha``.

Sampling uses the inverse-CDF method over the precomputed cumulative
weights, so draws cost ``O(log n)`` and are fully deterministic given the
caller's :class:`random.Random`.
"""

from __future__ import annotations

import random
from bisect import bisect_left

from repro.util.errors import ConfigurationError
from repro.util.validation import require_positive, require_positive_int

__all__ = ["ZipfDistribution"]


class ZipfDistribution:
    """Finite zipf distribution over ranks ``1 .. size``.

    Parameters
    ----------
    alpha:
        Skew parameter; larger means more mass on the top ranks.
    size:
        Number of ranks.

    Example
    -------
    >>> dist = ZipfDistribution(alpha=1.2, size=100)
    >>> dist.weight(1) > dist.weight(2) > dist.weight(100)
    True
    """

    def __init__(self, alpha: float, size: int) -> None:
        require_positive(alpha, "alpha")
        require_positive_int(size, "size")
        self.alpha = alpha
        self.size = size
        raw = [rank ** -alpha for rank in range(1, size + 1)]
        total = sum(raw)
        self._weights = [value / total for value in raw]
        self._cumulative: list[float] = []
        running = 0.0
        for value in self._weights:
            running += value
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0  # guard against rounding drift

    def weight(self, rank: int) -> float:
        """Normalized probability of the item at 1-based ``rank``."""
        if not 1 <= rank <= self.size:
            raise ConfigurationError(f"rank {rank} outside [1, {self.size}]")
        return self._weights[rank - 1]

    def weights(self) -> list[float]:
        """All normalized weights, heaviest first (a copy)."""
        return list(self._weights)

    def sample_rank(self, rng: random.Random) -> int:
        """Draw a 1-based rank with probability proportional to its weight."""
        return bisect_left(self._cumulative, rng.random()) + 1

    def head_mass(self, count: int) -> float:
        """Total probability captured by the ``count`` heaviest ranks."""
        if count <= 0:
            return 0.0
        return self._cumulative[min(count, self.size) - 1]
