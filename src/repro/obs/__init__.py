"""Observability plane: structured lookup tracing and run manifests.

``repro.obs`` turns the aggregate curves the runners emit into
diagnosable behaviour: per-hop trace events with pointer-class
attribution (:mod:`repro.obs.recorder`), provenance manifests on every
result document (:mod:`repro.obs.manifest`), and a traced replay of any
stable-mode cell (:mod:`repro.obs.driver`). Tracing is strictly
observe-only and zero-cost when disabled — the routing layers take a
``trace`` recorder that defaults to off.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_digest,
    config_payload,
    environment_info,
    git_revision,
    strip_volatile,
)
from repro.obs.recorder import (
    POINTER_CLASSES,
    VERDICTS,
    CounterSet,
    HopEvent,
    LookupTrace,
    LookupTracer,
    NullRecorder,
    TraceRecorder,
)

# The driver pulls in the experiment runners, which pull in the routing
# layers, which import ``repro.obs.recorder`` — importing it eagerly here
# would close that loop. PEP 562 lazy exports break the cycle while
# keeping ``from repro.obs import trace_cell`` working.
_DRIVER_EXPORTS = ("TRACE_SCHEMA", "trace_cell", "trace_cells")


def __getattr__(name):
    if name in _DRIVER_EXPORTS:
        from repro.obs import driver

        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "TRACE_SCHEMA",
    "MANIFEST_SCHEMA",
    "POINTER_CLASSES",
    "VERDICTS",
    "HopEvent",
    "LookupTrace",
    "TraceRecorder",
    "NullRecorder",
    "CounterSet",
    "LookupTracer",
    "build_manifest",
    "config_digest",
    "config_payload",
    "environment_info",
    "git_revision",
    "strip_volatile",
    "trace_cell",
    "trace_cells",
]
