"""Observability plane: structured lookup tracing and run manifests.

``repro.obs`` turns the aggregate curves the runners emit into
diagnosable behaviour: per-hop trace events with pointer-class
attribution (:mod:`repro.obs.recorder`), provenance manifests on every
result document (:mod:`repro.obs.manifest`), and a traced replay of any
stable-mode cell (:mod:`repro.obs.driver`). Tracing is strictly
observe-only and zero-cost when disabled — the routing layers take a
``trace`` recorder that defaults to off.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_digest,
    config_payload,
    environment_info,
    git_revision,
    strip_volatile,
)
from repro.obs.recorder import (
    POINTER_CLASSES,
    VERDICTS,
    CounterSet,
    HopEvent,
    LookupTrace,
    LookupTracer,
    NullRecorder,
    TraceRecorder,
)

# The driver pulls in the experiment runners, which pull in the routing
# layers, which import ``repro.obs.recorder`` — importing it eagerly here
# would close that loop. The attribution plane imports the routing
# layers for its oblivious walkers, so it sits in the same cycle. PEP
# 562 lazy exports break both while keeping ``from repro.obs import
# trace_cell`` (and ``AttributionRecorder``) working.
_DRIVER_EXPORTS = ("TRACE_SCHEMA", "trace_cell", "trace_cells")
_ATTRIBUTION_EXPORTS = (
    "OVERLAY_KINDS",
    "AttributionRecorder",
    "PointerStats",
    "TeeRecorder",
    "attribute_batch",
    "oblivious_route_length",
)


def __getattr__(name):
    if name in _DRIVER_EXPORTS:
        from repro.obs import driver

        return getattr(driver, name)
    if name in _ATTRIBUTION_EXPORTS:
        from repro.obs import attribution

        return getattr(attribution, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "TRACE_SCHEMA",
    "MANIFEST_SCHEMA",
    "POINTER_CLASSES",
    "VERDICTS",
    "HopEvent",
    "LookupTrace",
    "TraceRecorder",
    "NullRecorder",
    "CounterSet",
    "LookupTracer",
    "OVERLAY_KINDS",
    "AttributionRecorder",
    "PointerStats",
    "TeeRecorder",
    "attribute_batch",
    "build_manifest",
    "config_digest",
    "config_payload",
    "environment_info",
    "git_revision",
    "oblivious_route_length",
    "strip_volatile",
    "trace_cell",
    "trace_cells",
]
