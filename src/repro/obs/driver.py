"""Traced experiment cells: run one stable-mode cell with tracing on.

:func:`trace_cell` replays exactly the universe ``run_stable`` builds for
one policy — same registry substreams, same overlay, same workload, same
fault realization — but hands the router a :class:`LookupTracer`, so the
per-hop story of every lookup (or a seeded reservoir sample of them) is
captured. Because recorders only observe, the aggregate statistics of a
traced cell are bit-identical to the untraced run; ``tests/obs`` pins
this, which is what lets traces explain production numbers rather than
numbers-of-a-slightly-different-run.

:func:`trace_cells` fans multiple cells over worker processes with the
same order-preserving, seed-rebuilding machinery as the experiment
drivers, so trace documents are bit-identical (after
:func:`~repro.obs.manifest.strip_volatile`) at any ``--jobs`` value.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.faults.injector import apply_stable_faults, maybe_corrupt
from repro.faults.plane import FaultPlane
from repro.obs.manifest import build_manifest
from repro.obs.recorder import LookupTracer
from repro.sim.metrics import HopStatistics
from repro.sim.runner import ExperimentConfig, _Bench
from repro.util.errors import ConfigurationError
from repro.util.parallel import run_tasks
from repro.util.rng import SeedSequenceRegistry, substream_seed

__all__ = ["TRACE_SCHEMA", "trace_cell", "trace_cells"]

TRACE_SCHEMA = "TRACE_v1"

_POLICIES = ("optimal", "oblivious")


def _json_float(value: float) -> float | None:
    """NaN is not valid strict JSON; degrade it to ``null``."""
    return None if isinstance(value, float) and math.isnan(value) else value


def trace_cell(
    config: ExperimentConfig,
    policy: str = "optimal",
    sample: int | None = None,
) -> dict:
    """Run one stable-mode cell under ``policy`` with tracing enabled.

    Returns a picklable ``TRACE_v1`` document: the cell's manifest, the
    hop-class/verdict counter aggregates over *all* lookups, the kept
    per-lookup traces (all of them, or a ``sample``-sized seeded
    reservoir), the usual :class:`HopStatistics` summary, and the fault
    plane's injection counters when faults were active.
    """
    if policy not in _POLICIES:
        raise ConfigurationError(f"unknown policy {policy!r}; expected one of {_POLICIES}")
    registry = SeedSequenceRegistry(config.seed)
    bench = _Bench(config, registry)
    if config.learned_frequencies:
        generator = bench.query_generator("warmup-queries")
        alive = bench.overlay.alive_ids()
        for query in generator.stream(config.effective_warmup_queries, lambda: alive):
            bench.lookup(query.source, query.item, record_access=True)
    else:
        bench.seed_all()
    optimal, oblivious = bench.policies()
    chosen = optimal if policy == "optimal" else oblivious
    bench.overlay.recompute_all_auxiliary(
        config.effective_k,
        chosen,
        registry.fresh(f"policy-rng-{policy}"),
        frequency_limit=config.frequency_limit,
    )
    plane: FaultPlane | None = None
    if config.faults_active:
        plane = FaultPlane(config.faults, registry.fresh("fault-plane"))
        apply_stable_faults(plane, bench.overlay)
    retry = config.effective_retry
    # The reservoir draws from its own substream: tracing must never
    # perturb the simulation's RNG streams.
    tracer = LookupTracer(sample=sample, seed=substream_seed(config.seed, "trace-reservoir"))
    stats = HopStatistics(keep_samples=True)
    generator = bench.query_generator("queries")
    alive = bench.overlay.alive_ids()
    for query in generator.stream(config.queries, lambda: alive):
        if plane is not None:
            maybe_corrupt(plane, bench.overlay)
        stats.record(
            bench.lookup(
                query.source,
                query.item,
                record_access=False,
                retry=retry,
                faults=plane,
                trace=tracer,
            )
        )
    percentiles = {
        key: _json_float(value) for key, value in stats.latency_percentiles().items()
    }
    return {
        "schema": TRACE_SCHEMA,
        "overlay": config.overlay,
        "policy": policy,
        "manifest": build_manifest(config),
        "stats": {
            "lookups": stats.lookups,
            "successes": stats.successes,
            "failures": stats.failures,
            "mean_hops": _json_float(stats.mean_hops),
            "failure_rate": stats.failure_rate,
            "timeout_rate": stats.timeout_rate,
            **percentiles,
        },
        "counters": tracer.counters.to_dict(),
        "sample": tracer.sample,
        "seen": tracer.seen,
        "kept": len(tracer.traces),
        "traces": [trace.to_dict() for trace in tracer.traces],
        "fault_counters": plane.counters() if plane is not None else None,
    }


def _trace_task(task: tuple[ExperimentConfig, str, int | None]) -> dict:
    config, policy, sample = task
    return trace_cell(config, policy=policy, sample=sample)


def trace_cells(
    configs: Sequence[ExperimentConfig],
    policy: str = "optimal",
    sample: int | None = None,
    jobs: int | None = None,
) -> list[dict]:
    """Trace several cells, optionally across worker processes.

    Each cell rebuilds its own registry from its config-embedded seed, so
    the returned documents are identical (manifest volatile block aside)
    at any worker count — the same contract the experiment drivers hold.
    """
    tasks = [(config, policy, sample) for config in configs]
    return run_tasks(_trace_task, tasks, jobs=jobs)
