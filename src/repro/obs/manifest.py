"""Run manifests: the provenance block attached to every experiment JSON.

A result file that cannot answer "what exact configuration, code revision
and environment produced you?" is not reproducible — it is just numbers.
Every JSON document the experiment drivers and the perf runner emit gains
a ``manifest`` block built here.

The block is split in two on purpose:

* the **deterministic part** — config echo, canonical config digest,
  master seed, git revision, interpreter/platform/numpy versions — is a
  pure function of (config, checkout, environment), so two runs of the
  same cell on the same machine produce byte-identical manifests up to
  this part; the jobs-determinism tests compare documents after
  stripping the rest;
* the **volatile part** (``manifest["volatile"]``) — wall time, creation
  timestamp, hostname, argv — varies run to run by nature and is
  quarantined in one sub-dict so consumers can drop it with
  :func:`strip_volatile` before any byte comparison.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import socket
import subprocess
import sys
import time
from typing import Any

__all__ = [
    "MANIFEST_SCHEMA",
    "config_digest",
    "config_payload",
    "git_revision",
    "environment_info",
    "build_manifest",
    "strip_volatile",
]

MANIFEST_SCHEMA = "MANIFEST_v1"


def config_payload(config: Any) -> Any:
    """A JSON-ready echo of ``config`` (dataclasses become dicts, nested
    dataclasses — e.g. a ``FaultSchedule`` inside an ``ExperimentConfig``
    — recurse; plain dicts/sequences/scalars pass through)."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
        payload["__type__"] = type(config).__name__
        return payload
    if isinstance(config, dict):
        return {str(key): config_payload(value) for key, value in config.items()}
    if isinstance(config, (list, tuple)):
        return [config_payload(value) for value in config]
    return config


def config_digest(config: Any) -> str:
    """SHA-256 over the canonical JSON form of ``config`` — a stable
    fingerprint two runs can compare without diffing whole configs."""
    payload = config_payload(config)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_revision(cwd: str | None = None) -> str | None:
    """The checkout's HEAD revision, or ``None`` outside a git repo (or
    when git itself is unavailable) — manifests must never make a run
    fail just because provenance is partial."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else None


def environment_info() -> dict:
    """Interpreter / platform / numpy versions (the dials that move
    floating-point results between machines)."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is baked into the image
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "numpy": numpy_version,
    }


def build_manifest(
    config: Any = None,
    *,
    seed: int | None = None,
    wall_time_s: float | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble one manifest block.

    ``config`` is echoed and digested when given; ``seed`` defaults to
    ``config.seed`` when the config carries one. ``extra`` merges
    caller-specific deterministic fields (e.g. a preset name) into the
    top level. Wall time and other run-local facts land under
    ``"volatile"``.
    """
    if seed is None and config is not None:
        seed = getattr(config, "seed", None)
    manifest: dict = {
        "schema": MANIFEST_SCHEMA,
        "config": config_payload(config) if config is not None else None,
        "config_digest": config_digest(config) if config is not None else None,
        "seed": seed,
        "git_rev": git_revision(),
        "env": environment_info(),
    }
    if extra:
        manifest.update(extra)
    manifest["volatile"] = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "wall_time_s": wall_time_s,
        "hostname": socket.gethostname(),
        "argv": list(sys.argv),
    }
    return manifest


def strip_volatile(document: Any) -> Any:
    """A deep copy of ``document`` with every ``manifest``-style
    ``"volatile"`` sub-block removed — the form used for byte-identity
    comparisons across runs and worker counts."""
    if isinstance(document, dict):
        return {
            key: strip_volatile(value)
            for key, value in document.items()
            if key != "volatile"
        }
    if isinstance(document, list):
        return [strip_volatile(value) for value in document]
    return document
