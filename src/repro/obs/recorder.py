"""Structured lookup tracing: per-hop events and pluggable recorders.

The paper's evaluation (Section V/VI) reasons about *per-lookup hop
paths* — which pointer class (core finger, successor list, leaf set,
auxiliary) resolved each hop, and where retries and timeouts were
charged — but the aggregate :class:`~repro.sim.metrics.HopStatistics`
cannot answer "why did this cell's mean move?". This module is the
observation plane that can.

Design contract — **zero cost when disabled**:

* Both routing layers accept ``trace: TraceRecorder | None = None``. At
  entry they normalize the recorder to ``None`` unless it is *enabled*
  (``NullRecorder`` normalizes away exactly like ``None``), so the hot
  loop pays a single ``is not None`` branch per event site and allocates
  nothing. ``repro.perf.overhead`` measures this and the bench gate
  holds it under 2%.
* With tracing enabled, routing behaviour is bit-identical: recorders
  never touch the overlay, the RNG streams, or the returned result —
  they only observe. ``tests/obs`` asserts this.

Event model: one :class:`HopEvent` per *attempted forwarding target*
(delivered or evicted), carrying the forwarding node, the chosen
pointer class, the number of delivery attempts, the extra backoff
penalty, and the per-failed-attempt fault verdicts (``"dead"``,
``"dropped"``, ``"blocked"``). One :class:`LookupTrace` bundles a whole
lookup. Recorders receive the finished trace via ``record_lookup``:

* :class:`NullRecorder` — the disabled default; never sees an event.
* :class:`CounterSet` — cheap aggregate: hop counts per pointer class,
  timeout counts per verdict, retries, penalties.
* :class:`LookupTracer` — keeps full traces, optionally bounded by
  seeded reservoir sampling so production-size runs stay bounded; also
  feeds an embedded :class:`CounterSet` with *every* lookup (sampling
  only limits stored paths, never the aggregates).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.util.errors import ConfigurationError

__all__ = [
    "POINTER_CLASSES",
    "VERDICTS",
    "HopEvent",
    "LookupTrace",
    "TraceRecorder",
    "NullRecorder",
    "CounterSet",
    "LookupTracer",
]

#: Pointer classes a hop can be attributed to. ``core`` = finger/routing
#: table entry, ``successor`` = Chord successor list, ``leaf`` = Pastry
#: leaf set, ``auxiliary`` = a selection-installed pointer, ``fallback``
#: = Pastry's rare numerically-closer-neighbor escape hatch.
POINTER_CLASSES = ("core", "successor", "leaf", "auxiliary", "fallback", "unknown")

#: Why a delivery attempt failed: the target was dead, the fault plane
#: dropped the message, or a partition blocked it.
VERDICTS = ("dead", "dropped", "blocked")


@dataclass(frozen=True)
class HopEvent:
    """One attempted forward to one target during a lookup.

    ``attempts`` counts delivery attempts made (>= 1); ``timeouts`` the
    failed ones among them (``attempts - 1`` when delivered, otherwise
    ``attempts``). ``penalty`` is the *extra* backoff latency charged
    beyond the one-hop-per-timeout baseline. ``verdicts`` holds one
    entry per failed attempt, aligned with attempt order.
    """

    forwarder: int
    target: int
    pointer_class: str
    delivered: bool
    attempts: int
    timeouts: int
    penalty: float
    verdicts: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "forwarder": self.forwarder,
            "target": self.target,
            "pointer_class": self.pointer_class,
            "delivered": self.delivered,
            "attempts": self.attempts,
            "timeouts": self.timeouts,
            "penalty": self.penalty,
            "verdicts": list(self.verdicts),
        }


@dataclass(frozen=True)
class LookupTrace:
    """The full per-hop story of one lookup."""

    key: int
    source: int
    destination: int | None
    succeeded: bool
    hops: int
    timeouts: int
    penalty: float
    events: tuple[HopEvent, ...] = ()

    @property
    def path(self) -> list[int]:
        """The node path actually travelled (delivered hops only)."""
        return [self.source] + [e.target for e in self.events if e.delivered]

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "source": self.source,
            "destination": self.destination,
            "succeeded": self.succeeded,
            "hops": self.hops,
            "timeouts": self.timeouts,
            "penalty": self.penalty,
            "events": [event.to_dict() for event in self.events],
        }


@runtime_checkable
class TraceRecorder(Protocol):
    """What the routing layers need from a recorder.

    ``enabled`` is consulted **once per lookup** at route entry; when
    false the router behaves exactly as if no recorder was passed (this
    is what makes :class:`NullRecorder` free). ``record_lookup`` is
    called once per lookup with the result object and the hop events.
    """

    enabled: bool

    def record_lookup(self, result, events: Sequence[HopEvent]) -> None: ...


class NullRecorder:
    """The do-nothing default recorder: disabled, records nothing.

    Routing normalizes a disabled recorder to ``None`` at entry, so
    passing ``NullRecorder()`` costs exactly as much as passing nothing
    — the property the ``obs_overhead`` bench gate certifies.
    """

    __slots__ = ()
    enabled = False

    def record_lookup(self, result, events: Sequence[HopEvent]) -> None:  # pragma: no cover
        return None


@dataclass
class CounterSet:
    """Aggregate trace statistics: who resolved hops, what failed, and
    how much retrying cost — the hop-class breakdown ``repro trace``
    prints."""

    enabled: bool = field(default=True, init=False, repr=False)
    lookups: int = 0
    succeeded: int = 0
    failed: int = 0
    hops_by_class: dict[str, int] = field(default_factory=dict)
    timeouts_by_verdict: dict[str, int] = field(default_factory=dict)
    retried_targets: int = 0
    evictions: int = 0
    total_penalty: float = 0.0

    def record_lookup(self, result, events: Sequence[HopEvent]) -> None:
        self.lookups += 1
        if getattr(result, "succeeded", False):
            self.succeeded += 1
        else:
            self.failed += 1
        for event in events:
            if event.delivered:
                self.hops_by_class[event.pointer_class] = (
                    self.hops_by_class.get(event.pointer_class, 0) + 1
                )
            else:
                self.evictions += 1
            if event.attempts > 1:
                self.retried_targets += 1
            for verdict in event.verdicts:
                self.timeouts_by_verdict[verdict] = (
                    self.timeouts_by_verdict.get(verdict, 0) + 1
                )
            self.total_penalty += event.penalty

    @property
    def total_hops(self) -> int:
        return sum(self.hops_by_class.values())

    @property
    def total_timeouts(self) -> int:
        return sum(self.timeouts_by_verdict.values())

    def merge(self, other: "CounterSet") -> None:
        """Fold another counter set into this one."""
        self.lookups += other.lookups
        self.succeeded += other.succeeded
        self.failed += other.failed
        self.retried_targets += other.retried_targets
        self.evictions += other.evictions
        self.total_penalty += other.total_penalty
        for key, value in other.hops_by_class.items():
            self.hops_by_class[key] = self.hops_by_class.get(key, 0) + value
        for key, value in other.timeouts_by_verdict.items():
            self.timeouts_by_verdict[key] = self.timeouts_by_verdict.get(key, 0) + value

    def to_dict(self) -> dict:
        """JSON-ready snapshot with stable key order."""
        return {
            "lookups": self.lookups,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "hops_by_class": dict(sorted(self.hops_by_class.items())),
            "timeouts_by_verdict": dict(sorted(self.timeouts_by_verdict.items())),
            "retried_targets": self.retried_targets,
            "evictions": self.evictions,
            "total_penalty": self.total_penalty,
        }


class LookupTracer:
    """Recorder keeping full per-lookup traces, optionally reservoir-
    sampled to a bound.

    ``sample=None`` keeps every trace (tests, tiny cells); ``sample=N``
    keeps a uniform N-trace reservoir (Vitter's algorithm R) over the
    lookup stream, so tracing a production-size run stays O(N) memory.
    The reservoir's randomness comes from its own seeded generator —
    it never perturbs simulation RNG streams, and the kept set is a
    pure function of ``(seed, stream order)``, which is what makes
    traced runs reproducible at any ``--jobs`` fan-out (cells are
    traced independently, each with its own tracer).

    The embedded :class:`CounterSet` sees **every** lookup regardless of
    sampling.
    """

    __slots__ = ("enabled", "sample", "counters", "seen", "_traces", "_rng")

    def __init__(self, sample: int | None = None, seed: int = 0) -> None:
        if sample is not None and sample < 1:
            raise ConfigurationError(f"sample must be >= 1 or None, got {sample!r}")
        self.enabled = True
        self.sample = sample
        self.counters = CounterSet()
        self.seen = 0
        self._traces: list[LookupTrace] = []
        self._rng = random.Random(seed)

    def record_lookup(self, result, events: Sequence[HopEvent]) -> None:
        self.counters.record_lookup(result, events)
        trace = LookupTrace(
            key=result.key,
            source=result.source,
            destination=result.destination,
            succeeded=result.succeeded,
            hops=result.hops,
            timeouts=result.timeouts,
            penalty=result.penalty,
            events=tuple(events),
        )
        self.seen += 1
        if self.sample is None:
            self._traces.append(trace)
            return
        if len(self._traces) < self.sample:
            self._traces.append(trace)
            return
        index = self._rng.randrange(self.seen)
        if index < self.sample:
            self._traces[index] = trace

    @property
    def traces(self) -> list[LookupTrace]:
        """The kept traces (reservoir order; a copy)."""
        return list(self._traces)

    def to_dict(self) -> dict:
        return {
            "sample": self.sample,
            "seen": self.seen,
            "kept": len(self._traces),
            "counters": self.counters.to_dict(),
            "traces": [trace.to_dict() for trace in self._traces],
        }
