"""Cache attribution plane: per-pointer accounting and hop-savings credit.

The aggregate hop curves say *that* auxiliary pointers help; nothing in
the repro said *which* cached pointer earned its slot, on which node,
under which workload. This module answers that with a recorder that
rides the existing :class:`~repro.obs.recorder.TraceRecorder` protocol —
zero new hook sites in any routing layer, zero cost when disabled (a
disabled recorder normalizes to ``None`` at route entry exactly like
:class:`~repro.obs.recorder.NullRecorder`; the ``cachestats_overhead``
bench gate certifies < 2%).

Per lookup the :class:`AttributionRecorder` accounts:

* **uses / hits per (node, pointer class)** — one use per attempted
  forwarding target, one hit per delivered forward, so ``hits <= uses``
  holds per pointer by construction (the ``cachestats.conservation``
  invariant re-checks it).
* **staleness at use** — uses whose target turned out dead (the pointer
  was stale when consulted), the churn-facing quality signal.
* **hop-savings attribution** — each delivered hop ``x -> y`` is
  credited ``R(x) - R(y) - 1`` marginal hops, where ``R(v)`` is the hop
  count of the *oblivious* route from ``v`` to the key: the same greedy
  walk the overlay's router takes, restricted to core-plane pointers
  (fingers / successor list / leaf set / k-buckets) with auxiliary
  pointers masked out and discovered-dead targets skipped. The credits
  telescope, so per lookup

  ``sum(credits) == R(source) - R(terminal) - delivered_hops``

  holds *exactly* (integer arithmetic); on a completed lookup
  ``R(terminal) == 0`` and this is the paper-facing conservation law
  ``sum(credited savings) == oblivious hops - observed hops``. The
  recorder machine-checks the telescoped identity on every lookup and
  keeps any violation message — a double-crediting bug cannot hide.
  Because the oblivious next hop is, on every overlay, the argmin of the
  same ranking the real router uses over a *subset* of its candidates,
  a hop resolved by a core-plane pointer has the oblivious route take
  the identical hop, so non-auxiliary hops earn exactly zero credit
  without any special-casing.
* **measured per-node query rates** — :meth:`measured_loads` exports
  add-one-smoothed, mean-1 load weights straight into
  :class:`~repro.core.budget.CostCurve` ``load=``, closing ROADMAP's
  load-weighted allocation loop (``repro allocate --loads measured``).
* **quota utilization** — installed auxiliary pointers vs the budget
  allocator's per-node quota ``k_i``, and how many of them actually
  resolved a hop.

``R`` values are computed lazily at ``record_lookup`` time against the
*live* overlay state (routing has already applied this lookup's
evictions), never post-hoc over stored traces — under churn the tables
the next lookup sees are not the tables this one saw. Within one lookup
a single memo reuses walk suffixes, so attribution costs
``O(path * oblivious-walk)`` only while enabled.

:func:`attribute_batch` feeds the columnar engine's batched lanes
(``record_paths=True`` results) through the same recorder, which is what
lets ``tests/obs`` pin object-graph vs columnar attribution equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.obs.recorder import HopEvent
from repro.pastry.routing import _leaf_geometry, circular_distance
from repro.util.errors import ConfigurationError

__all__ = [
    "OVERLAY_KINDS",
    "AttributionRecorder",
    "PointerStats",
    "TeeRecorder",
    "attribute_batch",
    "oblivious_route_length",
]

OVERLAY_KINDS = ("chord", "pastry", "kademlia")


# ----------------------------------------------------------------------
# Oblivious (auxiliary-masked) next-hop walkers
# ----------------------------------------------------------------------
#
# Each walker answers "where would greedy routing forward from ``node``
# for ``key`` if only core-plane pointers existed?" — the baseline the
# marginal credit of every auxiliary pointer is measured against.
# Targets the overlay already knows to be dead are skipped: the real
# router discovers them at the cost of a timeout and retries with the
# next-best entry, and the baseline counts hops, not timeouts.


def _chord_next_hop(ring, node, key: int) -> int | None:
    """Masked :meth:`RingTable.next_hop`: the ring-predecessor of ``key``
    among the node's live core fingers and successor list — the entry
    with the largest clockwise gap from the owner not passing the key."""
    space = node.space
    mask = space.mask
    owner = node.node_id
    key_gap = (key - owner) & mask
    best = None
    best_gap = 0
    for entry in node.core:
        gap = (entry - owner) & mask
        if best_gap < gap <= key_gap and ring.node(entry).alive:
            best = entry
            best_gap = gap
    for entry in node.successors:
        gap = (entry - owner) & mask
        if best_gap < gap <= key_gap and ring.node(entry).alive:
            best = entry
            best_gap = gap
    return best


def _kademlia_next_hop(network, node, key: int) -> int | None:
    """Masked :func:`repro.kademlia.routing._best_candidate`: the live
    k-bucket contact strictly XOR-closest to ``key`` (XOR is injective
    for a fixed key, so no tie-break is needed)."""
    best = None
    best_distance = node.node_id ^ key
    for neighbor in node.core:
        distance = neighbor ^ key
        if distance < best_distance and network.node(neighbor).alive:
            best = neighbor
            best_distance = distance
    return best


def _pastry_next_hop(network, node, key: int, mode: str) -> int | None:
    """Masked Pastry stage loop: leaf delivery, then prefix repair over
    the cell's core/leaf entries, then the numerically-closer fallback —
    auxiliary pointers removed from stages two and three (the leaf set
    is core plane and stays)."""
    space = network.space
    # Stage 1 — leaf-set delivery, over live known nodes. The coverage
    # arc itself still spans the full leaf set (matching what the node
    # believes before it discovers a leaf is dead).
    if not node.leaves:
        return None  # isolated node delivers locally: terminal
    covers_all, arc_start, span, known, radius = _leaf_geometry(network, node)
    if covers_all or space.gap(arc_start, key) <= span:
        live = [
            c
            for c in known
            if c == node.node_id or network.node(c).alive
        ]
        closest = min(live, key=lambda c: (circular_distance(space, c, key), c))
        return None if closest == node.node_id else closest
    # Stage 2 — prefix repair restricted to core/leaf cell entries.
    pool = [
        c
        for c in node.candidates_for(key)
        if (c in node.core or c in node.leaves) and network.node(c).alive
    ]
    if pool:
        if mode == "greedy":
            return min(
                pool,
                key=lambda c: (
                    -space.common_prefix_length(c, key),
                    circular_distance(space, c, key),
                    c,
                ),
            )

        def sort_key(candidate: int):
            numeric = circular_distance(space, candidate, key)
            if numeric <= radius:
                return (0, float(numeric), candidate)
            return (1, network.proximity.latency(node.node_id, candidate), candidate)

        return min(pool, key=sort_key)
    # Stage 3 — rare-case fallback: any live core/leaf neighbor strictly
    # numerically closer to the key.
    own = circular_distance(space, node.node_id, key)
    best = None
    best_distance = own
    for neighbor in node.core | node.leaves:
        if not network.node(neighbor).alive:
            continue
        distance = circular_distance(space, neighbor, key)
        if distance < best_distance or (
            distance == best_distance and best is not None and neighbor < best
        ):
            best = neighbor
            best_distance = distance
    return best


class _ObliviousWalker:
    """Hop counts of the auxiliary-masked greedy route, with suffix
    memoization: the masked next hop is a pure function of the overlay
    state, so every node on a walk shares the walk's suffix lengths."""

    __slots__ = ("kind", "overlay", "mode", "limit")

    def __init__(self, kind: str, overlay, mode: str) -> None:
        self.kind = kind
        self.overlay = overlay
        self.mode = mode
        self.limit = 4 * overlay.space.bits

    def next_hop(self, node_id: int, key: int) -> int | None:
        node = self.overlay.node(node_id)
        if self.kind == "chord":
            return _chord_next_hop(self.overlay, node, key)
        if self.kind == "kademlia":
            return _kademlia_next_hop(self.overlay, node, key)
        return _pastry_next_hop(self.overlay, node, key, self.mode)

    def route_length(self, start: int, key: int, memo: dict[int, int | None]) -> int | None:
        """``R(start)`` for ``key``, or ``None`` past the hop limit
        (the same ``4 * bits`` bound the real routers use)."""
        path = [start]
        current = start
        while current not in memo:
            nxt = self.next_hop(current, key)
            if nxt is None:
                memo[current] = 0
                break
            if len(path) > self.limit:
                memo[current] = None
                break
            path.append(nxt)
            current = nxt
        tail = memo[current]
        for depth, visited in enumerate(reversed(path)):
            memo[visited] = None if tail is None else tail + depth
        return memo[start]


def _credit(r_from: int, r_to: int) -> int:
    """Marginal hop savings of one delivered hop: the oblivious route
    shortened by ``r_from - r_to`` at the price of the hop itself.
    Module-level so the verify-plane mutation test can plant a
    double-crediting recorder by patching exactly this function."""
    return r_from - r_to - 1


def oblivious_route_length(
    kind: str, overlay, source: int, key: int, mode: str = "proximity"
) -> int | None:
    """Hop count of the oblivious (auxiliary-masked) route from
    ``source`` to ``key``, or ``None`` when it exceeds the hop limit."""
    if kind not in OVERLAY_KINDS:
        raise ConfigurationError(
            f"unknown overlay kind {kind!r}; expected one of {OVERLAY_KINDS}"
        )
    walker = _ObliviousWalker(kind, overlay, mode)
    return walker.route_length(source, key, {})


# ----------------------------------------------------------------------
# The recorder
# ----------------------------------------------------------------------


@dataclass
class PointerStats:
    """Accounting bucket for one pointer aggregate (a (node, class) pair
    or one concrete (owner, target) pointer)."""

    uses: int = 0
    hits: int = 0
    stale_uses: int = 0
    credited: int = 0

    def merge(self, other: "PointerStats") -> None:
        self.uses += other.uses
        self.hits += other.hits
        self.stale_uses += other.stale_uses
        self.credited += other.credited

    def to_dict(self) -> dict:
        return {
            "uses": self.uses,
            "hits": self.hits,
            "stale_uses": self.stale_uses,
            "credited": self.credited,
        }


@dataclass
class _Totals:
    lookups: int = 0
    attributed: int = 0
    unattributed: int = 0
    oblivious_hops: int = 0
    observed_hops: int = 0
    residual_hops: int = 0
    credited: int = 0


class AttributionRecorder:
    """Per-node, per-pointer-class cache accounting recorder.

    Implements the :class:`~repro.obs.recorder.TraceRecorder` protocol:
    ``enabled`` is read once per lookup at route entry and
    ``record_lookup`` observes the finished result + hop events without
    touching overlay, RNG, or result state. Construct with
    ``enabled=False`` to get a recorder the routers normalize away —
    the disabled path the overhead bench gate measures.

    ``quotas`` (optional) are the budget allocator's per-node auxiliary
    quotas ``k_i`` for :meth:`quota_utilization`; ``attribute=False``
    keeps the cheap hit/use/load accounting but skips the oblivious
    walks (used when only :meth:`measured_loads` is wanted).
    """

    __slots__ = (
        "enabled",
        "kind",
        "overlay",
        "attribute",
        "quotas",
        "by_node_class",
        "by_pointer",
        "source_counts",
        "totals",
        "conservation_failures",
        "_walker",
    )

    def __init__(
        self,
        kind: str,
        overlay,
        *,
        mode: str = "proximity",
        quotas: dict[int, int] | None = None,
        attribute: bool = True,
        enabled: bool = True,
    ) -> None:
        if kind not in OVERLAY_KINDS:
            raise ConfigurationError(
                f"unknown overlay kind {kind!r}; expected one of {OVERLAY_KINDS}"
            )
        self.enabled = enabled
        self.kind = kind
        self.overlay = overlay
        self.attribute = attribute
        self.quotas = dict(quotas) if quotas else {}
        #: (node id, pointer class) -> PointerStats
        self.by_node_class: dict[tuple[int, str], PointerStats] = {}
        #: (owner id, target id, pointer class) -> PointerStats
        self.by_pointer: dict[tuple[int, int, str], PointerStats] = {}
        self.source_counts: dict[int, int] = {}
        self.totals = _Totals()
        self.conservation_failures: list[str] = []
        self._walker = _ObliviousWalker(kind, overlay, mode)

    # -- TraceRecorder protocol ----------------------------------------

    def record_lookup(self, result, events: Sequence[HopEvent]) -> None:
        totals = self.totals
        totals.lookups += 1
        source = result.source
        self.source_counts[source] = self.source_counts.get(source, 0) + 1
        for event in events:
            stale = 1 if "dead" in event.verdicts else 0
            bucket = self._node_class(event.forwarder, event.pointer_class)
            bucket.uses += 1
            bucket.stale_uses += stale
            pointer = self._pointer(event.forwarder, event.target, event.pointer_class)
            pointer.uses += 1
            pointer.stale_uses += stale
            if event.delivered:
                bucket.hits += 1
                pointer.hits += 1
        if self.attribute:
            self._attribute(result, events)

    # -- hop-savings attribution ---------------------------------------

    def _attribute(self, result, events: Sequence[HopEvent]) -> None:
        totals = self.totals
        delivered = [event for event in events if event.delivered]
        path = [result.source] + [event.target for event in delivered]
        memo: dict[int, int | None] = {}
        key = result.key
        lengths = [self._walker.route_length(node_id, key, memo) for node_id in path]
        if any(length is None for length in lengths):
            totals.unattributed += 1
            return
        credited = 0
        for event, r_from, r_to in zip(delivered, lengths, lengths[1:]):
            credit = _credit(r_from, r_to)
            credited += credit
            self._node_class(event.forwarder, event.pointer_class).credited += credit
            self._pointer(
                event.forwarder, event.target, event.pointer_class
            ).credited += credit
        oblivious = lengths[0]
        residual = lengths[-1]
        hops = len(delivered)
        totals.attributed += 1
        totals.oblivious_hops += oblivious
        totals.observed_hops += hops
        totals.residual_hops += residual
        totals.credited += credited
        # The telescoped conservation law, machine-checked per lookup; a
        # double- (or mis-)crediting recorder trips it immediately.
        if credited != oblivious - residual - hops:
            self.conservation_failures.append(
                f"key {key} from {result.source}: credited {credited} != "
                f"oblivious {oblivious} - residual {residual} - hops {hops}"
            )

    def _node_class(self, node_id: int, pointer_class: str) -> PointerStats:
        bucket = self.by_node_class.get((node_id, pointer_class))
        if bucket is None:
            bucket = self.by_node_class[(node_id, pointer_class)] = PointerStats()
        return bucket

    def _pointer(self, owner: int, target: int, pointer_class: str) -> PointerStats:
        bucket = self.by_pointer.get((owner, target, pointer_class))
        if bucket is None:
            bucket = self.by_pointer[(owner, target, pointer_class)] = PointerStats()
        return bucket

    # -- exports -------------------------------------------------------

    def class_totals(self) -> dict[str, PointerStats]:
        """Aggregate accounting per pointer class (sorted by class)."""
        out: dict[str, PointerStats] = {}
        for (__, pointer_class), stats in self.by_node_class.items():
            out.setdefault(pointer_class, PointerStats()).merge(stats)
        return dict(sorted(out.items()))

    def top_pointers(self, count: int = 10) -> list[dict]:
        """The ``count`` hottest concrete pointers by credited savings
        (ties broken by hits, then ids — fully deterministic)."""
        ranked = sorted(
            self.by_pointer.items(),
            key=lambda item: (-item[1].credited, -item[1].hits, item[0]),
        )
        return [
            {
                "owner": owner,
                "target": target,
                "class": pointer_class,
                **stats.to_dict(),
            }
            for (owner, target, pointer_class), stats in ranked[:count]
        ]

    def measured_loads(self, node_ids: Sequence[int] | None = None) -> dict[int, float]:
        """Observed per-node query rates as mean-1 load weights for
        :class:`~repro.core.budget.CostCurve`.

        Add-one smoothing keeps every load strictly positive (the curve
        validates ``load > 0``) while preserving a mean of exactly 1
        over the population, so a uniform stream reproduces the
        uniform-load baseline up to multinomial noise."""
        nodes = sorted(node_ids) if node_ids is not None else sorted(self.source_counts)
        if not nodes:
            return {}
        total = sum(self.source_counts.get(node, 0) for node in nodes)
        denominator = (total + len(nodes)) / len(nodes)
        return {
            node: (self.source_counts.get(node, 0) + 1) / denominator for node in nodes
        }

    def quota_utilization(self) -> dict[int, dict]:
        """Per live node: allocator quota ``k_i``, installed auxiliary
        pointers, and how many of those resolved at least one hop."""
        hit_targets: dict[int, set[int]] = {}
        for (owner, target, pointer_class), stats in self.by_pointer.items():
            if pointer_class == "auxiliary" and stats.hits:
                hit_targets.setdefault(owner, set()).add(target)
        out: dict[int, dict] = {}
        for node_id in self.overlay.alive_ids():
            node = self.overlay.node(node_id)
            installed = len(node.auxiliary)
            quota = self.quotas.get(node_id, installed)
            hit = len(hit_targets.get(node_id, set()) & set(node.auxiliary))
            out[node_id] = {
                "quota": quota,
                "installed": installed,
                "hit": hit,
                "utilization": installed / quota if quota else 0.0,
            }
        return out

    def conservation(self) -> dict:
        """The conservation ledger: totals plus the exactness verdict."""
        totals = self.totals
        return {
            "lookups": totals.lookups,
            "attributed": totals.attributed,
            "unattributed": totals.unattributed,
            "oblivious_hops": totals.oblivious_hops,
            "observed_hops": totals.observed_hops,
            "residual_hops": totals.residual_hops,
            "credited": totals.credited,
            "exact": not self.conservation_failures
            and totals.credited
            == totals.oblivious_hops - totals.residual_hops - totals.observed_hops,
            "failures": list(self.conservation_failures),
        }

    def to_dict(self) -> dict:
        """JSON-ready snapshot with stable key order (ids as strings)."""
        per_node: dict[str, dict] = {}
        for (node_id, pointer_class), stats in sorted(self.by_node_class.items()):
            node_entry = per_node.setdefault(
                str(node_id), {"queries": self.source_counts.get(node_id, 0), "classes": {}}
            )
            node_entry["classes"][pointer_class] = stats.to_dict()
        return {
            "overlay": self.kind,
            "classes": {
                name: stats.to_dict() for name, stats in self.class_totals().items()
            },
            "per_node": per_node,
            "conservation": self.conservation(),
        }


class TeeRecorder:
    """Fan one lookup out to several recorders (all observe-only, so
    order is irrelevant); disabled members are dropped at construction
    and an all-disabled tee normalizes away like ``NullRecorder``."""

    __slots__ = ("enabled", "recorders")

    def __init__(self, *recorders) -> None:
        self.recorders = tuple(r for r in recorders if r is not None and r.enabled)
        self.enabled = bool(self.recorders)

    def record_lookup(self, result, events: Sequence[HopEvent]) -> None:
        for recorder in self.recorders:
            recorder.record_lookup(result, events)


# ----------------------------------------------------------------------
# Columnar lanes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _LaneResult:
    """Result-shaped view of one batched lane (fault-free by
    construction: the columnar engine routes live snapshots only)."""

    key: int
    source: int
    destination: int | None
    hops: int
    succeeded: bool
    timeouts: int = 0
    penalty: float = 0.0
    path: list[int] = field(default_factory=list)


def attribute_batch(
    recorder: AttributionRecorder,
    result,
    sources: Sequence[int],
    keys: Sequence[int],
) -> None:
    """Feed a :class:`~repro.engine.router.BatchRouteResult` (run with
    ``record_paths=True``) through ``recorder``, lane by lane, exactly
    as the object-graph router would have: one delivered
    :class:`HopEvent` per forward with the lane's pointer-class labels.
    ``tests/obs`` pins that this matches object-graph attribution
    hop for hop."""
    if not recorder.enabled:
        return
    for lane, (source, key) in enumerate(zip(sources, keys)):
        path = result.lane_path(lane)
        classes = result.lane_classes(lane, recorder.kind)
        destination = int(result.destinations[lane])
        events = [
            HopEvent(
                forwarder=int(path[index]),
                target=int(path[index + 1]),
                pointer_class=classes[index],
                delivered=True,
                attempts=1,
                timeouts=0,
                penalty=0.0,
            )
            for index in range(len(path) - 1)
        ]
        lane_result = _LaneResult(
            key=int(key),
            source=int(source),
            destination=destination if destination >= 0 else None,
            hops=int(result.hops[lane]),
            succeeded=bool(result.succeeded[lane]),
            path=[int(p) for p in path],
        )
        recorder.record_lookup(lane_result, events)
