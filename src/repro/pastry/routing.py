"""Pastry prefix routing with greedy and locality-aware next-hop modes.

Per Section II-A, a query is routed to the node numerically closest to the
key; each hop forwards to a neighbor sharing a strictly longer prefix with
the key (falling back to the leaf set for final delivery and to a
numerically-closer neighbor in the rare empty-cell case).

Two next-hop choices among the candidates that repair the next digit:

* ``"greedy"`` — the candidate sharing the longest prefix with the key
  (and numerically closest on ties): fastest possible progress in hops.
* ``"proximity"`` — FreePastry's behaviour: "if there is more than one
  candidate node for the next hop, then the candidate node that is live
  and closest [in network latency] to the current node is picked"
  (Section VI). A candidate that *is* the key's neighborhood — i.e. would
  let the leaf set deliver immediately — is still preferred, matching
  FreePastry's deliver-direct short cut when the key falls inside a
  known node's leaf range.

Dead candidates cost a timeout, are evicted from the forwarding node and
the next-best candidate is tried, exactly as in the Chord substrate.

Fault-aware routing mirrors the Chord side: an optional
:class:`~repro.faults.retry.RetryPolicy` retries a timed-out forward with
backoff-as-hop-penalty before evicting and failing over (leaf set and
next-ranked candidate provide the redundancy), and an optional
:class:`~repro.faults.plane.FaultPlane` can drop or block messages. The
defaults reproduce the pre-fault behaviour bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.retry import RetryPolicy
from repro.obs.recorder import HopEvent
from repro.util.errors import ConfigurationError, NodeAbsentError
from repro.util.ids import IdSpace

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.faults.plane import FaultPlane
    from repro.obs.recorder import TraceRecorder
    from repro.pastry.network import PastryNetwork

__all__ = ["PastryLookupResult", "circular_distance", "route"]

ROUTING_MODES = ("greedy", "proximity")

#: Default policy: one attempt, unit timeout penalty (legacy behaviour).
_SINGLE_ATTEMPT = RetryPolicy.single()


def circular_distance(space: IdSpace, a: int, b: int) -> int:
    """Numeric distance on the ring: the shorter way around."""
    gap = space.gap(a, b)
    return min(gap, space.size - gap)


@dataclass
class PastryLookupResult:
    """Outcome of one Pastry lookup (same metric semantics as Chord's)."""

    key: int
    source: int
    destination: int | None
    hops: int
    timeouts: int = 0
    succeeded: bool = True
    path: list[int] = field(default_factory=list)
    penalty: float = 0.0

    @property
    def latency(self) -> int | float:
        """Hop-count latency proxy: forwards plus timeout penalties."""
        base = self.hops + self.timeouts
        return base + self.penalty if self.penalty else base


def _ranked_candidates(network: "PastryNetwork", node, key: int, mode: str) -> list[int]:
    """Next-hop candidates in preference order for the given mode."""
    space = network.space
    candidates = node.candidates_for(key)
    if not candidates:
        return []
    if mode == "greedy":
        return sorted(
            candidates,
            key=lambda c: (
                -space.common_prefix_length(c, key),
                circular_distance(space, c, key),
                c,
            ),
        )
    # Locality-aware: a candidate that is, as far as this node can tell,
    # already the key's neighborhood — judged against the node's own
    # leaf-set radius, a purely local density estimate — can deliver
    # directly, so those rank first by numeric closeness. Everything else
    # follows FreePastry's closest-live-candidate-by-latency rule.
    radius = _leaf_geometry(network, node)[4] if node.leaves else 0

    def sort_key(candidate: int):
        numeric = circular_distance(space, candidate, key)
        if numeric <= radius:
            return (0, float(numeric), candidate)
        return (1, network.proximity.latency(node.node_id, candidate), candidate)

    return sorted(candidates, key=sort_key)


def _pointer_class(node, target: int) -> str:
    """Which pointer kind supplied this candidate; an id living in several
    sets is credited to the strongest claim (core > leaf > auxiliary)."""
    if target in node.core:
        return "core"
    if target in node.leaves:
        return "leaf"
    if target in node.auxiliary:
        return "auxiliary"
    return "unknown"


def route(
    network: "PastryNetwork",
    source: int,
    key: int,
    mode: str = "proximity",
    max_hops: int | None = None,
    record_access: bool = True,
    retry: RetryPolicy | None = None,
    faults: "FaultPlane | None" = None,
    trace: "TraceRecorder | None" = None,
) -> PastryLookupResult:
    """Route a query for ``key`` from ``source`` across ``network``.

    ``retry`` bounds delivery attempts per neighbor (default: one attempt,
    evict on first timeout); ``faults`` lets a fault plane drop or block
    individual forwards. A neighbor that exhausts its attempts is evicted
    and the next iteration fails over to the leaf set / next-ranked
    candidate.

    ``trace`` attaches an observe-only recorder (see
    :mod:`repro.obs.recorder`): one :class:`~repro.obs.recorder.HopEvent`
    per attempted forwarding target, delivered to the recorder together
    with the finished result. Disabled recorders are normalized to
    ``None`` up front, so the default path pays only inert branch checks.
    """
    if mode not in ROUTING_MODES:
        raise ConfigurationError(f"unknown routing mode {mode!r}; expected one of {ROUTING_MODES}")
    node = network.node(source)
    if not node.alive:
        raise NodeAbsentError(f"source node {source} is not alive")
    rec = trace if trace is not None and trace.enabled else None
    events: list[HopEvent] | None = [] if rec is not None else None
    policy = retry if retry is not None else _SINGLE_ATTEMPT
    space = network.space
    limit = max_hops if max_hops is not None else 4 * space.bits
    true_destination = network.responsible(key)
    if record_access and true_destination != source:
        node.record_access(true_destination)

    current = node
    hops = 0
    timeouts = 0
    penalty = 0.0
    path = [source]

    def attempt_forward(target_id: int, pointer_class: str) -> bool:
        """Try to deliver to ``target_id`` under the retry policy; on
        exhaustion evict it from ``current`` so the next iteration fails
        over to the next-best neighbor. ``pointer_class`` labels the
        structure that nominated the target (trace attribution only)."""
        nonlocal timeouts, penalty
        target = network.node(target_id)
        if rec is None and faults is None and target.alive:
            # Fault-free fast path: with a live target, no fault plane and
            # no recorder, the first attempt always delivers, so the retry
            # loop below reduces to this one branch.
            return True
        delivered = False
        if rec is not None:
            timeouts_before = timeouts
            penalty_before = penalty
            verdicts: list[str] = []
        for attempt in range(policy.max_attempts):
            if hops + timeouts > limit:
                break
            if target.alive and (faults is None or faults.deliver(current.node_id, target_id)):
                delivered = True
                break
            if rec is not None:
                verdicts.append("dead" if not target.alive else faults.last_verdict)
            timeouts += 1
            penalty += policy.attempt_penalty(attempt) - 1.0
        if rec is not None:
            failed = timeouts - timeouts_before
            events.append(
                HopEvent(
                    forwarder=current.node_id,
                    target=target_id,
                    pointer_class=pointer_class,
                    delivered=delivered,
                    attempts=failed + (1 if delivered else 0),
                    timeouts=failed,
                    penalty=penalty - penalty_before,
                    verdicts=tuple(verdicts),
                )
            )
        if delivered:
            return True
        current.evict(target_id)
        return False

    while hops + timeouts <= limit:
        # Leaf-set delivery: when the key falls inside the current leaf
        # coverage, jump straight to the numerically closest known node.
        closest = _leaf_delivery_target(network, current, key)
        if closest == current.node_id:
            succeeded = current.node_id == true_destination
            result = PastryLookupResult(
                key=key,
                source=source,
                destination=current.node_id if succeeded else None,
                hops=hops,
                timeouts=timeouts,
                succeeded=succeeded,
                path=path,
                penalty=penalty,
            )
            if rec is not None:
                rec.record_lookup(result, events)
            return result
        if closest is not None:
            if attempt_forward(closest, "leaf"):
                hops += 1
                path.append(closest)
                current = network.node(closest)
            continue
        candidates = _ranked_candidates(network, current, key, mode)
        if candidates:
            # Only the best-ranked candidate is attempted; on failure the
            # eviction changes the candidate set, so re-rank from scratch.
            best = candidates[0]
            if attempt_forward(
                best, _pointer_class(current, best) if rec is not None else "unknown"
            ):
                hops += 1
                path.append(best)
                current = network.node(best)
            continue
        # Rare case: empty cell. Fall back to any known neighbor strictly
        # numerically closer to the key (Section II-A's "numerically
        # closest" objective keeps making progress).
        fallback = _numerically_closer_neighbor(network, current, key)
        if fallback is None:
            succeeded = current.node_id == true_destination
            result = PastryLookupResult(
                key=key,
                source=source,
                destination=current.node_id if succeeded else None,
                hops=hops,
                timeouts=timeouts,
                succeeded=succeeded,
                path=path,
                penalty=penalty,
            )
            if rec is not None:
                rec.record_lookup(result, events)
            return result
        if attempt_forward(fallback, "fallback"):
            hops += 1
            path.append(fallback)
            current = network.node(fallback)
    result = PastryLookupResult(
        key=key,
        source=source,
        destination=None,
        hops=hops,
        timeouts=timeouts,
        succeeded=False,
        path=path,
        penalty=penalty,
    )
    if rec is not None:
        rec.record_lookup(result, events)
    return result


def _leaf_geometry(network: "PastryNetwork", node) -> tuple:
    """Leaf-set geometry, cached on the node until its leaves change.

    Returns ``(covers_all, arc_start, span, known, radius_max)`` where the
    first three describe the covered arc (see :func:`_leaf_delivery_target`),
    ``known`` is ``leaves ∪ {self}`` as a list, and ``radius_max`` is the
    largest numeric distance to any leaf (the local density estimate the
    proximity mode ranks with). All of it depends only on the leaf set, yet
    the uncached version re-sorted the leaves on **every hop** of every
    lookup — the pastry routing loop's dominant cost. Every mutation of
    ``node.leaves`` resets ``node._leaf_cache`` to ``None``.
    """
    cached = node._leaf_cache
    if cached is not None:
        return cached
    space = network.space
    radius = network.leaf_radius
    own = node.node_id
    leaves = sorted(node.leaves)
    by_clockwise = sorted(leaves, key=lambda leaf: space.gap(own, leaf))
    by_counter = sorted(leaves, key=lambda leaf: space.gap(leaf, own))
    clockwise_extent = space.gap(own, by_clockwise[:radius][-1])
    counter_extent = space.gap(by_counter[:radius][-1], own)
    span = clockwise_extent + counter_extent
    covers_all = span >= space.size
    arc_start = space.add(own, -counter_extent)
    radius_max = max(circular_distance(space, own, leaf) for leaf in leaves)
    cached = (covers_all, arc_start, span, leaves + [own], radius_max)
    node._leaf_cache = cached
    return cached


def _leaf_delivery_target(network: "PastryNetwork", node, key: int) -> int | None:
    """When the key lies inside the node's leaf-set coverage, the delivery
    target: the numerically closest of ``leaves ∪ {self}``. ``None`` when
    the leaf set does not cover the key (or is empty).

    Coverage follows Pastry's ``[L_min, L_max]`` test with the leaf set's
    *sided* semantics: the ``leaf_radius`` nearest successors and the
    ``leaf_radius`` nearest predecessors bound a contiguous arc through
    the node; keys on that arc are deliverable locally, keys beyond it may
    belong to nodes this one has never heard of. When the two arms wrap
    (small networks), everything is covered."""
    space = network.space
    if not node.leaves:
        return node.node_id  # isolated node: deliver locally
    covers_all, arc_start, span, known, _ = _leaf_geometry(network, node)
    if not covers_all and space.gap(arc_start, key) > span:
        return None
    return min(known, key=lambda c: (circular_distance(space, c, key), c))


def _numerically_closer_neighbor(network: "PastryNetwork", node, key: int) -> int | None:
    """Any known neighbor strictly numerically closer to the key than the
    current node, preferring the closest (Pastry's rare-case rule)."""
    space = network.space
    own = circular_distance(space, node.node_id, key)
    best = None
    best_distance = own
    for neighbor in node.neighbor_ids():
        distance = circular_distance(space, neighbor, key)
        if distance < best_distance or (distance == best_distance and best is not None and neighbor < best):
            best = neighbor
            best_distance = distance
    return best
