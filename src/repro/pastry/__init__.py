"""Pastry overlay substrate: prefix routing, leaf sets, proximity model."""

from repro.pastry.network import (
    PastryNetwork,
    oblivious_policy,
    optimal_policy,
    uniform_policy,
)
from repro.pastry.node import PastryNode
from repro.pastry.proximity import ProximityModel
from repro.pastry.routing import PastryLookupResult, circular_distance, route

__all__ = [
    "PastryLookupResult",
    "PastryNetwork",
    "PastryNode",
    "ProximityModel",
    "circular_distance",
    "oblivious_policy",
    "optimal_policy",
    "route",
    "uniform_policy",
]
