"""A single Pastry peer: prefix routing table, leaf set, auxiliary pointers.

The routing table is organized into cells keyed by ``(row, digit)``: the
entries in cell ``(l, d)`` share exactly the first ``l`` digits with this
node and have digit ``d`` at position ``l`` (Section II-A). Core
maintenance keeps (at most) one entry per cell, but auxiliary neighbors
land in the cell their id belongs to, so a cell can offer several
candidates for the same prefix repair — the situation where FreePastry's
locality-aware choice matters (Section VI discussion of Figure 4).

The leaf set holds the ``leaf_radius`` numerically closest live nodes on
each side and both finishes deliveries and guarantees routing progress.
"""

from __future__ import annotations

from repro.core.frequency import ExactFrequencyTable
from repro.util.ids import IdSpace

__all__ = ["PastryNode"]


class PastryNode:
    """One Pastry peer.

    Parameters
    ----------
    node_id:
        Identifier in the circular id space.
    space:
        The identifier space.
    digit_bits:
        Bits per routing digit (1 = the paper's binary exposition).
    leaf_radius:
        Leaf-set entries maintained on each side.
    """

    __slots__ = (
        "node_id",
        "space",
        "digit_bits",
        "leaf_radius",
        "alive",
        "cells",
        "core",
        "auxiliary",
        "leaves",
        "tracker",
        "_leaf_cache",
    )

    def __init__(
        self,
        node_id: int,
        space: IdSpace,
        digit_bits: int = 1,
        leaf_radius: int = 8,
    ) -> None:
        self.node_id = space.validate(node_id, "node id")
        self.space = space
        self.digit_bits = digit_bits
        self.leaf_radius = leaf_radius
        self.alive = True
        #: (row, digit) -> set of neighbor ids usable for that prefix repair.
        self.cells: dict[tuple[int, int], set[int]] = {}
        self.core: set[int] = set()
        self.auxiliary: set[int] = set()
        self.leaves: set[int] = set()
        self.tracker = ExactFrequencyTable()
        #: Routing-layer cache of leaf-set geometry (see
        #: :func:`repro.pastry.routing._leaf_geometry`); any mutation of
        #: ``leaves`` must reset it to ``None``.
        self._leaf_cache: tuple | None = None

    # ------------------------------------------------------------------
    # Cell bookkeeping
    # ------------------------------------------------------------------
    def cell_key(self, other: int) -> tuple[int, int]:
        """The (row, digit) cell another node's id belongs to."""
        space = self.space
        row = space.common_prefix_length(self.node_id, other) // self.digit_bits
        return row, space.digit_at(other, row, self.digit_bits)

    def _add_to_cell(self, other: int) -> None:
        self.cells.setdefault(self.cell_key(other), set()).add(other)

    def _remove_from_cell(self, other: int) -> None:
        key = self.cell_key(other)
        bucket = self.cells.get(key)
        if bucket is not None:
            bucket.discard(other)
            if not bucket:
                del self.cells[key]

    def candidates_for(self, key: int) -> set[int]:
        """Neighbors that repair at least one digit of ``key``: the entries
        of the cell addressed by the key's first digit mismatch."""
        if key == self.node_id:
            return set()
        space = self.space
        row = space.common_prefix_length(self.node_id, key) // self.digit_bits
        digit = space.digit_at(key, row, self.digit_bits)
        return self.cells.get((row, digit), set())

    # ------------------------------------------------------------------
    # Neighbor-set maintenance
    # ------------------------------------------------------------------
    def set_core(self, entries: set[int]) -> None:
        """Replace the core routing-table entries."""
        for old in self.core - entries - self.auxiliary - self.leaves:
            self._remove_from_cell(old)
        self.core = {entry for entry in entries if entry != self.node_id}
        for entry in self.core:
            self._add_to_cell(entry)

    def set_leaves(self, entries: set[int]) -> None:
        """Replace the leaf set. Leaf entries also count as routing
        candidates (Pastry consults both structures)."""
        for old in self.leaves - entries - self.core - self.auxiliary:
            self._remove_from_cell(old)
        self.leaves = {entry for entry in entries if entry != self.node_id}
        self._leaf_cache = None
        for entry in self.leaves:
            self._add_to_cell(entry)

    def set_auxiliary(self, pointers: set[int]) -> None:
        """Install a new auxiliary set (selection output)."""
        for old in self.auxiliary - pointers - self.core - self.leaves:
            self._remove_from_cell(old)
        self.auxiliary = {p for p in pointers if p != self.node_id}
        for pointer in self.auxiliary:
            self._add_to_cell(pointer)

    def evict(self, dead_id: int) -> None:
        """Drop a neighbor discovered dead via a lookup timeout."""
        self.core.discard(dead_id)
        self.auxiliary.discard(dead_id)
        if dead_id in self.leaves:
            self.leaves.discard(dead_id)
            self._leaf_cache = None
        self._remove_from_cell(dead_id)

    def neighbor_ids(self) -> set[int]:
        """Every currently-known neighbor."""
        return self.core | self.auxiliary | self.leaves

    def leaf_snapshot(self) -> frozenset[int]:
        """Read-only copy of the leaf set (verification hook)."""
        return frozenset(self.leaves)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail abruptly, losing all volatile state."""
        self.alive = False
        self.cells.clear()
        self.core.clear()
        self.auxiliary.clear()
        self.leaves.clear()
        self._leaf_cache = None
        self.tracker = ExactFrequencyTable()

    # ------------------------------------------------------------------
    # Frequency tracking
    # ------------------------------------------------------------------
    def record_access(self, destination: int) -> None:
        """Note the node that held a queried item (Section III)."""
        if destination != self.node_id:
            self.tracker.observe(destination)

    def frequency_snapshot(self, limit: int | None = None) -> dict[int, float]:
        """Observed per-peer frequencies, optionally top-``limit`` only."""
        snapshot = self.tracker.snapshot(limit)
        snapshot.pop(self.node_id, None)
        return snapshot
