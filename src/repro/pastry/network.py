"""The Pastry overlay: membership, responsibility, maintenance, policies.

Keys are assigned to the *numerically closest* live node (Section II-A).
Core routing tables are rebuilt locality-aware, as in FreePastry: for each
``(row, digit)`` cell a few candidates from the matching id range are
sampled and the proximally closest one becomes the entry (DESIGN.md §5
documents this as the sampling approximation of FreePastry's table
maintenance).

Churn semantics mirror the Chord substrate: crashes leave stale pointers at
other nodes until a lookup timeout or the next stabilization round cleans
them up.
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from typing import Callable, Iterable

from repro.core.oblivious import select_pastry_oblivious, select_uniform_random
from repro.core.pastry_selection import select_pastry
from repro.core.types import SelectionProblem, SelectionResult
from repro.pastry.node import PastryNode
from repro.pastry.proximity import ProximityModel
from repro.pastry.routing import PastryLookupResult, circular_distance, route
from repro.util.errors import ConfigurationError, NodeAbsentError
from repro.util.ids import IdSpace
from repro.util.validation import require_non_negative_int, require_positive_int

__all__ = [
    "PastryNetwork",
    "optimal_policy",
    "oblivious_policy",
    "uniform_policy",
]

#: Signature of an auxiliary-selection policy: (problem, rng, overlay).
#: The overlay lets frequency-oblivious baselines draw random nodes per
#: prefix class from the whole population, as the paper specifies.
AuxiliaryPolicy = Callable[[SelectionProblem, random.Random, "PastryNetwork"], SelectionResult]


def optimal_policy(
    problem: SelectionProblem, rng: random.Random, overlay: "PastryNetwork | None" = None
) -> SelectionResult:
    """The paper's frequency-aware optimal selection (rng/overlay unused)."""
    return select_pastry(problem)


def oblivious_policy(
    problem: SelectionProblem, rng: random.Random, overlay: "PastryNetwork | None" = None
) -> SelectionResult:
    """The frequency-oblivious baseline of Section VI-A: random nodes per
    prefix class, drawn from the live population when available."""
    pool = overlay.alive_ids() if overlay is not None else None
    return select_pastry_oblivious(problem, rng, pool=pool)


def uniform_policy(
    problem: SelectionProblem, rng: random.Random, overlay: "PastryNetwork | None" = None
) -> SelectionResult:
    """Uniform-random ablation baseline."""
    pool = overlay.alive_ids() if overlay is not None else None
    return select_uniform_random(problem, rng, "pastry", pool=pool)


class PastryNetwork:
    """A complete Pastry overlay with explicit, inspectable state.

    Example
    -------
    >>> network = PastryNetwork.build(64, space=IdSpace(16), seed=1)
    >>> result = network.lookup(network.alive_ids()[0], key=12345)
    >>> result.succeeded
    True
    """

    def __init__(
        self,
        space: IdSpace | None = None,
        digit_bits: int = 1,
        leaf_radius: int = 8,
        core_samples: int = 4,
        proximity_seed: int = 0,
    ) -> None:
        self.space = space or IdSpace()
        require_positive_int(digit_bits, "digit_bits")
        require_positive_int(leaf_radius, "leaf_radius")
        require_positive_int(core_samples, "core_samples")
        self.digit_bits = digit_bits
        self.leaf_radius = leaf_radius
        self.core_samples = core_samples
        self.proximity = ProximityModel(proximity_seed)
        self.nodes: dict[int, PastryNode] = {}
        self._alive: list[int] = []
        self._maintenance_rng = random.Random(proximity_seed ^ 0x5A5A5A)
        self._telemetry = None  # set via attach_telemetry

    def attach_telemetry(self, telemetry) -> None:
        """Attach (or detach with ``None``) a telemetry runtime; feeds the
        maintenance spans. Observe-only — never touches routing state or
        randomness (see :meth:`repro.chord.ring.ChordRing.attach_telemetry`).
        """
        self._telemetry = telemetry if telemetry is not None and telemetry.enabled else None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        n: int,
        space: IdSpace | None = None,
        seed: int = 0,
        digit_bits: int = 1,
        leaf_radius: int = 8,
    ) -> "PastryNetwork":
        """Create a stabilized network of ``n`` nodes with random ids."""
        require_positive_int(n, "n")
        network = cls(space, digit_bits=digit_bits, leaf_radius=leaf_radius, proximity_seed=seed)
        rng = random.Random(seed)
        if n > network.space.size:
            raise ConfigurationError(f"cannot place {n} nodes in a {network.space.bits}-bit space")
        for node_id in rng.sample(range(network.space.size), n):
            network.add_node(node_id)
        network.stabilize_all()
        return network

    def add_node(self, node_id: int) -> PastryNode:
        """Add a brand-new node (not yet known to others)."""
        self.space.validate(node_id, "node id")
        if node_id in self.nodes:
            raise ConfigurationError(f"node {node_id} already exists")
        node = PastryNode(node_id, self.space, self.digit_bits, self.leaf_radius)
        self.nodes[node_id] = node
        insort(self._alive, node_id)
        self._rebuild_tables(node)
        return node

    def join_via(self, node_id: int, bootstrap: int) -> PastryNode:
        """Protocol-faithful join (Section II-A): route a join message from
        ``bootstrap`` toward the new node's own id and assemble state from
        the nodes on the path.

        As in Pastry, the node encountered at hop ``i`` shares at least
        ``i`` digits with the newcomer, so its routing rows seed the
        newcomer's corresponding rows; the final node — numerically
        closest to the new id — donates its leaf set. Other nodes learn
        about the newcomer only via their later stabilization rounds.
        """
        self.space.validate(node_id, "node id")
        if node_id in self.nodes and self.nodes[node_id].alive:
            raise ConfigurationError(f"node {node_id} already exists")
        boot = self.nodes.get(bootstrap)
        if boot is None or not boot.alive:
            raise NodeAbsentError(f"bootstrap node {bootstrap} is not alive")

        existing = self.nodes.get(node_id)
        if existing is not None:
            # Keep the node unroutable while the join message travels.
            existing.alive = False
        answer = route(self, bootstrap, node_id, record_access=False)
        node = existing
        if node is None:
            node = PastryNode(node_id, self.space, self.digit_bits, self.leaf_radius)
            self.nodes[node_id] = node
        node.cells.clear()
        node.core.clear()
        node.auxiliary.clear()
        node.leaves.clear()

        # Harvest routing state from every node the join message visited.
        core: set[int] = set()
        for visited in answer.path:
            donor = self.nodes[visited]
            core.add(visited)
            for entries in donor.cells.values():
                core.update(entries)
        core.discard(node_id)
        # Keep one entry per cell (the proximally closest, as FreePastry
        # would), so the harvested table has the usual shape.
        best_per_cell: dict[tuple[int, int], int] = {}
        for candidate in core:
            key = node.cell_key(candidate)
            incumbent = best_per_cell.get(key)
            if incumbent is None or self.proximity.latency(node_id, candidate) < self.proximity.latency(node_id, incumbent):
                best_per_cell[key] = candidate
        node.set_core(set(best_per_cell.values()))

        # Leaf set: seeded from the numerically closest node found.
        closest = self.nodes[answer.path[-1]]
        donated = {leaf for leaf in closest.leaves if leaf != node_id}
        donated.add(closest.node_id)
        node.set_leaves(donated)

        node.alive = True
        insort(self._alive, node_id)
        return node

    # ------------------------------------------------------------------
    # Membership queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> PastryNode:
        """Fetch a node object by id (KeyError when unknown)."""
        return self.nodes[node_id]

    def alive_ids(self) -> list[int]:
        """Sorted ids of live nodes (a copy)."""
        return list(self._alive)

    def alive_count(self) -> int:
        return len(self._alive)

    def responsible(self, key: int) -> int:
        """The live node numerically closest to ``key`` (lower id on ties)."""
        if not self._alive:
            raise NodeAbsentError("network has no live nodes")
        index = bisect_left(self._alive, key)
        candidates = {
            self._alive[index % len(self._alive)],
            self._alive[index - 1],  # wraps via [-1]
        }
        return min(candidates, key=lambda c: (circular_distance(self.space, c, key), c))

    # ------------------------------------------------------------------
    # Verification hooks (read-only introspection)
    # ------------------------------------------------------------------
    def leaf_snapshot(self) -> dict[int, frozenset[int]]:
        """Per-live-node leaf sets, as installed right now."""
        return {
            node_id: self.nodes[node_id].leaf_snapshot() for node_id in self._alive
        }

    def reference_leaf_set(self, node_id: int) -> frozenset[int]:
        """Ground-truth leaf set from the global view — what a
        stabilization round installs. Verification compares per-node state
        against this independent derivation."""
        return frozenset(self._leaf_set(node_id))

    def hop_distances(self, path: Iterable[int], key: int) -> list[tuple[int, int]]:
        """``(shared_prefix_bits, circular_distance)`` from each path node
        to ``key`` — the two quantities Pastry routing must improve on
        every hop (longer prefix, or numerically closer)."""
        return [
            (
                self.space.common_prefix_length(node_id, key),
                circular_distance(self.space, node_id, key),
            )
            for node_id in path
        ]

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> None:
        """Abruptly fail a node; others keep stale pointers to it."""
        node = self.nodes[node_id]
        if not node.alive:
            raise NodeAbsentError(f"node {node_id} is already down")
        node.crash()
        index = bisect_left(self._alive, node_id)
        del self._alive[index]

    def rejoin(self, node_id: int) -> None:
        """Bring a crashed node back with fresh state and rebuilt tables."""
        node = self.nodes[node_id]
        if node.alive:
            raise NodeAbsentError(f"node {node_id} is already up")
        node.alive = True
        insort(self._alive, node_id)
        self._rebuild_tables(node)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stabilize(self, node_id: int) -> None:
        """One node's maintenance round: rebuild core entries and leaf set
        from the current population and drop dead auxiliaries (the ping
        process of Section III extended to auxiliary entries)."""
        node = self.nodes[node_id]
        if not node.alive:
            raise NodeAbsentError(f"cannot stabilize dead node {node_id}")
        tel = self._telemetry
        if tel is not None:
            with tel.span("maintenance.stabilize"):
                stale_aux = {aux for aux in node.auxiliary if not self.nodes[aux].alive}
                node.set_auxiliary(node.auxiliary - stale_aux)
                self._rebuild_tables(node)
            # One ping per auxiliary pointer plus the table re-init sweep.
            tel.add_work("maintenance.stabilize_messages", len(node.auxiliary) + len(stale_aux))
            tel.add_work("maintenance.stale_evictions", len(stale_aux))
            return
        stale_aux = {aux for aux in node.auxiliary if not self.nodes[aux].alive}
        node.set_auxiliary(node.auxiliary - stale_aux)
        self._rebuild_tables(node)

    def stabilize_all(self) -> None:
        """Stabilize every live node (used to reach a steady state)."""
        for node_id in self.alive_ids():
            self.stabilize(node_id)

    def recompute_auxiliary(
        self,
        node_id: int,
        k: int,
        policy: AuxiliaryPolicy,
        rng: random.Random,
        frequency_limit: int | None = None,
    ) -> SelectionResult:
        """Run a selection policy at one node and install the result."""
        require_non_negative_int(k, "k")
        node = self.nodes[node_id]
        if not node.alive:
            raise NodeAbsentError(f"cannot select auxiliaries at dead node {node_id}")
        frequencies = node.frequency_snapshot(frequency_limit)
        problem = SelectionProblem(
            space=self.space,
            source=node_id,
            frequencies=frequencies,
            core_neighbors=frozenset(node.core | node.leaves),
            k=k,
        )
        tel = self._telemetry
        if tel is not None:
            previous = set(node.auxiliary)
            with tel.span("selection.recompute"):
                result = policy(problem, rng, self)
                node.set_auxiliary(set(result.auxiliary))
            tel.add_work(
                "selection.pointer_updates", len(previous ^ set(result.auxiliary))
            )
            return result
        result = policy(problem, rng, self)
        node.set_auxiliary(set(result.auxiliary))
        return result

    def recompute_all_auxiliary(
        self,
        k: int,
        policy: AuxiliaryPolicy,
        rng: random.Random,
        frequency_limit: int | None = None,
    ) -> None:
        """Recompute auxiliary sets at every live node."""
        for node_id in self.alive_ids():
            self.recompute_auxiliary(node_id, k, policy, rng, frequency_limit)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(
        self,
        source: int,
        key: int,
        mode: str = "proximity",
        record_access: bool = True,
        retry=None,
        faults=None,
        trace=None,
    ) -> PastryLookupResult:
        """Route a query for ``key`` from ``source``; see :func:`route`.

        ``retry``/``faults`` forward to the router's fault-aware knobs
        (:class:`~repro.faults.retry.RetryPolicy`,
        :class:`~repro.faults.plane.FaultPlane`); ``trace`` attaches an
        observe-only :class:`~repro.obs.recorder.TraceRecorder`."""
        return route(
            self,
            source,
            key,
            mode=mode,
            record_access=record_access,
            retry=retry,
            faults=faults,
            trace=trace,
        )

    def seed_frequencies(self, node_id: int, frequencies: dict[int, float]) -> None:
        """Pre-load a node's tracker with a destination distribution."""
        from repro.core.frequency import ExactFrequencyTable

        node = self.nodes[node_id]
        tracker = ExactFrequencyTable()
        for peer, weight in frequencies.items():
            if peer != node_id and weight > 0:
                tracker.observe(peer, weight)
        node.tracker = tracker

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _rebuild_tables(self, node: PastryNode) -> None:
        node.set_core(self._locality_core(node.node_id))
        node.set_leaves(self._leaf_set(node.node_id))

    def _leaf_set(self, node_id: int) -> set[int]:
        """The ``leaf_radius`` numerically nearest live nodes on each side."""
        alive = self._alive
        others = len(alive) - 1
        if others <= 0:
            return set()
        index = bisect_left(alive, node_id)
        take = min(self.leaf_radius, others // 2 + others % 2)
        leaves: set[int] = set()
        for step in range(1, take + 1):
            leaves.add(alive[(index + step) % len(alive)])
            leaves.add(alive[(index - step) % len(alive)])
        leaves.discard(node_id)
        return leaves

    def _locality_core(self, node_id: int) -> set[int]:
        """One locality-chosen entry per (row, digit) cell.

        For each cell the candidate ids form a contiguous range; we sample
        up to ``core_samples`` live ids from it and keep the proximally
        closest — approximating FreePastry's proximity-aware table fill.
        """
        space = self.space
        alive = self._alive
        entries: set[int] = set()
        rows = space.num_digits(self.digit_bits)
        for row in range(rows):
            prefix_bits = row * self.digit_bits
            width = min(self.digit_bits, space.bits - prefix_bits)
            own_digit = space.digit_at(node_id, row, self.digit_bits)
            suffix_bits = space.bits - prefix_bits - width
            base = space.prefix(node_id, prefix_bits) << (space.bits - prefix_bits)
            for digit in range(1 << width):
                if digit == own_digit:
                    continue
                low = base | (digit << suffix_bits)
                high = low + (1 << suffix_bits)  # exclusive
                lo_index = bisect_left(alive, low)
                hi_index = bisect_left(alive, high)
                count = hi_index - lo_index
                if count <= 0:
                    continue
                if count <= self.core_samples:
                    sample = alive[lo_index:hi_index]
                else:
                    sample = [
                        alive[self._maintenance_rng.randrange(lo_index, hi_index)]
                        for __ in range(self.core_samples)
                    ]
                entries.add(self.proximity.closest(node_id, list(sample)))
        return entries
