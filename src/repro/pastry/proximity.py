"""Synthetic network-proximity model for the Pastry substrate.

FreePastry's routing is *locality-aware*: among next-hop candidates it
prefers the one with the lowest network latency to the current node — the
behaviour the paper credits for Figure 4's increasing-with-k trend
(Section VI discussion). The authors ran on FreePastry's transport; we
substitute a standard synthetic coordinate space: every node gets a random
point in a unit square and latency is the Euclidean distance (documented in
DESIGN.md §5).
"""

from __future__ import annotations

import math
import random

__all__ = ["ProximityModel"]


class ProximityModel:
    """Deterministic synthetic latencies from random 2-D coordinates.

    Coordinates are derived lazily per node id from the seed, so latencies
    are stable across the life of a network regardless of join order.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._coordinates: dict[int, tuple[float, float]] = {}

    def coordinates(self, node_id: int) -> tuple[float, float]:
        """The node's point in the unit square."""
        point = self._coordinates.get(node_id)
        if point is None:
            rng = random.Random((self.seed << 32) ^ node_id)
            point = (rng.random(), rng.random())
            self._coordinates[node_id] = point
        return point

    def latency(self, a: int, b: int) -> float:
        """Symmetric synthetic latency between two nodes."""
        if a == b:
            return 0.0
        xa, ya = self.coordinates(a)
        xb, yb = self.coordinates(b)
        return math.hypot(xa - xb, ya - yb)

    def closest(self, origin: int, candidates: list[int]) -> int:
        """The candidate with the lowest latency to ``origin`` (ties break
        on id for determinism). ``candidates`` must be non-empty."""
        return min(candidates, key=lambda c: (self.latency(origin, c), c))
