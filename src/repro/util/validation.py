"""Small argument-validation helpers used across the library.

These keep the public constructors short and make error messages uniform.
All helpers raise :class:`repro.util.errors.ConfigurationError`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.util.errors import ConfigurationError

__all__ = [
    "require",
    "require_positive_int",
    "require_non_negative_int",
    "require_positive",
    "require_probability",
    "require_unique",
    "require_frequencies",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an ``int`` greater than zero."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an ``int`` greater than or equal to zero."""
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative integer, got {value!r}")
    return value


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number greater than zero."""
    try:
        ok = value > 0 and value == value and value != float("inf")
    except TypeError:
        ok = False
    if not ok:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return value


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    try:
        ok = 0.0 <= value <= 1.0
    except TypeError:
        ok = False
    if not ok:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def require_unique(values: Iterable[int], name: str) -> list[int]:
    """Validate that ``values`` contains no duplicates; return it as a list."""
    items = list(values)
    if len(set(items)) != len(items):
        raise ConfigurationError(f"{name} contains duplicate entries")
    return items


def require_frequencies(frequencies: Mapping[int, float], name: str = "frequencies") -> None:
    """Validate a peer-frequency mapping: finite, non-negative weights."""
    for peer, weight in frequencies.items():
        if not isinstance(peer, int) or isinstance(peer, bool):
            raise ConfigurationError(f"{name} key {peer!r} is not an integer id")
        if not (weight >= 0) or weight == float("inf"):
            raise ConfigurationError(f"{name}[{peer}] must be a finite non-negative number, got {weight!r}")
