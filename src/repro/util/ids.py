"""Identifier-space arithmetic shared by the Chord and Pastry substrates.

Both overlays place peers on a circular identifier space of ``2**bits``
points. This module centralizes the arithmetic the rest of the library
needs:

* clockwise ring gaps and interval membership (Chord),
* longest-common-prefix lengths and digit extraction (Pastry),
* stable hashing of arbitrary item names into the id space.

Identifiers are plain Python ``int`` values in ``[0, 2**bits)``. An
:class:`IdSpace` instance carries the ``bits`` parameter so callers never
pass it around separately.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property

from repro.util.errors import IdSpaceError

__all__ = ["IdSpace", "DEFAULT_BITS"]

#: The paper's experiments use 32-bit binary identifiers (Section VI-A).
DEFAULT_BITS = 32


@dataclass(frozen=True)
class IdSpace:
    """A circular identifier space of ``2**bits`` points.

    Parameters
    ----------
    bits:
        Identifier length ``b`` in bits. The paper's simulations use 32.
    """

    bits: int = DEFAULT_BITS

    def __post_init__(self) -> None:
        if not isinstance(self.bits, int) or self.bits < 1:
            raise IdSpaceError(f"bits must be a positive integer, got {self.bits!r}")
        if self.bits > 256:
            raise IdSpaceError(f"bits={self.bits} is unreasonably large (max 256)")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    # ``size``/``mask`` sit on the routing hot path (two reads per
    # forwarded hop); caching them keeps ``gap`` from re-allocating the
    # ``1 << bits`` big int on every call. ``bits`` is frozen, so the
    # cached values can never go stale.
    @cached_property
    def size(self) -> int:
        """Number of points in the id space (``2**bits``)."""
        return 1 << self.bits

    @cached_property
    def mask(self) -> int:
        """Bit mask selecting the low ``bits`` bits."""
        return self.size - 1

    def contains(self, value: int) -> bool:
        """Return ``True`` when ``value`` is a valid identifier."""
        return isinstance(value, int) and 0 <= value < self.size

    def validate(self, value: int, what: str = "identifier") -> int:
        """Return ``value`` unchanged, raising :class:`IdSpaceError` if invalid."""
        if not self.contains(value):
            raise IdSpaceError(f"{what} {value!r} outside [0, 2**{self.bits})")
        return value

    # ------------------------------------------------------------------
    # Ring arithmetic (Chord)
    # ------------------------------------------------------------------
    def gap(self, start: int, end: int) -> int:
        """Clockwise distance from ``start`` to ``end``: ``(end - start) mod 2**b``."""
        return (end - start) & self.mask

    def add(self, value: int, offset: int) -> int:
        """Return ``(value + offset) mod 2**b`` (offset may be negative)."""
        return (value + offset) & self.mask

    def in_open_interval(self, value: int, start: int, end: int) -> bool:
        """Return ``True`` when ``value`` lies strictly between ``start`` and
        ``end`` walking clockwise (the Chord ``(start, end)`` interval)."""
        if start == end:
            # A zero-length interval wraps the whole ring minus the endpoint.
            return value != start
        return 0 < self.gap(start, value) < self.gap(start, end)

    def in_half_open_interval(self, value: int, start: int, end: int) -> bool:
        """Return ``True`` when ``value`` is in the clockwise ``(start, end]``."""
        if start == end:
            return True
        return 0 < self.gap(start, value) <= self.gap(start, end)

    def chord_distance(self, source: int, target: int) -> int:
        """Hop-count estimate from ``source`` to ``target`` (paper eq. 6).

        ``d_uv = 1 + floor(log2((v - u) mod 2**b))`` — equivalently the
        1-indexed position of the left-most '1' bit in the clockwise gap,
        which Python's ``int.bit_length`` computes directly. ``d_uu = 0``.
        """
        return self.gap(source, target).bit_length()

    # ------------------------------------------------------------------
    # Prefix arithmetic (Pastry)
    # ------------------------------------------------------------------
    def common_prefix_length(self, a: int, b: int) -> int:
        """Length (in bits) of the longest common prefix of two identifiers."""
        self.validate(a, "id a")
        self.validate(b, "id b")
        diff = a ^ b
        if diff == 0:
            return self.bits
        return self.bits - diff.bit_length()

    def pastry_distance(self, a: int, b: int) -> int:
        """Hop-count estimate between Pastry nodes: ``b - lcp(a, b)``.

        Section IV: with binary digits, the number of hops needed to fix the
        remaining bits is at most the number of unshared bits.
        """
        return self.bits - self.common_prefix_length(a, b)

    def bit_at(self, value: int, index: int) -> int:
        """Return the bit of ``value`` at position ``index`` counting from
        the most-significant bit (index 0 = MSB). Pastry routing consumes
        identifiers digit-by-digit from the top."""
        if not 0 <= index < self.bits:
            raise IdSpaceError(f"bit index {index} outside [0, {self.bits})")
        return (value >> (self.bits - 1 - index)) & 1

    def digit_at(self, value: int, index: int, digit_bits: int) -> int:
        """Return the ``index``-th base-``2**digit_bits`` digit from the top.

        The final digit may cover fewer bits when ``bits`` is not a multiple
        of ``digit_bits``; it is right-aligned like the others.
        """
        if digit_bits < 1:
            raise IdSpaceError(f"digit_bits must be >= 1, got {digit_bits}")
        rows = self.num_digits(digit_bits)
        if not 0 <= index < rows:
            raise IdSpaceError(f"digit index {index} outside [0, {rows})")
        high = self.bits - index * digit_bits
        low = max(high - digit_bits, 0)
        return (value >> low) & ((1 << (high - low)) - 1)

    def num_digits(self, digit_bits: int) -> int:
        """Number of base-``2**digit_bits`` digits in an identifier."""
        if digit_bits < 1:
            raise IdSpaceError(f"digit_bits must be >= 1, got {digit_bits}")
        return -(-self.bits // digit_bits)

    def prefix(self, value: int, length: int) -> int:
        """Return the top ``length`` bits of ``value`` (right-aligned)."""
        if not 0 <= length <= self.bits:
            raise IdSpaceError(f"prefix length {length} outside [0, {self.bits}]")
        if length == 0:
            return 0
        return value >> (self.bits - length)

    def to_bits(self, value: int) -> str:
        """Render ``value`` as a fixed-width binary string (debugging aid)."""
        self.validate(value)
        return format(value, f"0{self.bits}b")

    def from_bits(self, text: str) -> int:
        """Parse a binary string produced by :meth:`to_bits`."""
        if len(text) != self.bits or set(text) - {"0", "1"}:
            raise IdSpaceError(f"{text!r} is not a {self.bits}-bit binary string")
        return int(text, 2)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def hash_name(self, name: str, salt: str = "") -> int:
        """Deterministically hash an item name into the id space.

        Uses SHA-1 like the original Chord/Pastry papers, truncated to
        ``bits`` bits. ``salt`` lets callers derive independent mappings.
        """
        digest = hashlib.sha1((salt + name).encode("utf-8")).digest()
        return int.from_bytes(digest, "big") & self.mask
