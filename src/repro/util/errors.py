"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class. Configuration mistakes raise
:class:`ConfigurationError` (a subclass of :class:`ValueError` as well, so
idiomatic ``except ValueError`` also works), while runtime protocol failures
raise more specific subclasses.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "IdSpaceError",
    "RoutingError",
    "LookupFailedError",
    "NodeAbsentError",
    "SelectionError",
    "InfeasibleConstraintError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """An argument or configuration value is invalid."""


class IdSpaceError(ConfigurationError):
    """An identifier does not fit the configured id space."""


class RoutingError(ReproError):
    """A routing step could not be performed."""


class LookupFailedError(RoutingError):
    """A lookup could not reach the node responsible for the key.

    Carries the partial hop count so simulations can account for wasted
    traffic before a retry.
    """

    def __init__(self, key: int, hops: int, reason: str) -> None:
        super().__init__(f"lookup for key {key} failed after {hops} hops: {reason}")
        self.key = key
        self.hops = hops
        self.reason = reason


class NodeAbsentError(RoutingError):
    """An operation referenced a node that is not alive in the overlay."""


class SelectionError(ReproError):
    """Auxiliary-neighbor selection failed."""


class InfeasibleConstraintError(SelectionError):
    """QoS delay bounds cannot be satisfied with the given pointer budget."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""
