"""Process-parallel task execution for experiment sweeps.

Experiment cells (one figure point, one sweep value, one seed replicate)
are embarrassingly parallel: each builds its own overlay and RNG registry
from a config-embedded seed, so results do not depend on *where* or *in
which order* cells run. :func:`run_tasks` exploits that with a
``ProcessPoolExecutor`` fan-out whose output is returned in submission
order — a parallel run is therefore bit-identical to a serial one.

Worker count resolution (:func:`resolve_jobs`): an explicit ``jobs``
argument wins, then the ``REPRO_JOBS`` environment variable, then
``os.cpu_count()``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.util.errors import ConfigurationError

__all__ = ["JOBS_ENV_VAR", "resolve_jobs", "run_tasks"]

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the worker count: explicit value > ``REPRO_JOBS`` > CPU count."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR)
        if env is not None and env.strip():
            try:
                jobs = int(env)
            except ValueError:
                raise ConfigurationError(
                    f"{JOBS_ENV_VAR}={env!r} is not an integer worker count"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ConfigurationError(f"jobs must be a positive integer, got {jobs!r}")
    return jobs


def run_tasks(
    fn: Callable[[_T], _R],
    tasks: Iterable[_T],
    jobs: int | None = None,
) -> list[_R]:
    """Map ``fn`` over ``tasks``, process-parallel when ``jobs > 1``.

    Results come back in task order regardless of completion order, so
    callers assemble identical outputs at any worker count. ``fn`` and
    every task must be picklable when ``jobs > 1`` (module-level functions
    and frozen dataclass configs are).
    """
    jobs = resolve_jobs(jobs)
    task_list: Sequence[_T] = list(tasks)
    if jobs == 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    workers = min(jobs, len(task_list))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, task_list))
