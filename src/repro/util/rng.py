"""Deterministic random-number streams for reproducible simulations.

Every stochastic component of the library (id assignment, workload
sampling, churn timing, baseline pointer choice, ...) draws from a named
substream derived from one master seed. Two runs with the same master seed
produce identical results regardless of the order in which components are
constructed, because each substream is seeded from a stable hash of its
name rather than from a shared sequential generator.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["SeedSequenceRegistry", "substream_seed"]


def substream_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit seed for the substream ``name`` from ``master_seed``.

    The derivation is a SHA-256 hash so distinct names give statistically
    independent streams and the mapping is stable across Python versions
    (unlike ``hash``, which is salted per process).
    """
    payload = f"{master_seed}:{name}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class SeedSequenceRegistry:
    """Factory of named, independent :class:`random.Random` substreams.

    Example
    -------
    >>> rng = SeedSequenceRegistry(42)
    >>> churn = rng.stream("churn")
    >>> workload = rng.stream("workload")
    >>> churn is rng.stream("churn")
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        if not isinstance(master_seed, int):
            raise TypeError(f"master_seed must be an int, got {type(master_seed).__name__}")
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) substream registered under ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(substream_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def fresh(self, name: str) -> random.Random:
        """Return a new, unmemoized generator for ``name`` (same seed each call)."""
        return random.Random(substream_seed(self.master_seed, name))

    def spawn(self, name: str) -> "SeedSequenceRegistry":
        """Derive a child registry whose streams are independent of the parent's."""
        return SeedSequenceRegistry(substream_seed(self.master_seed, f"spawn:{name}"))
