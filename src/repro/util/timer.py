"""Monotonic wall-time measurement for CLI commands and benches.

One shared helper instead of hand-rolled ``time.time()`` deltas at every
command: :class:`Stopwatch` reads ``time.perf_counter`` (monotonic, not
affected by clock adjustments), so elapsed values can never go negative.
Elapsed wall time is *volatile* by nature — commands report it to the
terminal and store it under their manifest's ``volatile`` block, never in
the deterministic part of a document.
"""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Started-at-construction monotonic timer.

    >>> watch = Stopwatch()
    >>> watch.elapsed >= 0.0
    True
    """

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds since construction (monotonic)."""
        return time.perf_counter() - self._started

    def __str__(self) -> str:
        return f"{self.elapsed:.1f}s"
