"""Shared utilities: id-space arithmetic, RNG streams, validation, errors."""

from repro.util.errors import (
    ConfigurationError,
    IdSpaceError,
    InfeasibleConstraintError,
    LookupFailedError,
    NodeAbsentError,
    ReproError,
    RoutingError,
    SelectionError,
    SimulationError,
)
from repro.util.ids import DEFAULT_BITS, IdSpace
from repro.util.rng import SeedSequenceRegistry, substream_seed

__all__ = [
    "ConfigurationError",
    "DEFAULT_BITS",
    "IdSpace",
    "IdSpaceError",
    "InfeasibleConstraintError",
    "LookupFailedError",
    "NodeAbsentError",
    "ReproError",
    "RoutingError",
    "SeedSequenceRegistry",
    "SelectionError",
    "SimulationError",
    "substream_seed",
]
