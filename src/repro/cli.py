"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure {3,4,5,6}``
    Regenerate one of the paper's evaluation figures and print the series
    as a table (``--detail`` adds raw hop counts; ``--paper`` runs the
    full-size configuration, which takes minutes).
``compare``
    Run a single comparison cell with explicit parameters.
``sweep``
    Sweep one configuration parameter and print a table or CSV.
``bench``
    Run the perf-regression benchmarks and emit a BENCH_v1 document;
    ``--check BASELINE`` fails if any microbenchmark regressed. Also
    fails when the disabled-tracing overhead gate
    (``obs_overhead.passed``) does not hold.
``faults``
    Run the fault-injection robustness grid (%-reduction vs message-loss
    rate and vs crash-burst size) and fail if the frequency-aware policy
    stops winning under >= 5% message loss.
``workload``
    Run the workload-plane grid (every synthetic scenario × overlay ×
    selection mode, plus the §II-C item-cache discipline grid) and fail
    if frequency-aware selection stops winning on skewed scenarios or
    adaptive refresh stops winning anywhere. ``figure``, ``compare``,
    ``sweep``, ``faults`` and ``metrics`` accept ``--workload
    NAME[:PARAM]`` to swap the query scenario on any cell.
``cachestats``
    Run the per-pointer cache attribution grid (:mod:`repro.obs.attribution`):
    hits/uses per (node, pointer class), staleness-at-use under a churn
    probe, quota utilization vs the budget allocator's ``k_i``, and
    per-lookup hop-savings attribution with the conservation law
    Σ(credits) == oblivious − observed hops machine-checked on every
    lookup. Prints utilization/load sparklines and a top-N hot-pointer
    table; ``--json`` writes the CACHESTATS_v1 document. ``repro
    allocate --loads measured`` threads the same recorder's measured
    per-node query rates into ``CostCurve(load=...)`` and gates on a
    strict predicted win; ``repro allocate --workload NAME[:PARAM]``
    swaps the query scenario on the whole allocation grid.
``trace``
    Run one traced cell (:mod:`repro.obs`): per-lookup hop paths with
    pointer-class attribution, a hop-class/verdict breakdown table, and
    optionally the full TRACE_v1 document as JSON. ``--sample N`` keeps
    a seeded reservoir of N lookup traces instead of all of them.
``check``
    Run the invariant-checking scenario search (:mod:`repro.verify`):
    seeded scenarios driven through all three overlays with every applicable
    invariant evaluated per step. Failing scenarios are shrunk to a
    replayable VERIFY_REPRO_v1 JSON (``--repro PATH``); ``--replay PATH``
    re-runs such a document deterministically.
``metrics``
    Run one instrumented comparison cell (:mod:`repro.telemetry`) on the
    deterministic round clock and render an ASCII dashboard of the
    per-round series (sparklines + span profile). ``--json PATH`` writes
    the METRICS_v1 document, ``--openmetrics PATH`` the Prometheus-style
    text exposition (round index as sample timestamp).
``report``
    Regenerate the EXPERIMENTS.md measurement tables at report scale and
    write ``results/report.json`` (REPORT_v1, with manifest) and
    ``results/report.md``.
``demo``
    A 30-second end-to-end tour (used by the quickstart).

``figure``, ``sweep``, ``faults``, ``metrics`` and ``report`` accept
``--jobs`` to fan cells over worker processes (default: ``REPRO_JOBS`` or
the CPU count); outputs are bit-identical at any worker count.
``figure``, ``sweep``, ``faults``, ``trace``, ``check``, ``metrics`` and
``report`` write JSON documents that embed a MANIFEST_v1 provenance block
(config digest, seed, git revision, environment); elapsed wall time is
reported via one shared :class:`repro.util.timer.Stopwatch` and stored
only under the manifest's ``volatile`` part.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.figures import FIGURES, FigurePreset, run_figure
from repro.experiments.report import render_detail, render_markdown, render_table
from repro.util.timer import Stopwatch

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Accelerating Lookups in P2P Systems using Peer "
            "Caching' (Deb et al., ICDE 2008)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figure = sub.add_parser("figure", help="regenerate one evaluation figure")
    figure.add_argument(
        "figure_id",
        nargs="?",
        choices=sorted(FIGURES),
        default="7",
        help="figure number (default: 7, the three-overlay comparison)",
    )
    figure.add_argument(
        "--overlay",
        choices=["chord", "pastry", "kademlia"],
        default=None,
        help="pin figure 7's cross-overlay grid to one overlay",
    )
    figure.add_argument("--paper", action="store_true", help="full paper-scale parameters (slow)")
    figure.add_argument("--seed", type=int, default=0, help="master random seed")
    figure.add_argument("--detail", action="store_true", help="print raw hop counts too")
    figure.add_argument("--markdown", action="store_true", help="emit a markdown table")
    figure.add_argument("--chart", action="store_true", help="render an ASCII chart")
    figure.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for figure cells (default: REPRO_JOBS or CPU count)",
    )
    figure.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the figure as a FIGURE_v1 JSON document (with manifest)",
    )
    figure.add_argument(
        "--engine",
        choices=["auto", "objects", "columnar"],
        default="auto",
        help="routing engine for stable cells (columnar = vectorized struct-of-arrays)",
    )
    figure.add_argument(
        "--workload",
        default="static-zipf",
        metavar="NAME[:PARAM]",
        help="query scenario for every cell (e.g. drifting-zipf:30, "
        "flash-crowd:3, trace:/path/to/trace.jsonl; default: static-zipf)",
    )

    compare = sub.add_parser("compare", help="run a single comparison cell")
    compare.add_argument("overlay", choices=["chord", "pastry", "kademlia"])
    compare.add_argument("--n", type=int, default=256)
    compare.add_argument("--k", type=int, default=None, help="auxiliary pointers (default log2 n)")
    compare.add_argument("--alpha", type=float, default=1.2)
    compare.add_argument("--bits", type=int, default=24)
    compare.add_argument("--queries", type=int, default=5000)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--churn", action="store_true", help="run the churn-mode simulation")
    compare.add_argument("--duration", type=float, default=600.0, help="churn sim duration (s)")
    compare.add_argument(
        "--engine",
        choices=["auto", "objects", "columnar"],
        default="auto",
        help="routing engine (stable mode only; churn always uses objects)",
    )
    compare.add_argument(
        "--budget",
        default=None,
        metavar="MODE[:K]",
        help="budget policy: 'uniform' or 'allocated', optionally with a "
        "total pointer budget K (e.g. 'allocated:256'; default K = n*k). "
        "Omit for the legacy per-node-k path",
    )
    compare.add_argument(
        "--workload",
        default="static-zipf",
        metavar="NAME[:PARAM]",
        help="query scenario (default: static-zipf, the paper's workload)",
    )

    sw = sub.add_parser("sweep", help="sweep one config parameter")
    sw.add_argument("overlay", choices=["chord", "pastry", "kademlia"])
    sw.add_argument("parameter", help="ExperimentConfig field to vary (e.g. alpha, k, n)")
    sw.add_argument("values", nargs="+", help="values to sweep over")
    sw.add_argument("--n", type=int, default=128)
    sw.add_argument("--bits", type=int, default=20)
    sw.add_argument("--queries", type=int, default=3000)
    sw.add_argument("--seed", type=int, default=0)
    sw.add_argument("--csv", action="store_true", help="emit CSV instead of a table")
    sw.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep cells (default: REPRO_JOBS or CPU count)",
    )
    sw.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the sweep as a SWEEP_v1 JSON document (with manifest)",
    )
    sw.add_argument(
        "--engine",
        choices=["auto", "objects", "columnar"],
        default="auto",
        help="routing engine for the swept cells",
    )
    sw.add_argument(
        "--workload",
        default="static-zipf",
        metavar="NAME[:PARAM]",
        help="query scenario for the swept cells (default: static-zipf)",
    )

    bench = sub.add_parser("bench", help="run perf benchmarks, emit BENCH_v1 JSON")
    bench.add_argument("--smoke", action="store_true", help="trimmed sizes/repeats (for CI)")
    bench.add_argument("--output", default=None, help="write the BENCH_v1 document here")
    bench.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare micro medians against a baseline BENCH_v1.json; exit 1 on regression",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="regression threshold for --check (default 2.0x)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the parallel identity check",
    )

    faults = sub.add_parser("faults", help="fault-injection robustness grid")
    faults.add_argument("--smoke", action="store_true", help="CI-scale grid (seconds)")
    faults.add_argument("--seed", type=int, default=0, help="master random seed")
    faults.add_argument("--json", default=None, metavar="PATH", help="write the grid as canonical JSON")
    faults.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for grid cells (default: REPRO_JOBS or CPU count)",
    )
    faults.add_argument(
        "--workload",
        default="static-zipf",
        metavar="NAME[:PARAM]",
        help="query scenario for every grid cell (default: static-zipf)",
    )

    workload = sub.add_parser(
        "workload", help="scenario × overlay × selection comparison grid"
    )
    workload.add_argument("--smoke", action="store_true", help="CI-scale grid (seconds)")
    workload.add_argument("--seed", type=int, default=0, help="master random seed")
    workload.add_argument(
        "--json", default=None, metavar="PATH", help="write the WORKLOAD_v1 document here"
    )
    workload.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for grid cells (default: REPRO_JOBS or CPU count)",
    )

    allocate = sub.add_parser(
        "allocate", help="uniform-k vs allocated-k at equal total budget"
    )
    allocate.add_argument("--smoke", action="store_true", help="CI-scale grid (seconds)")
    allocate.add_argument("--seed", type=int, default=0, help="master random seed")
    allocate.add_argument(
        "--json", default=None, metavar="PATH", help="write the ALLOCATION_v1 document here"
    )
    allocate.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for grid cells (default: REPRO_JOBS or CPU count)",
    )
    allocate.add_argument(
        "--workload",
        default="static-zipf",
        metavar="NAME[:PARAM]",
        help="query scenario for the plan probe and every grid cell "
        "(default: static-zipf)",
    )
    allocate.add_argument(
        "--loads",
        choices=["uniform", "measured"],
        default="uniform",
        help="'measured' probes per-node query rates via the attribution "
        "recorder and plans load-aware CostCurves (gated on a strict "
        "predicted win over the uniform-load plan)",
    )

    cachestats = sub.add_parser(
        "cachestats", help="per-pointer cache attribution grid (repro.obs)"
    )
    cachestats.add_argument("--smoke", action="store_true", help="CI-scale grid (seconds)")
    cachestats.add_argument("--seed", type=int, default=0, help="master random seed")
    cachestats.add_argument(
        "--json", default=None, metavar="PATH", help="write the CACHESTATS_v1 document here"
    )
    cachestats.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for overlay cells (default: REPRO_JOBS or CPU count)",
    )
    cachestats.add_argument(
        "--top", type=int, default=5, help="hot pointers to print per overlay (default 5)"
    )
    cachestats.add_argument(
        "--workload",
        default="static-zipf",
        metavar="NAME[:PARAM]",
        help="query scenario for every cell (default: static-zipf)",
    )

    trace = sub.add_parser("trace", help="trace per-lookup hop paths for one cell")
    trace.add_argument(
        "overlay", nargs="?", choices=["chord", "pastry", "kademlia"], default="chord",
        help="overlay to trace (default: chord)",
    )
    trace.add_argument("--n", type=int, default=128)
    trace.add_argument("--k", type=int, default=None, help="auxiliary pointers (default log2 n)")
    trace.add_argument("--alpha", type=float, default=1.2)
    trace.add_argument("--bits", type=int, default=20)
    trace.add_argument("--queries", type=int, default=2000)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--policy",
        choices=["optimal", "oblivious"],
        default="optimal",
        help="which auxiliary-selection policy to trace",
    )
    trace.add_argument(
        "--sample",
        type=int,
        default=None,
        metavar="N",
        help="keep a seeded reservoir of N lookup traces (default: keep all)",
    )
    trace.add_argument(
        "--loss", type=float, default=0.0, help="per-message drop probability (fault plane)"
    )
    trace.add_argument(
        "--burst", type=int, default=0, help="correlated crash-burst size (fault plane)"
    )
    trace.add_argument(
        "--paths", type=int, default=5, help="print the first N kept lookup paths (default 5)"
    )
    trace.add_argument(
        "--json", default=None, metavar="PATH", help="write the TRACE_v1 document here"
    )

    check = sub.add_parser(
        "check", help="invariant-checking scenario search (repro.verify)"
    )
    check.add_argument(
        "--scenarios", type=int, default=200, help="number of generated scenarios"
    )
    check.add_argument("--seed", type=int, default=0, help="master random seed")
    check.add_argument(
        "--overlay",
        choices=["chord", "pastry", "kademlia"],
        default=None,
        help="pin one overlay (default: cycle through all three)",
    )
    check.add_argument(
        "--smoke", action="store_true", help="CI-scale scenario count (seconds)"
    )
    check.add_argument(
        "--json", default=None, metavar="PATH", help="write the CHECK_v1 document here"
    )
    check.add_argument(
        "--repro",
        default="verify_failure.json",
        metavar="PATH",
        help="where to write the shrunk VERIFY_REPRO_v1 on failure",
    )
    check.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="re-run a shrunk VERIFY_REPRO_v1 failure document instead of searching",
    )

    metrics = sub.add_parser(
        "metrics", help="round-clocked telemetry dashboard for one cell"
    )
    metrics.add_argument(
        "overlay", nargs="?", choices=["chord", "pastry", "kademlia"], default="chord",
        help="overlay to instrument (default: chord)",
    )
    metrics.add_argument("--n", type=int, default=128)
    metrics.add_argument("--k", type=int, default=None, help="auxiliary pointers (default log2 n)")
    metrics.add_argument("--alpha", type=float, default=1.2)
    metrics.add_argument("--bits", type=int, default=20)
    metrics.add_argument("--queries", type=int, default=4000)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument(
        "--rounds", type=int, default=12, help="round-clock samples (default 12)"
    )
    metrics.add_argument(
        "--churn", action="store_true", help="churn-mode cell (virtual-time round clock)"
    )
    metrics.add_argument(
        "--duration", type=float, default=600.0, help="churn sim duration (s)"
    )
    metrics.add_argument(
        "--loss", type=float, default=0.0, help="per-message drop probability (fault plane)"
    )
    metrics.add_argument(
        "--burst", type=int, default=0, help="correlated crash-burst size (fault plane)"
    )
    metrics.add_argument(
        "--smoke", action="store_true", help="CI-scale cell (seconds)"
    )
    metrics.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the two policy cells (default: REPRO_JOBS or CPU count)",
    )
    metrics.add_argument(
        "--json", default=None, metavar="PATH", help="write the METRICS_v1 document here"
    )
    metrics.add_argument(
        "--openmetrics",
        default=None,
        metavar="PATH",
        help="write the OpenMetrics text exposition here",
    )
    metrics.add_argument(
        "--workload",
        default="static-zipf",
        metavar="NAME[:PARAM]",
        help="query scenario for the instrumented cell (default: static-zipf)",
    )

    report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md tables (results/report.*)"
    )
    report.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for figure cells (default: REPRO_JOBS or CPU count)",
    )
    report.add_argument(
        "--figures",
        nargs="+",
        default=("3", "4", "5", "6", "7"),
        choices=("3", "4", "5", "6", "7"),
        help="subset of figures to regenerate",
    )
    report.add_argument(
        "--out-dir", default="results", help="output directory (default: results)"
    )

    sub.add_parser("demo", help="30-second end-to-end tour")
    return parser


def _cmd_figure(args: argparse.Namespace) -> int:
    preset = FigurePreset.paper(args.seed) if args.paper else FigurePreset.quick(args.seed)
    watch = Stopwatch()
    result = run_figure(
        args.figure_id,
        preset,
        jobs=args.jobs,
        engine=args.engine,
        overlay=args.overlay,
        workload=args.workload,
    )
    print(render_table(result))
    if args.detail:
        print()
        print(render_detail(result))
    if args.markdown:
        print()
        print(render_markdown(result))
    if args.chart:
        from repro.analysis.ascii_chart import render_chart

        print()
        print(render_chart(result))
    if args.json:
        from repro.experiments.figures import result_to_json

        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result_to_json(result, preset, wall_time_s=round(watch.elapsed, 3)))
        print(f"\nfigure document written to {args.json}")
    print(f"\n[{preset.name} preset, {watch}]")
    return 0


def _parse_budget(text: str | None) -> dict:
    """``--budget MODE[:K]`` -> ExperimentConfig budget kwargs."""
    if text is None:
        return {}
    mode, sep, total = text.partition(":")
    if mode not in ("uniform", "allocated"):
        raise SystemExit(
            f"--budget mode must be 'uniform' or 'allocated', got {mode!r}"
        )
    kwargs: dict = {"budget_mode": mode}
    if sep:
        try:
            kwargs["budget_total"] = int(total)
        except ValueError:
            raise SystemExit(f"--budget total must be an integer, got {total!r}")
    elif mode == "allocated":
        # Bare 'allocated' still plans: K defaults to n * effective_k.
        kwargs["budget_total"] = None
    return kwargs


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.sim.runner import ChurnConfig, ExperimentConfig, run_churn, run_stable

    budget_kwargs = _parse_budget(args.budget)
    if args.churn:
        config = ChurnConfig(
            overlay=args.overlay,
            n=args.n,
            k=args.k,
            alpha=args.alpha,
            bits=args.bits,
            seed=args.seed,
            duration=args.duration,
            warmup=min(args.duration / 4, 300.0),
            workload=args.workload,
            **budget_kwargs,
        )
        result = run_churn(config)
    else:
        config = ExperimentConfig(
            overlay=args.overlay,
            n=args.n,
            k=args.k,
            alpha=args.alpha,
            bits=args.bits,
            queries=args.queries,
            seed=args.seed,
            engine=args.engine,
            workload=args.workload,
            **budget_kwargs,
        )
        result = run_stable(config)
    print(result.summary())
    print(
        f"  failure rates: ours {result.optimized.failure_rate:.4f}, "
        f"oblivious {result.baseline.failure_rate:.4f}"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sim.runner import ExperimentConfig
    from repro.experiments.sweep import rows_to_csv, rows_to_json, rows_to_table, sweep

    base = ExperimentConfig(
        overlay=args.overlay,
        n=args.n,
        bits=args.bits,
        queries=args.queries,
        seed=args.seed,
        engine=args.engine,
        workload=args.workload,
    )

    def convert(text: str):
        for kind in (int, float):
            try:
                return kind(text)
            except ValueError:
                continue
        return text

    rows = sweep(base, args.parameter, [convert(value) for value in args.values], jobs=args.jobs)
    print(rows_to_csv(rows) if args.csv else rows_to_table(rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(rows_to_json(rows, base))
        print(f"\nsweep document written to {args.json}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.compare import find_regressions, load_bench
    from repro.perf.runner import print_summary, run_bench, write_bench

    # Load the baseline before the (minutes-long) bench run so a bad
    # --check path fails immediately.
    baseline = load_bench(args.check) if args.check else None
    document = run_bench(smoke=args.smoke, jobs=args.jobs)
    print_summary(document)
    if args.output:
        path = write_bench(document, args.output)
        print(f"\nbench document written to {path}")
    if not document["parallel"]["identical"]:
        print("\nFAIL: parallel sweep output diverged from the serial run", file=sys.stderr)
        return 1
    for key, label in (
        ("obs_overhead", "disabled-tracing"),
        ("telemetry_overhead", "disabled-telemetry"),
        ("cachestats_overhead", "disabled-cachestats"),
    ):
        overhead = document[key]
        if not overhead["passed"]:
            print(
                f"\nFAIL: {label} overhead {overhead['worst_ratio']:.4f} exceeds "
                f"the {overhead['threshold']:.2f} gate",
                file=sys.stderr,
            )
            return 1
    equivalence = document.get("engine_equivalence") or {}
    if "skipped" not in equivalence and not equivalence.get("identical", True):
        print(
            "\nFAIL: columnar engine results diverged from the object engine",
            file=sys.stderr,
        )
        return 1
    for key, label, metric in (
        ("engine_speedup", "engine routing speedup", "worst_routing_speedup"),
        ("engine_memory", "engine bytes/node", "bytes_per_node"),
    ):
        section = document.get(key) or {}
        if "skipped" not in section and not section.get("passed", True):
            print(
                f"\nFAIL: {label} {section[metric]} misses the "
                f"{section['threshold']} gate",
                file=sys.stderr,
            )
            return 1
    if baseline is not None:
        regressions = find_regressions(baseline, document, threshold=args.threshold)
        if regressions:
            print(f"\n{len(regressions)} regression(s) vs {args.check}:", file=sys.stderr)
            for regression in regressions:
                print(f"  {regression.describe()}", file=sys.stderr)
            return 1
        print(f"\nno regressions vs {args.check} (threshold {args.threshold:.1f}x)")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments.robustness import (
        RobustnessPreset,
        robustness,
        rows_to_json,
        rows_to_table,
    )

    preset = (
        RobustnessPreset.smoke(args.seed, workload=args.workload)
        if args.smoke
        else RobustnessPreset.quick(args.seed, workload=args.workload)
    )
    watch = Stopwatch()
    rows = robustness(preset, jobs=args.jobs)
    print(rows_to_table(rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(rows_to_json(rows, preset, wall_time_s=round(watch.elapsed, 3)))
        print(f"\ngrid written to {args.json}")
    print(f"\n[{preset.name} preset, {watch}]")
    # The robustness claim this command guards: frequency-aware selection
    # must keep a positive hop reduction under >= 5% message loss.
    losers = [
        row
        for row in rows
        if row.axis == "loss" and row.value >= 0.05 and row.improvement_pct <= 0.0
    ]
    if losers:
        for row in losers:
            print(
                f"FAIL: {row.overlay} loses at loss={row.value:g} "
                f"({row.improvement_pct:.1f}% reduction)",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.experiments.workload import (
        WorkloadPreset,
        cache_rows_to_table,
        gate_messages,
        rows_to_json,
        rows_to_table,
        run_workloads,
    )

    preset = (
        WorkloadPreset.smoke(args.seed) if args.smoke else WorkloadPreset.quick(args.seed)
    )
    watch = Stopwatch()
    rows, cache_rows = run_workloads(preset, jobs=args.jobs)
    print("selection policies per workload scenario (mean hops):")
    print(rows_to_table(rows))
    print()
    print("item caching vs pointer caching per scenario (§II-C grid):")
    print(cache_rows_to_table(cache_rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(
                rows_to_json(rows, cache_rows, preset, wall_time_s=round(watch.elapsed, 3))
            )
        print(f"\nworkload document written to {args.json}")
    print(f"\n[{preset.name} preset, {watch}]")
    # Gates: frequency-aware selection must win on the skewed stationary
    # scenario, and adaptive refresh must keep a win on every scenario.
    failures = gate_messages(rows)
    if failures:
        for message in failures:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    from repro.experiments.allocation import (
        AllocationPreset,
        allocation,
        gate_messages,
        load_gate_messages,
        measured_gate_messages,
        plans_to_table,
        rows_to_json,
        rows_to_table,
    )

    factory = AllocationPreset.smoke if args.smoke else AllocationPreset.quick
    preset = factory(args.seed, workload=args.workload, loads=args.loads)
    watch = Stopwatch()
    plans, rows = allocation(preset, jobs=args.jobs)
    print("predicted eq.-1 network cost at equal total budget:")
    print(plans_to_table(plans))
    print()
    print("measured mean hops per scenario:")
    print(rows_to_table(rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(rows_to_json(plans, rows, preset, wall_time_s=round(watch.elapsed, 3)))
        print(f"\nallocation document written to {args.json}")
    print(f"\n[{preset.name} preset, {watch}]")
    # Gates: the allocated plan must strictly beat uniform on predicted
    # cost for every overlay (convexity guarantees it — a miss means a
    # broken allocator), must win measured hops on at least one scenario
    # per overlay, and with --loads measured the load-aware plan must
    # strictly beat the load-blind plan under the measured curves.
    failures = (
        gate_messages(plans) + measured_gate_messages(rows) + load_gate_messages(plans)
    )
    if failures:
        for message in failures:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1
    return 0


def _cmd_cachestats(args: argparse.Namespace) -> int:
    from repro.analysis.ascii_chart import render_series_table
    from repro.experiments.cachestats import (
        CachestatsPreset,
        cells_to_json,
        cells_to_table,
        gate_messages,
        run_cachestats,
        top_pointers_table,
        utilization_series,
    )

    factory = CachestatsPreset.smoke if args.smoke else CachestatsPreset.quick
    preset = factory(args.seed, workload=args.workload)
    watch = Stopwatch()
    cells = run_cachestats(preset, jobs=args.jobs)
    print("per-pointer-class accounting (clean measurement pass):")
    print(cells_to_table(cells))
    print()
    print("per-node quota utilization and measured load (ascending node id):")
    print(render_series_table(utilization_series(cells)))
    print()
    print(f"top {args.top} pointers by credited hop savings:")
    print(top_pointers_table(cells, args.top))
    print()
    for cell in cells:
        ledger = cell["conservation"]
        churn = cell["churn"]
        print(
            f"{cell['overlay']}: {ledger['attributed']}/{ledger['lookups']} lookups "
            f"attributed, credited {ledger['credited']} of "
            f"{ledger['oblivious_hops'] - ledger['observed_hops']} saved hops "
            f"(conservation {'exact' if ledger['exact'] else 'VIOLATED'}); "
            f"churn probe: {churn['crashed']} crashed, "
            f"{churn['stale_uses']} stale uses in {churn['lookups']} lookups"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(cells_to_json(cells, preset, wall_time_s=round(watch.elapsed, 3)))
        print(f"\ncachestats document written to {args.json}")
    print(f"\n[{preset.name} preset, {watch}]")
    failures = gate_messages(cells)
    if failures:
        for message in failures:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.faults.schedule import FaultSchedule
    from repro.obs.driver import trace_cell
    from repro.sim.runner import ExperimentConfig

    schedule = None
    if args.loss > 0.0 or args.burst > 0:
        schedule = FaultSchedule(loss_rate=args.loss, crash_burst_size=args.burst)
    config = ExperimentConfig(
        overlay=args.overlay,
        n=args.n,
        k=args.k,
        alpha=args.alpha,
        bits=args.bits,
        queries=args.queries,
        seed=args.seed,
        faults=schedule,
    )
    watch = Stopwatch()
    document = trace_cell(config, policy=args.policy, sample=args.sample)
    stats = document["stats"]
    print(
        f"traced {stats['lookups']} {args.overlay} lookups "
        f"(policy={args.policy}, n={args.n}, seed={args.seed}): "
        f"mean hops {stats['mean_hops']:.3f}, "
        f"failure rate {stats['failure_rate']:.4f}, "
        f"timeout rate {stats['timeout_rate']:.4f}"
    )
    print(_render_hop_classes(document["counters"]))
    if document["counters"]["timeouts_by_verdict"]:
        verdicts = ", ".join(
            f"{verdict}={count}"
            for verdict, count in sorted(document["counters"]["timeouts_by_verdict"].items())
        )
        print(f"timeout verdicts: {verdicts}")
    kept = document["traces"]
    shown = kept[: max(0, args.paths)]
    if shown:
        print(
            f"\nper-lookup paths ({len(shown)} of {document['kept']} kept, "
            f"{document['seen']} seen):"
        )
        for trace in shown:
            print(_render_trace(trace))
    if args.json:
        document["manifest"]["volatile"]["wall_time_s"] = round(watch.elapsed, 3)
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(document, sort_keys=True, indent=2) + "\n")
        print(f"\ntrace document written to {args.json}")
    print(f"\n[{watch}]")
    return 0


def _render_hop_classes(counters: dict) -> str:
    """Aligned pointer-class breakdown of every forward in the cell."""
    hops = counters["hops_by_class"]
    total = sum(hops.values()) or 1
    lines = ["hop breakdown by pointer class:"]
    for name, count in sorted(hops.items(), key=lambda item: (-item[1], item[0])):
        lines.append(f"  {name:<10} {count:>8}  {100.0 * count / total:5.1f}%")
    return "\n".join(lines)


def _render_trace(trace: dict) -> str:
    """One kept lookup as an indented per-hop path dump."""
    status = "ok" if trace["succeeded"] else "FAILED"
    header = (
        f"  key={trace['key']} source={trace['source']} dest={trace['destination']} "
        f"hops={trace['hops']} timeouts={trace['timeouts']} {status}"
    )
    lines = [header]
    for index, event in enumerate(trace["events"], start=1):
        if event["delivered"]:
            outcome = "delivered"
        else:
            verdicts = ",".join(event["verdicts"]) or "timeout"
            outcome = f"EVICTED ({verdicts})"
        retry = f" attempts={event['attempts']}" if event["attempts"] > 1 else ""
        penalty = f" penalty=+{event['penalty']:g}" if event["penalty"] else ""
        lines.append(
            f"    hop {index}: {event['forwarder']} -> {event['target']} "
            f"[{event['pointer_class']}] {outcome}{retry}{penalty}"
        )
    return "\n".join(lines)


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    from repro.verify import check_scenarios, replay_failure

    watch = Stopwatch()
    if args.replay:
        report = replay_failure(args.replay)
        scenario = report.scenario
        print(
            f"replayed {scenario.overlay} scenario "
            f"(n={scenario.n}, bits={scenario.bits}, k={scenario.k}, "
            f"seed={scenario.seed}, {len(scenario.steps)} steps)"
        )
        if report.passed:
            print("replay PASSED: the recorded violation no longer reproduces")
            return 0
        for violation in report.violations:
            print(
                f"  step {violation.step}: {violation.invariant}: {violation.message}",
                file=sys.stderr,
            )
        print(
            f"replay FAILED: {len(report.violations)} violation(s) reproduced",
            file=sys.stderr,
        )
        return 1

    count = 25 if args.smoke else args.scenarios
    document = check_scenarios(count, args.seed, args.overlay)
    print(
        f"checked {document['scenarios']} scenarios "
        f"({document['overlay']} overlays, seed {document['seed']}): "
        f"{document['lookups']} lookups verified"
    )
    print("invariant evaluations:")
    for name, evaluations in document["checks"].items():
        print(f"  {name:<24} {evaluations:>8}")
    if args.json:
        document["manifest"]["volatile"]["wall_time_s"] = round(watch.elapsed, 3)
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(document, sort_keys=True, indent=2) + "\n")
        print(f"\ncheck document written to {args.json}")
    print(f"\n[{watch}]")
    if document["passed"]:
        print("all invariants held")
        return 0
    failures = document["failures"]
    for failure in failures:
        violation = failure["violation"]
        print(
            f"FAIL (scenario {failure['scenario_index']}): "
            f"{violation['invariant']}: {violation['message']}",
            file=sys.stderr,
        )
    shrunk = [failure for failure in failures if failure.get("schema")]
    if shrunk and args.repro:
        with open(args.repro, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(shrunk[0], sort_keys=True, indent=2) + "\n")
        print(
            f"shrunk repro written to {args.repro} "
            f"(replay with: repro check --replay {args.repro})",
            file=sys.stderr,
        )
    print(
        f"{document['scenarios_failed']} of {document['scenarios']} scenarios failed",
        file=sys.stderr,
    )
    return 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.faults.schedule import FaultSchedule
    from repro.sim.runner import ChurnConfig, ExperimentConfig
    from repro.telemetry.driver import metrics_document
    from repro.telemetry.export import to_openmetrics, write_metrics

    schedule = None
    if args.loss > 0.0 or args.burst > 0:
        schedule = FaultSchedule(loss_rate=args.loss, crash_burst_size=args.burst)
    # --smoke shrinks the cell to CI scale; it is still a fixed (config,
    # seed), so smoke documents are byte-identical across runs and jobs.
    n = 64 if args.smoke else args.n
    rounds = min(args.rounds, 6) if args.smoke else args.rounds
    watch = Stopwatch()
    if args.churn:
        duration = 240.0 if args.smoke else args.duration
        config = ChurnConfig(
            overlay=args.overlay,
            n=n,
            k=args.k,
            alpha=args.alpha,
            bits=args.bits,
            seed=args.seed,
            duration=duration,
            warmup=min(duration / 4, 300.0),
            faults=schedule,
            workload=args.workload,
        )
    else:
        config = ExperimentConfig(
            overlay=args.overlay,
            n=n,
            k=args.k,
            alpha=args.alpha,
            bits=args.bits,
            queries=1500 if args.smoke else args.queries,
            seed=args.seed,
            faults=schedule,
            workload=args.workload,
        )
    document = metrics_document(config, rounds=rounds, jobs=args.jobs)
    print(_render_metrics_dashboard(document))
    document["manifest"]["volatile"]["wall_time_s"] = round(watch.elapsed, 3)
    if args.json:
        write_metrics(document, args.json)
        print(f"\nmetrics document written to {args.json}")
    if args.openmetrics:
        with open(args.openmetrics, "w", encoding="utf-8") as handle:
            handle.write(to_openmetrics(document))
        print(f"openmetrics exposition written to {args.openmetrics}")
    print(f"\n[{watch}]")
    return 0


def _render_metrics_dashboard(document: dict) -> str:
    """One-screen ASCII dashboard of a METRICS_v1 document: per-round
    sparkline table per policy, latency histogram, span profile."""
    clock = document["round_clock"]
    lines = [
        f"METRICS_v1: {document['overlay']} {document['mode']} cell, "
        f"round clock = {clock['rounds']} "
        + (
            f"virtual-time intervals of {clock['interval_s']:g}s"
            if document["mode"] == "churn"
            else f"query chunks of ~{clock['queries'] // clock['rounds']}"
        )
    ]
    for cell in document["cells"].values():
        lines.append("")
        lines.extend(_render_metrics_cell(cell))
    return "\n".join(lines)


def _render_metrics_cell(cell: dict) -> list[str]:
    from repro.analysis.ascii_chart import render_series_table, render_sparkline

    entries: dict[str, dict] = {}
    extra_totals: list[tuple[str, object]] = []
    for entry in cell["metrics"]:
        labels = {
            key: value
            for key, value in entry["labels"].items()
            if key not in ("overlay", "policy")
        }
        if labels:
            suffix = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
            entries[f"{entry['name']}{{{suffix}}}"] = entry
        else:
            entries[entry["name"]] = entry
    stats = cell["stats"]
    mean = stats["mean_hops"]
    lines = [
        f"policy {cell['policy']}: {stats['lookups']} lookups, "
        f"mean hops {mean if mean is None else format(mean, '.3f')}, "
        f"failure rate {stats['failure_rate']:.4f}, "
        f"timeout rate {stats['timeout_rate']:.4f}"
    ]
    rows = []
    for label, name in (
        ("cost/lookup", "repro_round_cost"),
        ("timeout rate", "repro_round_timeout_rate"),
        ("failure rate", "repro_round_failure_rate"),
        ("lookups/round", "repro_round_lookups"),
        ("alive nodes", "repro_alive_nodes"),
    ):
        entry = entries.get(name)
        if entry is not None and entry["series"]:
            rows.append((label, [value for __, value in entry["series"]]))
    if rows:
        lines.extend("  " + line for line in render_series_table(rows).splitlines())
    hist = entries.get("repro_lookup_cost")
    if hist is not None and hist["series"]:
        __, cumulative, total, count = hist["series"][-1]
        deltas = [cumulative[0]] + [
            cumulative[index] - cumulative[index - 1]
            for index in range(1, len(cumulative))
        ]
        lines.append(
            f"  cost histogram {render_sparkline(deltas)} "
            f"(count={count}, sum={total}, edges {hist['edges'][0]:g}..{hist['edges'][-1]:g},+Inf)"
        )
    for prefix, title in (
        ("repro_faults_injected_total{", "faults injected"),
        ("repro_churn_transitions_total{", "churn transitions"),
    ):
        totals = [
            (key[key.index("=") + 1 : -1], entry["value"])
            for key, entry in sorted(entries.items())
            if key.startswith(prefix)
        ]
        if totals:
            lines.append(
                f"  {title}: "
                + ", ".join(f"{kind}={value}" for kind, value in totals)
            )
    spans = cell["spans"]
    if spans["counts"]:
        lines.append(
            "  spans: "
            + ", ".join(f"{name} x{count}" for name, count in spans["counts"].items())
        )
    if spans["work"]:
        lines.append(
            "  work:  "
            + ", ".join(f"{name}={value:g}" for name, value in spans["work"].items())
        )
    return lines


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import run_report
    from repro.util.parallel import resolve_jobs

    jobs = resolve_jobs(args.jobs)
    print(f"running figures {', '.join(args.figures)} with {jobs} worker(s)", flush=True)
    watch = Stopwatch()
    run_report(figures=args.figures, jobs=jobs, out_dir=args.out_dir, echo=print)
    print(f"report written to {args.out_dir}/ [{watch}]")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.sim.runner import ExperimentConfig, run_stable

    config = ExperimentConfig(overlay="chord", n=128, bits=20, queries=3000, seed=1)
    # The banner derives from the actual config — alpha and workload were
    # once hardcoded here and silently went stale when defaults moved.
    print(
        f"Building a {config.n}-node Chord ring, "
        f"{_describe_workload(config)} workload, k = log n ..."
    )
    result = run_stable(config)
    print(result.summary())
    print("Now the same on Pastry with locality-aware routing ...")
    result = run_stable(
        ExperimentConfig(overlay="pastry", n=128, bits=20, queries=3000, seed=1)
    )
    print(result.summary())
    print("Run `python -m repro figure 5` to regenerate a full evaluation figure.")
    return 0


def _describe_workload(config) -> str:
    """Human-readable workload description for banners, derived from the
    config's parsed :class:`~repro.workload.spec.WorkloadSpec`."""
    spec = config.workload_spec
    if spec.is_static:
        return f"zipf({config.alpha:g})"
    return spec.describe()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figure": _cmd_figure,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "bench": _cmd_bench,
        "faults": _cmd_faults,
        "workload": _cmd_workload,
        "allocate": _cmd_allocate,
        "cachestats": _cmd_cachestats,
        "trace": _cmd_trace,
        "check": _cmd_check,
        "metrics": _cmd_metrics,
        "report": _cmd_report,
        "demo": _cmd_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
