"""repro — reproduction of "Accelerating Lookups in P2P Systems using Peer
Caching" (Deb, Linga, Rastogi, Srinivasan — ICDE 2008).

The package implements the paper's frequency-aware auxiliary-neighbor
selection algorithms for Chord and Pastry, the two overlay substrates they
run on, a discrete-event churn simulator, and the full experiment harness
regenerating every evaluation figure.
"""

from repro.core import (
    ExactFrequencyTable,
    IncrementalPastrySelector,
    LossyCountingSketch,
    SelectionProblem,
    SelectionResult,
    SpaceSavingSketch,
    select_chord,
    select_chord_dp,
    select_chord_fast,
    select_chord_oblivious,
    select_pastry,
    select_pastry_dp,
    select_pastry_greedy,
    select_pastry_oblivious,
)
from repro.core.drift import DriftDetector, RecomputationTrigger
from repro.core.qos import QosClass, QosPolicy
from repro.faults import FaultPlane, FaultSchedule, RetryPolicy
from repro.util import IdSpace, SeedSequenceRegistry

__version__ = "1.0.0"

__all__ = [
    "DriftDetector",
    "ExactFrequencyTable",
    "FaultPlane",
    "FaultSchedule",
    "IdSpace",
    "IncrementalPastrySelector",
    "LossyCountingSketch",
    "QosClass",
    "QosPolicy",
    "RecomputationTrigger",
    "RetryPolicy",
    "SeedSequenceRegistry",
    "SelectionProblem",
    "SelectionResult",
    "SpaceSavingSketch",
    "__version__",
    "select_chord",
    "select_chord_dp",
    "select_chord_fast",
    "select_chord_oblivious",
    "select_pastry",
    "select_pastry_dp",
    "select_pastry_greedy",
    "select_pastry_oblivious",
]
