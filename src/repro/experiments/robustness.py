"""Robustness experiment: does frequency-aware selection survive faults?

The paper evaluates its scheme on clean overlays and under background
churn; this experiment stresses it with the deterministic fault plane
(:mod:`repro.faults`) instead, answering the question the paper leaves
open: does the %-reduction in average hops survive message loss and
correlated crash bursts, once lookups are allowed to retry and fail over?

Two one-dimensional axes, all three overlays, stable-mode measurement:

* ``loss``  — per-message drop probability in {0, 0.01, 0.05, 0.1};
* ``burst`` — one correlated crash burst of {0, ...} nodes before
  measurement (victims stay down, every survivor keeps stale pointers).

Each cell runs the frequency-aware and frequency-oblivious policies in
fresh universes built from the same seeds (identical overlay, workload
and fault realization — see :func:`repro.sim.runner.run_stable`), so rows
are independent and fan out over worker processes exactly like the
figure and sweep harnesses; serial and parallel runs are bit-identical.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Sequence

from repro.faults.schedule import FaultSchedule
from repro.obs.manifest import build_manifest
from repro.sim.metrics import ComparisonResult, HopStatistics
from repro.sim.runner import ExperimentConfig, run_stable
from repro.util.errors import ConfigurationError
from repro.util.parallel import run_tasks

__all__ = [
    "RobustnessPreset",
    "RobustnessRow",
    "robustness",
    "rows_to_json",
    "rows_to_table",
]

OVERLAYS = ("chord", "pastry", "kademlia")


@dataclass(frozen=True)
class RobustnessPreset:
    """Grid definition for one robustness run."""

    name: str
    n: int
    bits: int
    queries: int
    seed: int
    loss_rates: tuple[float, ...]
    burst_sizes: tuple[int, ...]
    overlays: tuple[str, ...] = OVERLAYS
    #: Query scenario for every grid cell (``NAME[:PARAM]``).
    workload: str = "static-zipf"

    @classmethod
    def quick(cls, seed: int = 0, workload: str = "static-zipf") -> "RobustnessPreset":
        """Laptop-scale grid (~a minute): the issue's loss axis plus a
        burst axis reaching an eighth of the overlay."""
        return cls(
            name="quick",
            n=128,
            bits=20,
            queries=4000,
            seed=seed,
            loss_rates=(0.0, 0.01, 0.05, 0.1),
            burst_sizes=(0, 4, 8, 16),
            workload=workload,
        )

    @classmethod
    def smoke(cls, seed: int = 0, workload: str = "static-zipf") -> "RobustnessPreset":
        """CI-scale grid (seconds), same loss axis, shorter burst axis."""
        return cls(
            name="smoke",
            n=48,
            bits=16,
            queries=1200,
            seed=seed,
            loss_rates=(0.0, 0.01, 0.05, 0.1),
            burst_sizes=(0, 4),
            workload=workload,
        )


@dataclass(frozen=True)
class RobustnessRow:
    """One grid cell: overlay x axis x value, with fault-aware metrics.

    Percentiles are ``None`` for fault-free cells (the shared-overlay fast
    path does not keep per-lookup samples).
    """

    overlay: str
    axis: str
    value: float
    improvement_pct: float
    optimal_mean_hops: float
    baseline_mean_hops: float
    optimal_failure_rate: float
    baseline_failure_rate: float
    optimal_timeout_rate: float
    baseline_timeout_rate: float
    optimal_p50: float | None
    optimal_p95: float | None
    optimal_p99: float | None
    baseline_p95: float | None


def _schedule_for(axis: str, value: float) -> FaultSchedule:
    if axis == "loss":
        return FaultSchedule(loss_rate=value)
    if axis == "burst":
        return FaultSchedule(crash_burst_size=int(value))
    raise ConfigurationError(f"unknown robustness axis {axis!r}")


def _cells(preset: RobustnessPreset) -> list[tuple[str, str, float]]:
    cells: list[tuple[str, str, float]] = []
    for overlay in preset.overlays:
        for rate in preset.loss_rates:
            cells.append((overlay, "loss", float(rate)))
        for size in preset.burst_sizes:
            cells.append((overlay, "burst", float(size)))
    return cells


def _percentile(stats: HopStatistics, q: float) -> float | None:
    if not stats.keep_samples:
        return None
    return stats.percentile(q)


def _row(cell: tuple[str, str, float], result: ComparisonResult) -> RobustnessRow:
    overlay, axis, value = cell
    ours, base = result.optimized, result.baseline
    return RobustnessRow(
        overlay=overlay,
        axis=axis,
        value=value,
        improvement_pct=result.improvement,
        optimal_mean_hops=ours.mean_hops,
        baseline_mean_hops=base.mean_hops,
        optimal_failure_rate=ours.failure_rate,
        baseline_failure_rate=base.failure_rate,
        optimal_timeout_rate=ours.timeout_rate,
        baseline_timeout_rate=base.timeout_rate,
        optimal_p50=_percentile(ours, 0.50),
        optimal_p95=_percentile(ours, 0.95),
        optimal_p99=_percentile(ours, 0.99),
        baseline_p95=_percentile(base, 0.95),
    )


def robustness(preset: RobustnessPreset, jobs: int | None = None) -> list[RobustnessRow]:
    """Run the full grid; rows come back in cell order at any ``jobs``."""
    cells = _cells(preset)
    configs = [
        ExperimentConfig(
            overlay=overlay,
            n=preset.n,
            bits=preset.bits,
            queries=preset.queries,
            seed=preset.seed,
            faults=_schedule_for(axis, value),
            workload=preset.workload,
        )
        for overlay, axis, value in cells
    ]
    results = run_tasks(run_stable, configs, jobs)
    return [_row(cell, result) for cell, result in zip(cells, results)]


def rows_to_json(
    rows: Sequence[RobustnessRow],
    preset: RobustnessPreset,
    wall_time_s: float | None = None,
) -> str:
    """Canonical JSON document (sorted keys, fixed indent): byte-identical
    for the same seed at any worker count once the manifest's ``volatile``
    keys are stripped (:func:`repro.obs.manifest.strip_volatile`).
    ``wall_time_s`` lands under the manifest's ``volatile`` part."""
    document = {
        "schema": "ROBUSTNESS_v1",
        "preset": asdict(preset),
        "manifest": build_manifest(preset, wall_time_s=wall_time_s),
        "rows": [asdict(row) for row in rows],
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def rows_to_table(rows: Sequence[RobustnessRow]) -> str:
    """Human-readable aligned table of the grid."""
    if not rows:
        return "(empty grid)"
    header = [
        "overlay", "axis", "value", "improvement",
        "ours", "oblivious", "fail(ours)", "tmo/query", "p95(ours)",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.overlay,
                row.axis,
                f"{row.value:g}",
                f"{row.improvement_pct:.1f}%",
                f"{row.optimal_mean_hops:.3f}",
                f"{row.baseline_mean_hops:.3f}",
                f"{row.optimal_failure_rate:.4f}",
                f"{row.optimal_timeout_rate:.3f}",
                "-" if row.optimal_p95 is None else f"{row.optimal_p95:g}",
            ]
        )
    table = [header] + body
    widths = [max(len(line[col]) for line in table) for col in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
