"""Rendering of figure results as text tables and markdown, plus the
``repro report`` runner behind EXPERIMENTS.md.

The original figures are line plots; since this reproduction is judged on
*shape* (who wins, trend directions, rough magnitudes), the harness prints
the underlying series as aligned tables — one row per x value, one column
per series — plus the raw hop counts behind each percentage.

:func:`run_report` regenerates every figure at "report" scale (the
paper's node counts and 32-bit ids, query volumes sized for a small box)
and writes ``results/report.json`` (``REPORT_v1`` with a ``MANIFEST_v1``
provenance block) and ``results/report.md``.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.figures import FigurePreset, FigureResult, run_figure
from repro.obs.manifest import build_manifest
from repro.util.timer import Stopwatch

__all__ = [
    "REPORT_SCHEMA",
    "report_preset",
    "render_table",
    "render_markdown",
    "render_detail",
    "run_report",
]

REPORT_SCHEMA = "REPORT_v1"

REPORT_FIGURES = ("3", "4", "5", "6")


def report_preset(seed: int = 0) -> FigurePreset:
    """The EXPERIMENTS.md measurement scale: paper node counts, 32-bit
    ids, query volumes and churn durations sized for a small box."""
    return FigurePreset(
        name="report",
        bits=32,
        queries=10_000,
        pastry_sizes=(256, 512, 1024, 2048),
        pastry_k_base=1024,
        chord_sizes=(128, 256, 512, 1024),
        chord_k_base=512,
        churn_duration=600.0,
        churn_warmup=150.0,
        seed=seed,
    )


def render_table(result: FigureResult) -> str:
    """ASCII table of the plotted metric (one column per series)."""
    header = [result.x_label] + [f"{series.label} (%)" for series in result.series]
    xs = [point.x for point in result.series[0].points]
    rows = []
    for row_index, x in enumerate(xs):
        row = [_fmt_x(x)]
        for series in result.series:
            row.append(f"{series.points[row_index].improvement:.1f}")
        rows.append(row)
    return _align([header] + rows, title=f"{result.figure_id}: {result.title}")


def render_detail(result: FigureResult) -> str:
    """Long form: per-cell mean hops for both policies and the reduction."""
    lines = [f"{result.figure_id}: {result.title}"]
    for series in result.series:
        lines.append(f"  series {series.label}:")
        for point in series.points:
            comparison = point.comparison
            lines.append(
                f"    {result.x_label} = {_fmt_x(point.x)}: "
                f"ours {comparison.optimized.mean_hops:.3f} hops, "
                f"oblivious {comparison.baseline.mean_hops:.3f} hops, "
                f"reduction {comparison.improvement:.1f}%"
                + (
                    f" (failure rates {comparison.optimized.failure_rate:.3f}"
                    f"/{comparison.baseline.failure_rate:.3f})"
                    if comparison.optimized.failures or comparison.baseline.failures
                    else ""
                )
            )
    return "\n".join(lines)


def render_markdown(result: FigureResult) -> str:
    """Markdown table (used to fill EXPERIMENTS.md)."""
    header = [result.x_label] + [f"{series.label} (% reduction)" for series in result.series]
    lines = [
        f"### {result.figure_id}: {result.title}",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "|".join(["---"] * len(header)) + "|",
    ]
    xs = [point.x for point in result.series[0].points]
    for row_index, x in enumerate(xs):
        cells = [_fmt_x(x)] + [
            f"{series.points[row_index].improvement:.1f}" for series in result.series
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def run_report(
    figures=REPORT_FIGURES,
    jobs: int | None = None,
    out_dir: str | pathlib.Path = "results",
    preset: FigurePreset | None = None,
    echo=None,
) -> dict:
    """Run the report figures and write ``report.json`` / ``report.md``.

    Returns the ``REPORT_v1`` document. ``echo`` (optional callable, e.g.
    ``print``) receives per-figure progress lines. The document carries a
    MANIFEST_v1 block; per-figure ``elapsed_s`` is volatile and lives
    under the manifest's ``volatile`` part, keeping the deterministic
    portion byte-comparable across runs and worker counts.
    """
    preset = preset or report_preset()
    out_path = pathlib.Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    markdown_parts = []
    figures_payload = {}
    elapsed_by_figure = {}
    watch = Stopwatch()
    for figure_id in figures:
        figure_watch = Stopwatch()
        result = run_figure(figure_id, preset, jobs=jobs)
        elapsed = figure_watch.elapsed
        elapsed_by_figure[figure_id] = round(elapsed, 1)
        if echo is not None:
            echo(render_table(result))
            echo(f"[{figure_watch}]\n")
        markdown_parts.append(render_markdown(result))
        markdown_parts.append("")
        figures_payload[figure_id] = {
            "title": result.title,
            "series": {
                series.label: {
                    "x": [point.x for point in series.points],
                    "improvement_pct": [
                        round(point.improvement, 2) for point in series.points
                    ],
                    "optimized_hops": [
                        round(point.comparison.optimized.mean_hops, 4)
                        for point in series.points
                    ],
                    "baseline_hops": [
                        round(point.comparison.baseline.mean_hops, 4)
                        for point in series.points
                    ],
                    "optimized_fail": [
                        round(point.comparison.optimized.failure_rate, 5)
                        for point in series.points
                    ],
                    "baseline_fail": [
                        round(point.comparison.baseline.failure_rate, 5)
                        for point in series.points
                    ],
                }
                for series in result.series
            },
            "detail": render_detail(result),
        }
    manifest = build_manifest(
        preset,
        wall_time_s=round(watch.elapsed, 3),
        extra={"figures": list(figures)},
    )
    manifest["volatile"]["elapsed_by_figure_s"] = elapsed_by_figure
    document = {
        "schema": REPORT_SCHEMA,
        "preset": preset.name,
        "manifest": manifest,
        "figures": figures_payload,
    }
    (out_path / "report.json").write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    digest = manifest.get("config_digest")
    markdown_parts.append(
        f"<!-- MANIFEST_v1: preset={preset.name} seed={preset.seed} "
        f"config_digest={digest} git_rev={manifest.get('git_rev')} -->"
    )
    (out_path / "report.md").write_text("\n".join(markdown_parts) + "\n")
    return document


def _fmt_x(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else f"{x:g}"


def _align(rows: list[list[str]], title: str) -> str:
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = [title]
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
