"""Rendering of figure results as text tables and markdown.

The original figures are line plots; since this reproduction is judged on
*shape* (who wins, trend directions, rough magnitudes), the harness prints
the underlying series as aligned tables — one row per x value, one column
per series — plus the raw hop counts behind each percentage.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult

__all__ = ["render_table", "render_markdown", "render_detail"]


def render_table(result: FigureResult) -> str:
    """ASCII table of the plotted metric (one column per series)."""
    header = [result.x_label] + [f"{series.label} (%)" for series in result.series]
    xs = [point.x for point in result.series[0].points]
    rows = []
    for row_index, x in enumerate(xs):
        row = [_fmt_x(x)]
        for series in result.series:
            row.append(f"{series.points[row_index].improvement:.1f}")
        rows.append(row)
    return _align([header] + rows, title=f"{result.figure_id}: {result.title}")


def render_detail(result: FigureResult) -> str:
    """Long form: per-cell mean hops for both policies and the reduction."""
    lines = [f"{result.figure_id}: {result.title}"]
    for series in result.series:
        lines.append(f"  series {series.label}:")
        for point in series.points:
            comparison = point.comparison
            lines.append(
                f"    {result.x_label} = {_fmt_x(point.x)}: "
                f"ours {comparison.optimized.mean_hops:.3f} hops, "
                f"oblivious {comparison.baseline.mean_hops:.3f} hops, "
                f"reduction {comparison.improvement:.1f}%"
                + (
                    f" (failure rates {comparison.optimized.failure_rate:.3f}"
                    f"/{comparison.baseline.failure_rate:.3f})"
                    if comparison.optimized.failures or comparison.baseline.failures
                    else ""
                )
            )
    return "\n".join(lines)


def render_markdown(result: FigureResult) -> str:
    """Markdown table (used to fill EXPERIMENTS.md)."""
    header = [result.x_label] + [f"{series.label} (% reduction)" for series in result.series]
    lines = [
        f"### {result.figure_id}: {result.title}",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "|".join(["---"] * len(header)) + "|",
    ]
    xs = [point.x for point in result.series[0].points]
    for row_index, x in enumerate(xs):
        cells = [_fmt_x(x)] + [
            f"{series.points[row_index].improvement:.1f}" for series in result.series
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _fmt_x(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else f"{x:g}"


def _align(rows: list[list[str]], title: str) -> str:
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = [title]
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
