"""Generic parameter sweeps over the comparison runners.

The figure runners cover the paper's exact parameter grids; research use
wants arbitrary one-dimensional sweeps ("improvement vs alpha", "vs churn
rate", "vs successor-list size", ...). :func:`sweep` runs the stable or
churn comparison across any ``ExperimentConfig``/``ChurnConfig`` field and
returns rows ready for a table or CSV.

Sweep points are independent (each runner call builds its own overlay and
RNG registry from the point's config), so :func:`sweep` fans them out
over worker processes when ``jobs > 1``; results are assembled in value
order either way, making serial and parallel sweeps bit-identical.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import asdict, dataclass, fields, replace
from typing import Sequence

from repro.obs.manifest import build_manifest
from repro.sim.runner import ChurnConfig, ExperimentConfig, run_churn, run_stable
from repro.util.errors import ConfigurationError
from repro.util.parallel import run_tasks

__all__ = ["SweepRow", "sweep", "rows_to_csv", "rows_to_json", "rows_to_table"]


@dataclass(frozen=True)
class SweepRow:
    """One sweep point: the varied value and the comparison outcome."""

    parameter: str
    value: object
    improvement_pct: float
    optimal_mean_hops: float
    baseline_mean_hops: float
    optimal_failure_rate: float
    baseline_failure_rate: float


def sweep(
    base: ExperimentConfig,
    parameter: str,
    values: Sequence[object],
    jobs: int | None = None,
) -> list[SweepRow]:
    """Run the comparison once per value of ``parameter``.

    ``base`` decides the mode: a :class:`ChurnConfig` sweeps the churn
    simulation, a plain :class:`ExperimentConfig` the stable one.
    ``jobs`` caps the process fan-out (default: ``REPRO_JOBS`` or the
    CPU count); rows come back in value order at any worker count.
    """
    valid = {field.name for field in fields(base)}
    if parameter not in valid:
        raise ConfigurationError(
            f"unknown parameter {parameter!r}; config fields are {sorted(valid)}"
        )
    if not values:
        raise ConfigurationError("values must not be empty")
    runner = run_churn if isinstance(base, ChurnConfig) else run_stable
    configs = [replace(base, **{parameter: value}) for value in values]
    results = run_tasks(runner, configs, jobs)
    return [
        SweepRow(
            parameter=parameter,
            value=value,
            improvement_pct=result.improvement,
            optimal_mean_hops=result.optimized.mean_hops,
            baseline_mean_hops=result.baseline.mean_hops,
            optimal_failure_rate=result.optimized.failure_rate,
            baseline_failure_rate=result.baseline.failure_rate,
        )
        for value, result in zip(values, results)
    ]


def rows_to_csv(rows: list[SweepRow]) -> str:
    """Serialize sweep rows as CSV (header + one line per point)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "parameter",
            "value",
            "improvement_pct",
            "optimal_mean_hops",
            "baseline_mean_hops",
            "optimal_failure_rate",
            "baseline_failure_rate",
        ]
    )
    for row in rows:
        writer.writerow(
            [
                row.parameter,
                row.value,
                f"{row.improvement_pct:.2f}",
                f"{row.optimal_mean_hops:.4f}",
                f"{row.baseline_mean_hops:.4f}",
                f"{row.optimal_failure_rate:.5f}",
                f"{row.baseline_failure_rate:.5f}",
            ]
        )
    return buffer.getvalue()


def rows_to_json(rows: list[SweepRow], base: ExperimentConfig | ChurnConfig) -> str:
    """Canonical SWEEP_v1 JSON with a MANIFEST_v1 provenance block.

    Strip the manifest's ``volatile`` keys before byte-comparing two
    documents produced from the same base config and values.
    """

    def scrub(value):
        return None if isinstance(value, float) and math.isnan(value) else value

    document = {
        "schema": "SWEEP_v1",
        "base": {**asdict(base), "__type__": type(base).__name__},
        "manifest": build_manifest(base),
        "rows": [{key: scrub(value) for key, value in asdict(row).items()} for row in rows],
    }
    return json.dumps(document, sort_keys=True, indent=2, default=str) + "\n"


def rows_to_table(rows: list[SweepRow]) -> str:
    """Human-readable aligned table of sweep rows."""
    if not rows:
        return "(empty sweep)"
    header = [rows[0].parameter, "improvement", "ours (hops)", "oblivious (hops)"]
    body = [
        [
            str(row.value),
            f"{row.improvement_pct:.1f}%",
            f"{row.optimal_mean_hops:.3f}",
            f"{row.baseline_mean_hops:.3f}",
        ]
        for row in rows
    ]
    table = [header] + body
    widths = [max(len(line[col]) for line in table) for col in range(len(header))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
