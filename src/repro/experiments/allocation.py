"""Uniform-k vs allocated-k at equal total pointer budget (DESIGN.md §12).

The paper gives every node the same auxiliary budget ``k``. The global
allocator (:mod:`repro.core.budget`) spends the *same total* budget
``K = budget_fraction * n * k`` non-uniformly, by marginal gain over the
per-node cost curves. This experiment measures what that buys:

* a deterministic **plan** stage per overlay — build the seeded overlay
  and workload exactly as the runners do, compute the uniform and the
  greedy allocation over the same curves, and record the predicted eq.-1
  network costs (the allocated plan is mathematically guaranteed to be
  no worse; see the convexity argument in DESIGN.md §12). The installed
  tables are cross-checked against
  :func:`repro.extensions.global_greedy.network_cost` — the shared
  evaluation — so the predicted numbers are honest.
* a measured **grid** stage — overlay x scenario (stable / churn /
  fault) x budget mode, each cell a full policy comparison through
  :func:`~repro.sim.runner.run_stable` / :func:`~repro.sim.runner.run_churn`
  with the budget threaded through ``ExperimentConfig``. Cells fan out
  over workers like every other harness; serial and parallel runs are
  bit-identical.

Skew comes from ``num_rankings > 1``: nodes hold different Zipf rankings
(and different core tables), so their cost curves — and hence their
marginal gains — differ, which is exactly the regime where non-uniform
budgets win.

Two axes thread the workload plane into the study:

* ``--workload NAME[:PARAM]`` swaps the query scenario on every grid
  cell (the grid ran static-zipf only before PR 10), so allocation is
  exercised under drifting rankings, flash crowds, or diurnal activity.
* ``--loads measured`` closes ROADMAP's load-weighted loop: the plan
  stage first *measures* per-node query rates by routing a probe stream
  through an :class:`~repro.obs.attribution.AttributionRecorder`
  (``attribute=False`` — accounting only), threads
  :meth:`~repro.obs.attribution.AttributionRecorder.measured_loads` into
  ``CostCurve(load=...)``, and re-plans. The gate demands the
  load-aware greedy plan strictly beat the uniform-load plan *evaluated
  under the measured curves* — the predicted value of knowing who
  actually asks.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Sequence

from repro.core import budget as budget_mod
from repro.extensions.global_greedy import network_cost
from repro.faults.schedule import FaultSchedule
from repro.obs.manifest import build_manifest
from repro.sim.metrics import ComparisonResult
from repro.sim.runner import ChurnConfig, ExperimentConfig, _Bench, run_churn, run_stable
from repro.util.errors import ConfigurationError
from repro.util.parallel import run_tasks
from repro.util.rng import SeedSequenceRegistry
from repro.workload.spec import DEFAULT_RATE, WorkloadSpec

__all__ = [
    "AllocationPlan",
    "AllocationPreset",
    "AllocationRow",
    "allocation",
    "allocation_plans",
    "gate_messages",
    "load_gate_messages",
    "measured_gate_messages",
    "plans_to_table",
    "rows_to_json",
    "rows_to_table",
]

OVERLAYS = ("chord", "pastry", "kademlia")
SCENARIOS = ("stable", "churn", "fault")
MODES = ("uniform", "allocated")
LOAD_MODES = ("uniform", "measured")

#: Predicted-cost comparisons tolerate float rounding only.
_COST_TOL = 1e-9


@dataclass(frozen=True)
class AllocationPreset:
    """Grid definition for one uniform-vs-allocated run."""

    name: str
    n: int
    bits: int
    queries: int
    seed: int
    num_rankings: int
    #: Total budget as a fraction of the paper's ``n * k`` spend. Tight
    #: budgets are where allocation matters: at full ``n * k`` most
    #: candidate pools saturate and the two schemes converge.
    budget_fraction: float = 0.5
    loss_rate: float = 0.05
    churn_duration: float = 600.0
    #: Query scenario for every plan probe and grid cell (``NAME[:PARAM]``).
    workload: str = "static-zipf"
    #: ``uniform`` = every node weighted equally (the pre-PR-10 study);
    #: ``measured`` = probe the workload, thread observed per-node query
    #: rates into ``CostCurve(load=...)``, and plan load-aware.
    loads: str = "uniform"
    overlays: tuple[str, ...] = OVERLAYS
    scenarios: tuple[str, ...] = SCENARIOS

    def __post_init__(self) -> None:
        if not 0 < self.budget_fraction <= 1:
            raise ConfigurationError(
                f"budget_fraction must be in (0, 1], got {self.budget_fraction}"
            )
        for scenario in self.scenarios:
            if scenario not in SCENARIOS:
                raise ConfigurationError(
                    f"unknown scenario {scenario!r}; expected one of {SCENARIOS}"
                )
        if self.loads not in LOAD_MODES:
            raise ConfigurationError(
                f"loads must be one of {LOAD_MODES}, got {self.loads!r}"
            )
        WorkloadSpec.parse(self.workload)  # fail fast on a bad selector

    @classmethod
    def quick(
        cls, seed: int = 0, workload: str = "static-zipf", loads: str = "uniform"
    ) -> "AllocationPreset":
        """Laptop-scale grid (~a couple of minutes)."""
        return cls(
            name="quick",
            n=96,
            bits=18,
            queries=4000,
            seed=seed,
            num_rankings=6,
            churn_duration=600.0,
            workload=workload,
            loads=loads,
        )

    @classmethod
    def smoke(
        cls, seed: int = 0, workload: str = "static-zipf", loads: str = "uniform"
    ) -> "AllocationPreset":
        """CI-scale grid (seconds)."""
        return cls(
            name="smoke",
            n=40,
            bits=16,
            queries=1200,
            seed=seed,
            num_rankings=5,
            churn_duration=240.0,
            workload=workload,
            loads=loads,
        )

    @property
    def effective_k(self) -> int:
        return max(1, self.n.bit_length() - 1)

    @property
    def total_budget(self) -> int:
        return max(1, int(self.n * self.effective_k * self.budget_fraction))


@dataclass(frozen=True)
class AllocationPlan:
    """One overlay's deterministic allocation plan at equal total budget."""

    overlay: str
    total_budget: int
    spent: int
    uniform_cost: float
    allocated_cost: float
    #: Predicted eq.-1 network-cost reduction of allocated over uniform.
    reduction_pct: float
    min_quota: int
    max_quota: int
    nodes: int
    #: ``network_cost`` re-evaluation of the *installed* allocated tables
    #: minus the plan's prediction — honesty check, ~0 up to rounding.
    installed_cost_delta: float
    workload: str = "static-zipf"
    loads: str = "uniform"
    #: Load-aware study (``loads == "measured"`` only, else ``None``):
    #: greedy plan under the measured-load curves, the uniform-load greedy
    #: plan *evaluated* under those same curves, and the win of knowing
    #: the real loads.
    measured_cost: float | None = None
    uniform_loads_cost: float | None = None
    load_win_pct: float | None = None
    load_min: float | None = None
    load_max: float | None = None


@dataclass(frozen=True)
class AllocationRow:
    """One measured grid cell: overlay x scenario x budget mode."""

    overlay: str
    scenario: str
    mode: str
    total_budget: int
    improvement_pct: float
    optimal_mean_hops: float
    baseline_mean_hops: float
    label: str


def _measured_loads(bench, preset: AllocationPreset, overlay: str) -> dict[int, float]:
    """Probe the configured workload through the attribution recorder and
    return its mean-1 per-node load weights — the measured side of
    ``CostCurve(load=...)``. Accounting-only (``attribute=False``), and
    ``record_access=False`` keeps the probe strictly observational."""
    from repro.obs.attribution import AttributionRecorder

    recorder = AttributionRecorder(
        overlay, bench.overlay, mode=bench.config.pastry_mode, attribute=False
    )
    stream = bench.workload_stream("load-probe", horizon=preset.queries / DEFAULT_RATE)
    alive = bench.overlay.alive_ids()
    for query in stream.stream(preset.queries, lambda: alive):
        bench.lookup(query.source, query.item, record_access=False, trace=recorder)
    return recorder.measured_loads(bench.overlay.alive_ids())


def _plan_one(preset: AllocationPreset, overlay: str) -> AllocationPlan:
    """Plan stage for one overlay: seeded bench, both allocations, the
    shared-evaluation cross-check. Pure function of the preset."""
    config = _cell_config(preset, overlay, "stable", "allocated")
    registry = SeedSequenceRegistry(config.seed)
    bench = _Bench(config, registry)
    bench.seed_all()
    problems = budget_mod.overlay_problems(overlay, bench.overlay, config.frequency_limit)
    curves = budget_mod.curves_for_problems(problems, overlay)
    uniform = budget_mod.allocate_uniform(curves, preset.total_budget)
    allocated = budget_mod.allocate_greedy(curves, preset.total_budget)
    measured_cost = uniform_loads_cost = load_win_pct = load_min = load_max = None
    if preset.loads == "measured":
        loads = _measured_loads(bench, preset, overlay)
        measured_curves = budget_mod.curves_for_problems(problems, overlay, loads=loads)
        measured = budget_mod.allocate_greedy(measured_curves, preset.total_budget)
        measured_cost = measured.total_cost
        # The uniform-load plan judged by the loads the network actually
        # carries: Σ_i load_i * C_i(k_i) at the load-blind quotas.
        uniform_loads_cost = sum(
            measured_curves[node].cost(allocated.quota(node)) for node in measured_curves
        )
        load_win_pct = (
            100.0 * (uniform_loads_cost - measured_cost) / uniform_loads_cost
            if uniform_loads_cost
            else 0.0
        )
        load_min = min(loads.values(), default=0.0)
        load_max = max(loads.values(), default=0.0)
    # Honesty check: install the allocated plan (frequency-aware policy)
    # and re-evaluate with the shared network_cost over the exact demand
    # snapshots the curves were built from.
    optimal, __ = bench.policies()
    budget_mod.install_allocation(
        bench.overlay, allocated, optimal, registry.fresh("plan-install"), config.frequency_limit
    )
    demands = {node_id: dict(problem.frequencies) for node_id, problem in problems.items()}
    installed = network_cost(bench.overlay, demands, overlay=overlay)
    quotas = allocated.quotas.values()
    return AllocationPlan(
        overlay=overlay,
        total_budget=preset.total_budget,
        spent=allocated.spent,
        uniform_cost=uniform.total_cost,
        allocated_cost=allocated.total_cost,
        reduction_pct=100.0 * (uniform.total_cost - allocated.total_cost) / uniform.total_cost
        if uniform.total_cost
        else 0.0,
        min_quota=min(quotas, default=0),
        max_quota=max(quotas, default=0),
        nodes=len(allocated.quotas),
        installed_cost_delta=installed - allocated.total_cost,
        workload=preset.workload,
        loads=preset.loads,
        measured_cost=measured_cost,
        uniform_loads_cost=uniform_loads_cost,
        load_win_pct=load_win_pct,
        load_min=load_min,
        load_max=load_max,
    )


def allocation_plans(preset: AllocationPreset) -> list[AllocationPlan]:
    """Deterministic per-overlay plans (serial — they are cheap)."""
    return [_plan_one(preset, overlay) for overlay in preset.overlays]


def _cell_config(
    preset: AllocationPreset, overlay: str, scenario: str, mode: str
) -> ExperimentConfig:
    common = dict(
        overlay=overlay,
        n=preset.n,
        bits=preset.bits,
        queries=preset.queries,
        seed=preset.seed,
        num_rankings=preset.num_rankings,
        budget_mode=mode,
        budget_total=preset.total_budget,
        workload=preset.workload,
        engine="objects",
    )
    if scenario == "stable":
        return ExperimentConfig(**common)
    if scenario == "fault":
        return ExperimentConfig(**common, faults=FaultSchedule(loss_rate=preset.loss_rate))
    return ChurnConfig(
        **common,
        duration=preset.churn_duration,
        warmup=preset.churn_duration / 5.0,
    )


def _cells(preset: AllocationPreset) -> list[tuple[str, str, str]]:
    return [
        (overlay, scenario, mode)
        for overlay in preset.overlays
        for scenario in preset.scenarios
        for mode in MODES
    ]


def _run_cell(config: ExperimentConfig) -> ComparisonResult:
    """Module-level so the process pool can pickle it."""
    if isinstance(config, ChurnConfig):
        return run_churn(config)
    return run_stable(config)


def _row(cell: tuple[str, str, str], preset: AllocationPreset, result: ComparisonResult) -> AllocationRow:
    overlay, scenario, mode = cell
    return AllocationRow(
        overlay=overlay,
        scenario=scenario,
        mode=mode,
        total_budget=preset.total_budget,
        improvement_pct=result.improvement,
        optimal_mean_hops=result.optimized.mean_hops,
        baseline_mean_hops=result.baseline.mean_hops,
        label=result.label,
    )


def allocation(
    preset: AllocationPreset, jobs: int | None = None
) -> tuple[list[AllocationPlan], list[AllocationRow]]:
    """Plans plus the measured grid; identical output at any ``jobs``."""
    plans = allocation_plans(preset)
    cells = _cells(preset)
    configs = [_cell_config(preset, *cell) for cell in cells]
    results = run_tasks(_run_cell, configs, jobs)
    rows = [_row(cell, preset, result) for cell, result in zip(cells, results)]
    return plans, rows


def gate_messages(plans: Sequence[AllocationPlan]) -> list[str]:
    """Exit-gate checks: allocation must strictly beat uniform on every
    overlay's predicted cost, and the installed tables must reproduce the
    prediction under the shared evaluation."""
    messages = []
    for plan in plans:
        if not plan.allocated_cost < plan.uniform_cost - _COST_TOL:
            messages.append(
                f"{plan.overlay}: allocated cost {plan.allocated_cost:.6f} does "
                f"not beat uniform {plan.uniform_cost:.6f} at K={plan.total_budget}"
            )
        if abs(plan.installed_cost_delta) > 1e-6:
            messages.append(
                f"{plan.overlay}: installed tables cost deviates from the plan "
                f"by {plan.installed_cost_delta!r}"
            )
    return messages


def load_gate_messages(plans: Sequence[AllocationPlan]) -> list[str]:
    """With ``--loads measured``, the load-aware greedy plan must
    strictly beat the uniform-load plan under the measured curves on
    every overlay — the predicted value of measuring who asks. Empty for
    uniform-loads runs."""
    messages = []
    for plan in plans:
        if plan.loads != "measured":
            continue
        if plan.measured_cost is None or plan.uniform_loads_cost is None:
            messages.append(f"{plan.overlay}: measured-loads plan missing its costs")
            continue
        if not plan.measured_cost < plan.uniform_loads_cost - _COST_TOL:
            messages.append(
                f"{plan.overlay}: load-aware cost {plan.measured_cost:.6f} does not "
                f"beat the uniform-load plan {plan.uniform_loads_cost:.6f} under "
                f"measured loads (workload {plan.workload})"
            )
    return messages


def measured_gate_messages(rows: Sequence[AllocationRow]) -> list[str]:
    """Per overlay, the allocated budget must deliver lower measured mean
    hops (frequency-aware policy) than uniform on at least one scenario.
    Measured hops are noisier than predicted cost — routing uses pointers
    the eq.-1 model only approximates — so one-scenario-per-overlay is
    the honest measurable claim."""
    messages = []
    by_overlay: dict[str, list[AllocationRow]] = {}
    for row in rows:
        by_overlay.setdefault(row.overlay, []).append(row)
    for overlay, overlay_rows in sorted(by_overlay.items()):
        uniform = {r.scenario: r for r in overlay_rows if r.mode == "uniform"}
        allocated = {r.scenario: r for r in overlay_rows if r.mode == "allocated"}
        wins = [
            scenario
            for scenario in uniform
            if scenario in allocated
            and allocated[scenario].optimal_mean_hops < uniform[scenario].optimal_mean_hops
        ]
        if not wins:
            messages.append(
                f"{overlay}: allocated budget beat uniform measured hops on no "
                f"scenario (scenarios: {sorted(uniform)})"
            )
    return messages


def rows_to_json(
    plans: Sequence[AllocationPlan],
    rows: Sequence[AllocationRow],
    preset: AllocationPreset,
    wall_time_s: float | None = None,
) -> str:
    """Canonical ALLOCATION_v1 document: sorted keys, fixed indent,
    byte-identical for the same seed at any worker count after
    :func:`repro.obs.manifest.strip_volatile`."""
    document = {
        "schema": "ALLOCATION_v1",
        "preset": asdict(preset),
        "manifest": build_manifest(preset, wall_time_s=wall_time_s),
        "plans": [asdict(plan) for plan in plans],
        "rows": [asdict(row) for row in rows],
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def _render(table: list[list[str]]) -> str:
    widths = [max(len(line[col]) for line in table) for col in range(len(table[0]))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def plans_to_table(plans: Sequence[AllocationPlan]) -> str:
    """Predicted eq.-1 costs at equal total budget, per overlay."""
    if not plans:
        return "(no plans)"
    measured = any(plan.loads == "measured" for plan in plans)
    header = ["overlay", "K", "uniform", "allocated", "reduction", "quotas"]
    if measured:
        header += ["load-aware", "load-blind", "load win", "loads"]
    body = []
    for plan in plans:
        row = [
            plan.overlay,
            str(plan.total_budget),
            f"{plan.uniform_cost:.2f}",
            f"{plan.allocated_cost:.2f}",
            f"{plan.reduction_pct:.2f}%",
            f"{plan.min_quota}..{plan.max_quota}",
        ]
        if measured:
            if plan.loads == "measured":
                row += [
                    f"{plan.measured_cost:.2f}",
                    f"{plan.uniform_loads_cost:.2f}",
                    f"{plan.load_win_pct:.2f}%",
                    f"{plan.load_min:.2f}..{plan.load_max:.2f}",
                ]
            else:
                row += ["-", "-", "-", "-"]
        body.append(row)
    return _render([header] + body)


def rows_to_table(rows: Sequence[AllocationRow]) -> str:
    """Measured mean hops per overlay x scenario x budget mode."""
    if not rows:
        return "(empty grid)"
    header = ["overlay", "scenario", "mode", "improvement", "ours", "oblivious"]
    body = [
        [
            row.overlay,
            row.scenario,
            row.mode,
            f"{row.improvement_pct:.1f}%",
            f"{row.optimal_mean_hops:.3f}",
            f"{row.baseline_mean_hops:.3f}",
        ]
        for row in rows
    ]
    return _render([header] + body)
