"""Cache attribution experiment (``repro cachestats``).

One cell per overlay: build the seeded bench exactly as the runners do,
learn frequencies from a warmup pass of the configured workload, install
the budget allocator's greedy quotas, then route a measurement stream
with an :class:`~repro.obs.attribution.AttributionRecorder` attached —
the per-(node, class) hit/use accounting, hop-savings credits, measured
per-node loads and quota utilization the aggregate curves cannot show.

Each cell additionally:

* replays the identical query batch through the columnar engine's
  batched lanes (chord/pastry; ``record_paths=True``) and attributes
  them with :func:`~repro.obs.attribution.attribute_batch`, recording
  whether the two attributions match field for field — the cross-engine
  honesty bit;
* crashes a deterministic slice of the population and routes a probe
  stream over the now-stale tables, measuring staleness-at-use (pointer
  uses whose target turned out dead) under churn.

Output is a CACHESTATS_v1 JSON document with a MANIFEST_v1 provenance
block; cells fan out over worker processes and rebuild their own seeded
registries, so the stripped document is byte-identical at any
``--jobs`` — the CI determinism gate diffs exactly that.

:func:`gate_messages` holds the experiment to its claims: the
conservation law must be exact on every cell (clean and churn probes),
auxiliary pointers must earn strictly positive credited savings on
every overlay, the columnar attribution must match the object-graph
attribution wherever the engine supports the overlay, and the churn
probe must observe at least one stale use (otherwise it measured
nothing).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass

from repro.core import budget as budget_mod
from repro.obs.attribution import AttributionRecorder, attribute_batch
from repro.obs.manifest import build_manifest
from repro.sim.metrics import HopStatistics
from repro.sim.runner import OVERLAYS, ExperimentConfig, _Bench
from repro.util.parallel import run_tasks
from repro.util.rng import SeedSequenceRegistry
from repro.workload.spec import DEFAULT_RATE

__all__ = [
    "CachestatsCell",
    "CachestatsPreset",
    "cells_to_json",
    "cells_to_table",
    "gate_messages",
    "run_cachestats",
    "top_pointers_table",
    "utilization_series",
]


@dataclass(frozen=True)
class CachestatsPreset:
    """Grid definition for one attribution run (one cell per overlay)."""

    name: str
    n: int
    bits: int
    queries: int
    warmup: int
    seed: int
    num_rankings: int
    workload: str = "static-zipf"
    #: Greedy-allocated share of the paper's ``n * k`` budget (matches
    #: the allocation experiment's default).
    budget_fraction: float = 0.5
    #: Fraction of the population crashed before the churn probe.
    crash_fraction: float = 0.125
    #: Hot-pointer table depth in the JSON document.
    top: int = 10
    overlays: tuple[str, ...] = OVERLAYS

    @classmethod
    def quick(cls, seed: int = 0, workload: str = "static-zipf") -> "CachestatsPreset":
        """Laptop-scale run (~a minute)."""
        return cls(
            name="quick",
            n=96,
            bits=18,
            queries=3000,
            warmup=1500,
            seed=seed,
            num_rankings=6,
            workload=workload,
        )

    @classmethod
    def smoke(cls, seed: int = 0, workload: str = "static-zipf") -> "CachestatsPreset":
        """CI-scale run (seconds)."""
        return cls(
            name="smoke",
            n=40,
            bits=16,
            queries=1000,
            warmup=600,
            seed=seed,
            num_rankings=4,
            workload=workload,
        )

    @property
    def effective_k(self) -> int:
        return max(1, self.n.bit_length() - 1)

    @property
    def total_budget(self) -> int:
        return max(1, int(self.n * self.effective_k * self.budget_fraction))


@dataclass(frozen=True)
class CachestatsCell:
    """One overlay's attribution cell — frozen so it pickles for
    process fan-out."""

    overlay: str
    n: int
    bits: int
    queries: int
    warmup: int
    seed: int
    num_rankings: int
    workload: str
    total_budget: int
    crash_fraction: float
    top: int


def _json_float(value: float) -> float | None:
    """NaN is not valid strict JSON; degrade it to ``null``."""
    return None if isinstance(value, float) and math.isnan(value) else value


def _columnar_attribution(bench, config, recorder, queries) -> bool | None:
    """Route the identical query batch through the columnar engine and
    attribute the lanes; ``True``/``False`` = matches the object-graph
    attribution, ``None`` = engine does not cover this overlay (or
    NumPy is absent)."""
    if config.overlay not in ("chord", "pastry"):
        return None
    try:
        from repro.engine.columnar import snapshot_chord, snapshot_pastry
        from repro.engine.router import batch_route_chord, batch_route_pastry
    except ImportError:  # pragma: no cover - NumPy-less environments
        return None
    sources = [query.source for query in queries]
    keys = [query.item for query in queries]
    if config.overlay == "chord":
        batch = batch_route_chord(
            snapshot_chord(bench.overlay), sources, keys, record_paths=True
        )
    else:
        batch = batch_route_pastry(
            snapshot_pastry(bench.overlay),
            sources,
            keys,
            mode=config.pastry_mode,
            record_paths=True,
        )
    columnar = AttributionRecorder(
        config.overlay,
        bench.overlay,
        mode=config.pastry_mode,
        quotas=recorder.quotas,
    )
    attribute_batch(columnar, batch, sources, keys)
    return columnar.to_dict() == recorder.to_dict()


def _run_cachestats_cell(cell: CachestatsCell) -> dict:
    """Execute one cell. Module-level so it pickles for ``run_tasks``;
    rebuilds its own registry from the cell seed, which is what keeps
    the grid byte-identical at any worker count."""
    config = ExperimentConfig(
        overlay=cell.overlay,
        n=cell.n,
        bits=cell.bits,
        queries=cell.queries,
        seed=cell.seed,
        num_rankings=cell.num_rankings,
        workload=cell.workload,
        engine="objects",
    )
    registry = SeedSequenceRegistry(config.seed)
    bench = _Bench(config, registry)
    # Learn frequencies from the workload itself (Section III protocol).
    warmup = bench.workload_stream("warmup-queries", horizon=cell.warmup / DEFAULT_RATE)
    alive = bench.overlay.alive_ids()
    for query in warmup.stream(cell.warmup, lambda: alive):
        bench.lookup(query.source, query.item, record_access=True)
    # Install the greedy budget allocation — quotas are the ``k_i`` the
    # utilization section measures against.
    problems = budget_mod.overlay_problems(
        cell.overlay, bench.overlay, config.frequency_limit
    )
    curves = budget_mod.curves_for_problems(problems, cell.overlay)
    allocation = budget_mod.allocate_greedy(curves, cell.total_budget)
    optimal, __ = bench.policies()
    budget_mod.install_allocation(
        bench.overlay,
        allocation,
        optimal,
        registry.fresh("policy-rng-optimal"),
        config.frequency_limit,
    )
    recorder = AttributionRecorder(
        cell.overlay,
        bench.overlay,
        mode=config.pastry_mode,
        quotas=allocation.quotas,
    )
    # Clean measurement pass: frozen tables, no faults, so the columnar
    # replay below sees the identical universe.
    stream = bench.workload_stream("queries", horizon=cell.queries / DEFAULT_RATE)
    alive = bench.overlay.alive_ids()
    queries = list(stream.stream(cell.queries, lambda: alive))
    stats = HopStatistics()
    for query in queries:
        stats.record(
            bench.lookup(query.source, query.item, record_access=False, trace=recorder)
        )
    columnar_match = _columnar_attribution(bench, config, recorder, queries)
    loads = recorder.measured_loads(bench.overlay.alive_ids())
    utilization = recorder.quota_utilization()
    quotas = allocation.quotas.values()
    # Churn probe: crash a deterministic slice, then measure how often
    # the survivors' pointers turn out stale at use.
    crash_rng = registry.fresh("cachestats-churn")
    alive_now = bench.overlay.alive_ids()
    crashed = sorted(
        crash_rng.sample(alive_now, max(1, int(len(alive_now) * cell.crash_fraction)))
    )
    for victim in crashed:
        bench.overlay.crash(victim)
    churn_recorder = AttributionRecorder(
        cell.overlay, bench.overlay, mode=config.pastry_mode, quotas=allocation.quotas
    )
    probe = bench.workload_stream(
        "probe-queries", horizon=max(1, cell.queries // 4) / DEFAULT_RATE
    )
    probe_stats = HopStatistics()
    for query in probe.stream(max(1, cell.queries // 4), bench.overlay.alive_ids):
        probe_stats.record(
            bench.lookup(
                query.source, query.item, record_access=False, trace=churn_recorder
            )
        )
    churn_classes = churn_recorder.class_totals()
    return {
        "overlay": cell.overlay,
        "lookups": stats.lookups,
        "mean_hops": _json_float(stats.mean_hops),
        "classes": {name: s.to_dict() for name, s in recorder.class_totals().items()},
        "quota": {
            "total_budget": cell.total_budget,
            "spent": allocation.spent,
            "min": min(quotas, default=0),
            "max": max(quotas, default=0),
            "nodes": len(allocation.quotas),
        },
        "utilization": {
            "per_node": {str(node): entry for node, entry in utilization.items()},
            "mean": sum(e["utilization"] for e in utilization.values())
            / len(utilization)
            if utilization
            else 0.0,
            "hit_fraction": sum(e["hit"] for e in utilization.values())
            / max(1, sum(e["installed"] for e in utilization.values())),
        },
        "loads": {
            "per_node": {str(node): load for node, load in loads.items()},
            "min": min(loads.values(), default=0.0),
            "max": max(loads.values(), default=0.0),
        },
        "top_pointers": recorder.top_pointers(cell.top),
        "conservation": recorder.conservation(),
        "columnar_match": columnar_match,
        "churn": {
            "crashed": len(crashed),
            "lookups": probe_stats.lookups,
            "failure_rate": probe_stats.failure_rate,
            "classes": {name: s.to_dict() for name, s in churn_classes.items()},
            "stale_uses": sum(s.stale_uses for s in churn_classes.values()),
            "conservation": churn_recorder.conservation(),
        },
    }


def _cells(preset: CachestatsPreset) -> list[CachestatsCell]:
    return [
        CachestatsCell(
            overlay=overlay,
            n=preset.n,
            bits=preset.bits,
            queries=preset.queries,
            warmup=preset.warmup,
            seed=preset.seed,
            num_rankings=preset.num_rankings,
            workload=preset.workload,
            total_budget=preset.total_budget,
            crash_fraction=preset.crash_fraction,
            top=preset.top,
        )
        for overlay in preset.overlays
    ]


def run_cachestats(preset: CachestatsPreset, jobs: int | None = None) -> list[dict]:
    """One attribution cell per overlay, fanned over worker processes;
    deterministic plan order regardless of ``jobs``."""
    return run_tasks(_run_cachestats_cell, _cells(preset), jobs)


def gate_messages(cells: list[dict]) -> list[str]:
    """The claims ``repro cachestats`` guards; empty list = all hold."""
    messages = []
    for cell in cells:
        overlay = cell["overlay"]
        for label, conservation in (
            ("clean", cell["conservation"]),
            ("churn", cell["churn"]["conservation"]),
        ):
            if not conservation["exact"]:
                messages.append(
                    f"{overlay}: {label} attribution broke the conservation law: "
                    f"{conservation['failures'][:1] or conservation}"
                )
        for name, stats in cell["classes"].items():
            if stats["hits"] > stats["uses"]:
                messages.append(
                    f"{overlay}: class {name} recorded more hits "
                    f"({stats['hits']}) than uses ({stats['uses']})"
                )
        auxiliary = cell["classes"].get("auxiliary", {"credited": 0})
        if auxiliary["credited"] <= 0:
            messages.append(
                f"{overlay}: auxiliary pointers earned no credited hop savings "
                f"({auxiliary['credited']})"
            )
        if cell["columnar_match"] is False:
            messages.append(
                f"{overlay}: columnar-lane attribution diverged from the "
                "object-graph attribution"
            )
        if cell["churn"]["stale_uses"] <= 0:
            messages.append(
                f"{overlay}: churn probe observed no stale pointer uses "
                f"after {cell['churn']['crashed']} crashes"
            )
    return messages


def cells_to_json(
    cells: list[dict], preset: CachestatsPreset, wall_time_s: float | None = None
) -> str:
    """Canonical CACHESTATS_v1 JSON with a MANIFEST_v1 provenance block;
    strip the manifest's volatile keys before byte-comparing runs."""
    document = {
        "schema": "CACHESTATS_v1",
        "preset": asdict(preset),
        "manifest": build_manifest(preset, wall_time_s=wall_time_s),
        "cells": cells,
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def cells_to_table(cells: list[dict]) -> str:
    """Per overlay × pointer class: uses, hits, staleness, credit."""
    lines = [
        f"{'overlay':<9} {'class':<10} {'uses':>8} {'hits':>8} "
        f"{'hit %':>7} {'stale':>6} {'credited':>9}"
    ]
    for cell in cells:
        for name, stats in cell["classes"].items():
            hit_pct = 100.0 * stats["hits"] / stats["uses"] if stats["uses"] else 0.0
            lines.append(
                f"{cell['overlay']:<9} {name:<10} {stats['uses']:>8} "
                f"{stats['hits']:>8} {hit_pct:>6.1f}% {stats['stale_uses']:>6} "
                f"{stats['credited']:>9}"
            )
    return "\n".join(lines)


def utilization_series(cells: list[dict]) -> list[tuple[str, list[float]]]:
    """Sparkline rows for the dashboard: per-node quota utilization and
    measured load, one row per overlay, nodes in ascending id order."""
    series: list[tuple[str, list[float]]] = []
    for cell in cells:
        per_node = cell["utilization"]["per_node"]
        ordered = sorted(per_node, key=int)
        series.append(
            (
                f"{cell['overlay']} util",
                [per_node[node]["utilization"] for node in ordered],
            )
        )
        loads = cell["loads"]["per_node"]
        series.append(
            (f"{cell['overlay']} load", [loads[node] for node in sorted(loads, key=int)])
        )
    return series


def top_pointers_table(cells: list[dict], count: int = 5) -> str:
    """The hottest concrete pointers by credited hop savings."""
    lines = [
        f"{'overlay':<9} {'owner':>12} {'target':>12} {'class':<10} "
        f"{'hits':>6} {'credited':>9}"
    ]
    for cell in cells:
        for pointer in cell["top_pointers"][:count]:
            lines.append(
                f"{cell['overlay']:<9} {pointer['owner']:>12} {pointer['target']:>12} "
                f"{pointer['class']:<10} {pointer['hits']:>6} {pointer['credited']:>9}"
            )
    return "\n".join(lines)
