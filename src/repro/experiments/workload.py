"""Workload-plane comparison experiment (``repro workload``).

The paper's evaluation fixes the workload (static Zipf) and varies the
selection policy. This experiment turns the axis around: every synthetic
scenario in :data:`repro.workload.spec.WORKLOADS` is run over all three
overlays under three auxiliary-selection modes —

``uniform``
    frequency-oblivious random pointers (the paper's baseline),
``frequency``
    frequency-aware eq.-1 selection *learned from the scenario itself*:
    a warmup pass routes scenario traffic with access recording on, the
    optimal tables are installed once, and measurement runs on frozen
    tables (the paper's Section III protocol),
``adaptive``
    same warmup, but access recording stays on during measurement and
    the tables are refreshed every eighth of the stream — the selection
    keeps chasing the workload as it drifts.

The grid makes the paper's implicit claim measurable: frequency-aware
selection wins where demand is skewed and stationary, and *refreshing*
the selection is what preserves the win when demand moves (drift,
flash crowds, hotspot rotation).

A second, smaller grid reruns the Section II-C item-cache comparison
(:func:`repro.extensions.item_cache.simulate_item_churn`) per scenario
under three cache disciplines (LRU, LFU, probabilistic-LRU), reporting
hops, hit rate and stale-answer rate next to pointer caching.

Output is a WORKLOAD_v1 JSON document with a MANIFEST_v1 provenance
block; strip the manifest's volatile keys to byte-compare runs, which
the CLI's jobs-determinism gate and the conformance tests do.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass

from repro.extensions.item_cache import simulate_item_churn
from repro.obs.manifest import build_manifest
from repro.sim.metrics import HopStatistics
from repro.sim.runner import OVERLAYS, ExperimentConfig, _Bench
from repro.util.parallel import run_tasks
from repro.util.rng import SeedSequenceRegistry
from repro.workload.spec import DEFAULT_RATE

__all__ = [
    "SELECTIONS",
    "WorkloadCell",
    "WorkloadPreset",
    "WorkloadRow",
    "CacheRow",
    "run_workloads",
    "rows_to_json",
    "rows_to_table",
    "cache_rows_to_table",
    "gate_messages",
]

SELECTIONS = ("uniform", "frequency", "adaptive")

#: Cache disciplines measured by the §II-C grid: (label, policy kwargs).
CACHE_VARIANTS = (
    ("item-lru", {"cache_policy": "lru"}),
    ("item-lfu", {"cache_policy": "lfu"}),
    ("item-prob", {"cache_policy": "lru", "admission_probability": 0.5}),
)


@dataclass(frozen=True)
class WorkloadPreset:
    """Grid definition for one workload-plane run."""

    name: str
    n: int
    bits: int
    queries: int
    warmup: int
    seed: int
    scenarios: tuple[str, ...]
    overlays: tuple[str, ...] = OVERLAYS
    #: Item-cache grid knobs (smaller rings — three full strategies run
    #: per scenario × discipline). The capacity is deliberately tight
    #: relative to the catalog so the eviction discipline actually bites.
    cache_n: int = 32
    cache_queries: int = 1200
    cache_capacity: int = 12

    @classmethod
    def quick(cls, seed: int = 0) -> "WorkloadPreset":
        """Laptop-scale grid (~a minute)."""
        return cls(
            name="quick",
            n=128,
            bits=20,
            queries=4000,
            warmup=2000,
            seed=seed,
            scenarios=(
                "static-zipf",
                "drifting-zipf:60",
                "flash-crowd:3",
                "diurnal:500",
                "hotspot-rotation:250",
            ),
            cache_n=48,
            cache_queries=2000,
        )

    @classmethod
    def smoke(cls, seed: int = 0) -> "WorkloadPreset":
        """CI-scale grid (seconds), same scenario axis."""
        return cls(
            name="smoke",
            n=48,
            bits=16,
            queries=1500,
            warmup=900,
            seed=seed,
            scenarios=(
                "static-zipf",
                "drifting-zipf:30",
                "flash-crowd:2",
                "diurnal:180",
                "hotspot-rotation:90",
            ),
            cache_n=24,
            cache_queries=800,
        )


@dataclass(frozen=True)
class WorkloadCell:
    """One (scenario, overlay, selection) cell — frozen so it pickles
    for process fan-out."""

    scenario: str
    overlay: str
    selection: str
    n: int
    bits: int
    queries: int
    warmup: int
    seed: int


@dataclass(frozen=True)
class WorkloadRow:
    """Measured outcome of one cell."""

    scenario: str
    overlay: str
    selection: str
    mean_hops: float
    failure_rate: float
    lookups: int


@dataclass(frozen=True)
class CacheRow:
    """One scenario × cache-discipline outcome of the §II-C grid."""

    scenario: str
    strategy: str
    mean_hops: float
    cache_hit_rate: float
    stale_answer_rate: float


def _run_workload_cell(cell: WorkloadCell) -> WorkloadRow:
    """Execute one cell. Module-level so it pickles for ``run_tasks``.

    All three selections of a (scenario, overlay) pair share the cell
    seed, hence the same overlay, catalog, rankings and measured query
    stream — the comparison isolates pointer selection exactly like
    :func:`repro.sim.runner.run_stable` does for its two policies.
    """
    config = ExperimentConfig(
        overlay=cell.overlay,
        n=cell.n,
        bits=cell.bits,
        queries=cell.queries,
        seed=cell.seed,
        workload=cell.scenario,
        engine="objects",
    )
    registry = SeedSequenceRegistry(config.seed)
    bench = _Bench(config, registry)
    optimal, oblivious = bench.policies()
    policy = oblivious if cell.selection == "uniform" else optimal
    rng = registry.fresh(f"policy-rng-{cell.selection}")
    if cell.selection != "uniform":
        # Learn frequencies from the scenario itself: a warmup pass with
        # access recording on, so the eq.-1 tables reflect where this
        # workload's queries actually land (not an assumed static model).
        warmup = bench.workload_stream(
            "warmup-queries", horizon=cell.warmup / DEFAULT_RATE
        )
        alive = bench.overlay.alive_ids()
        for query in warmup.stream(cell.warmup, lambda: alive):
            bench.lookup(query.source, query.item, record_access=True)
    bench.overlay.recompute_all_auxiliary(
        config.effective_k, policy, rng, frequency_limit=config.frequency_limit
    )
    stream = bench.workload_stream("queries", horizon=cell.queries / DEFAULT_RATE)
    stats = HopStatistics()
    alive = bench.overlay.alive_ids()
    adaptive = cell.selection == "adaptive"
    refresh = max(1, cell.queries // 8)
    for index, query in enumerate(stream.stream(cell.queries, lambda: alive), start=1):
        stats.record(bench.lookup(query.source, query.item, record_access=adaptive))
        if adaptive and index % refresh == 0:
            # Mid-stream refresh from the online-learned frequencies —
            # the selection chases the workload's current hot set.
            bench.overlay.recompute_all_auxiliary(
                config.effective_k, policy, rng, frequency_limit=config.frequency_limit
            )
    return WorkloadRow(
        scenario=cell.scenario,
        overlay=cell.overlay,
        selection=cell.selection,
        mean_hops=stats.mean_hops,
        failure_rate=stats.failure_rate,
        lookups=stats.lookups,
    )


def _run_cache_cell(task: tuple[str, str, dict, int, int, int, int]) -> list[CacheRow]:
    """One scenario × cache-discipline run of the item-churn comparator."""
    scenario, label, kwargs, n, queries, capacity, seed = task
    reports = simulate_item_churn(
        n=n,
        bits=16,
        queries=queries,
        cache_capacity=capacity,
        seed=seed,
        workload=scenario,
        **kwargs,
    )
    rows = [
        CacheRow(
            scenario=scenario,
            strategy=label,
            mean_hops=reports["item-cache"].mean_hops,
            cache_hit_rate=reports["item-cache"].cache_hit_rate,
            stale_answer_rate=reports["item-cache"].stale_answer_rate,
        )
    ]
    if label == "item-lru":
        # The pointer / no-cache anchors are identical across disciplines
        # (they never touch the cache); report them once per scenario.
        for anchor in ("pointer", "none"):
            rows.append(
                CacheRow(
                    scenario=scenario,
                    strategy=anchor,
                    mean_hops=reports[anchor].mean_hops,
                    cache_hit_rate=reports[anchor].cache_hit_rate,
                    stale_answer_rate=reports[anchor].stale_answer_rate,
                )
            )
    return rows


def _cells(preset: WorkloadPreset) -> list[WorkloadCell]:
    return [
        WorkloadCell(
            scenario=scenario,
            overlay=overlay,
            selection=selection,
            n=preset.n,
            bits=preset.bits,
            queries=preset.queries,
            warmup=preset.warmup,
            seed=preset.seed,
        )
        for scenario in preset.scenarios
        for overlay in preset.overlays
        for selection in SELECTIONS
    ]


def run_workloads(
    preset: WorkloadPreset, jobs: int | None = None
) -> tuple[list[WorkloadRow], list[CacheRow]]:
    """Run the full grid, fanning cells over worker processes.

    Returns ``(selection_rows, cache_rows)`` in deterministic plan order
    regardless of ``jobs``.
    """
    cells = _cells(preset)
    cache_tasks = [
        (
            scenario,
            label,
            kwargs,
            preset.cache_n,
            preset.cache_queries,
            preset.cache_capacity,
            preset.seed,
        )
        for scenario in preset.scenarios
        for label, kwargs in CACHE_VARIANTS
    ]
    rows = run_tasks(_run_workload_cell, cells, jobs)
    cache_rows = [
        row for group in run_tasks(_run_cache_cell, cache_tasks, jobs) for row in group
    ]
    return rows, cache_rows


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def _improvement(rows: list[WorkloadRow]) -> list[dict]:
    """Per (scenario, overlay): % hop reduction of frequency/adaptive
    selection versus the uniform baseline."""
    indexed = {(row.scenario, row.overlay, row.selection): row for row in rows}
    comparisons = []
    for scenario, overlay in dict.fromkeys((row.scenario, row.overlay) for row in rows):
        base = indexed[(scenario, overlay, "uniform")]
        entry = {"scenario": scenario, "overlay": overlay}
        for selection in ("frequency", "adaptive"):
            row = indexed[(scenario, overlay, selection)]
            entry[f"{selection}_vs_uniform_pct"] = (
                100.0 * (base.mean_hops - row.mean_hops) / base.mean_hops
                if base.mean_hops
                else 0.0
            )
        comparisons.append(entry)
    return comparisons


def gate_messages(rows: list[WorkloadRow]) -> list[str]:
    """The claims ``repro workload`` guards; empty list = all hold.

    1. On every *skewed stationary* scenario (static Zipf) frequency-aware
       selection must beat uniform pointers for every overlay — the
       paper's core result, now learned from traffic instead of assumed.
    2. On every scenario, *adaptive* selection must beat uniform for
       every overlay: refreshing the tables has to preserve the win even
       when the hot set moves.
    """
    failures = []
    for entry in _improvement(rows):
        scenario, overlay = entry["scenario"], entry["overlay"]
        if scenario.startswith("static-zipf") and entry["frequency_vs_uniform_pct"] <= 0.0:
            failures.append(
                f"{overlay}: frequency-aware selection loses to uniform on "
                f"{scenario} ({entry['frequency_vs_uniform_pct']:.1f}%)"
            )
        if entry["adaptive_vs_uniform_pct"] <= 0.0:
            failures.append(
                f"{overlay}: adaptive selection loses to uniform on "
                f"{scenario} ({entry['adaptive_vs_uniform_pct']:.1f}%)"
            )
    return failures


def rows_to_table(rows: list[WorkloadRow]) -> str:
    """Aligned per-scenario table: mean hops per selection + reductions."""
    comparisons = {
        (entry["scenario"], entry["overlay"]): entry for entry in _improvement(rows)
    }
    indexed = {(row.scenario, row.overlay, row.selection): row for row in rows}
    lines = [
        f"{'scenario':<22} {'overlay':<9} "
        f"{'uniform':>8} {'frequency':>10} {'adaptive':>9} {'freq red.':>10} {'adpt red.':>10}"
    ]
    for (scenario, overlay), entry in comparisons.items():
        cells = [indexed[(scenario, overlay, s)].mean_hops for s in SELECTIONS]
        lines.append(
            f"{scenario:<22} {overlay:<9} "
            f"{cells[0]:>8.3f} {cells[1]:>10.3f} {cells[2]:>9.3f} "
            f"{entry['frequency_vs_uniform_pct']:>9.1f}% "
            f"{entry['adaptive_vs_uniform_pct']:>9.1f}%"
        )
    return "\n".join(lines)


def cache_rows_to_table(rows: list[CacheRow]) -> str:
    """The §II-C grid: hops / hit rate / staleness per cache discipline."""
    lines = [
        f"{'scenario':<22} {'strategy':<10} {'hops':>7} {'hit rate':>9} {'stale':>7}"
    ]
    for row in rows:
        lines.append(
            f"{row.scenario:<22} {row.strategy:<10} {row.mean_hops:>7.3f} "
            f"{100 * row.cache_hit_rate:>8.1f}% {100 * row.stale_answer_rate:>6.1f}%"
        )
    return "\n".join(lines)


def rows_to_json(
    rows: list[WorkloadRow],
    cache_rows: list[CacheRow],
    preset: WorkloadPreset,
    wall_time_s: float | None = None,
) -> str:
    """Canonical WORKLOAD_v1 JSON with a MANIFEST_v1 provenance block.

    Strip the manifest's volatile keys
    (:func:`repro.obs.manifest.strip_volatile`) before byte-comparing two
    documents from the same preset — the CI jobs-determinism gate does.
    """

    def scrub(value):
        return None if isinstance(value, float) and math.isnan(value) else value

    document = {
        "schema": "WORKLOAD_v1",
        "preset": asdict(preset),
        "manifest": build_manifest(preset, wall_time_s=wall_time_s),
        "rows": [
            {key: scrub(value) for key, value in asdict(row).items()} for row in rows
        ],
        "comparisons": _improvement(rows),
        "cache_grid": [
            {key: scrub(value) for key, value in asdict(row).items()}
            for row in cache_rows
        ],
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"
