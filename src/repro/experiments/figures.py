"""Reproduction runners for every figure in the paper's evaluation.

Section VI contains four result figures (Figures 1–2 are algorithm
illustrations); each function here regenerates one of them and returns a
:class:`FigureResult` with the same series the paper plots — percentage
reduction in average hops versus the frequency-oblivious baseline:

* :func:`figure3` — Pastry, improvement vs ``n`` for alpha in {1.2, 0.91},
  ``k = log n``, identical rankings.
* :func:`figure4` — Pastry, improvement vs ``k`` in {1, 2, 3}·log n,
  ``n`` fixed; the locality-aware (FreePastry-like) routing mode drives
  the paper's increasing-with-k trend.
* :func:`figure5` — Chord, improvement vs ``n``, stable and churn-intensive
  modes, five per-node popularity rankings.
* :func:`figure6` — Chord, improvement vs ``k``, stable and churn modes;
  the paper observes the improvement *shrinking* as k grows.
* :func:`figure7` — extension beyond the paper: all three overlays
  (Chord, Pastry, Kademlia) side by side, improvement vs ``k`` in
  {1, 2, 3}·log n at a fixed ``n``, stable mode. The Kademlia series
  answers whether the eq.-1 selection transfers to the XOR metric.

Every runner accepts a :class:`FigurePreset`: ``paper()`` uses the paper's
parameters (n up to 2048, 32-bit ids, 1800 s churn runs — minutes of wall
time), ``quick()`` shrinks sizes for CI and benchmarking while preserving
every qualitative trend.

Execution model: each figure first *plans* its grid as a list of
:class:`FigureCell` specs (series label, x value, stable/churn kind, one
frozen config per cell), then executes the plan — fanning cells and seed
replicates over worker processes when ``jobs > 1`` (see
:mod:`repro.util.parallel`). Every cell/replicate derives all randomness
from its own config-embedded seed via :class:`~repro.util.rng.
SeedSequenceRegistry` substreams, so serial and parallel runs return
bit-identical results.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.obs.manifest import build_manifest
from repro.sim.metrics import ComparisonResult, HopStatistics
from repro.sim.runner import ChurnConfig, ExperimentConfig, run_churn, run_stable
from repro.util.parallel import run_tasks
from repro.util.rng import substream_seed

__all__ = [
    "FigurePreset",
    "FigureCell",
    "FigurePoint",
    "FigureSeries",
    "FigureResult",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "run_figure",
    "result_to_json",
    "FIGURES",
]


@dataclass(frozen=True)
class FigurePreset:
    """Size/duration knobs shared by all figure runners.

    ``replicas`` runs every cell that many times with derived seeds and
    merges the hop statistics — churn cells in particular are noisy at
    short durations (see EXPERIMENTS.md), and replication tightens them
    at a linear cost in wall time (amortized by ``jobs`` workers, since
    replicates fan out exactly like cells).
    """

    name: str
    bits: int
    queries: int
    pastry_sizes: tuple[int, ...]
    pastry_k_base: int
    chord_sizes: tuple[int, ...]
    chord_k_base: int
    churn_duration: float
    churn_warmup: float
    seed: int = 0
    replicas: int = 1
    #: Figure 7 (the three-overlay extension) grid: the shared node count
    #: is ``kademlia_k_base``; defaults keep presets built before the
    #: third overlay (e.g. serialized ones) loadable.
    kademlia_sizes: tuple[int, ...] = (128, 256, 512, 1024)
    kademlia_k_base: int = 1024

    @classmethod
    def paper(cls, seed: int = 0) -> "FigurePreset":
        """The paper's parameters (Section VI-A/VI-C)."""
        return cls(
            name="paper",
            bits=32,
            queries=20_000,
            pastry_sizes=(256, 512, 1024, 2048),
            pastry_k_base=1024,
            chord_sizes=(128, 256, 512, 1024),
            chord_k_base=1024,
            churn_duration=1800.0,
            churn_warmup=300.0,
            seed=seed,
            kademlia_sizes=(128, 256, 512, 1024),
            kademlia_k_base=1024,
        )

    @classmethod
    def quick(cls, seed: int = 0) -> "FigurePreset":
        """A minutes-to-seconds shrink preserving every trend."""
        return cls(
            name="quick",
            bits=20,
            queries=2_500,
            pastry_sizes=(64, 128, 256),
            pastry_k_base=128,
            chord_sizes=(48, 96, 192),
            chord_k_base=96,
            churn_duration=400.0,
            churn_warmup=100.0,
            seed=seed,
            kademlia_sizes=(48, 96, 192),
            kademlia_k_base=96,
        )


@dataclass(frozen=True)
class FigureCell:
    """One planned experiment cell: which series/x it lands on and how to run it."""

    series: str
    x: float
    kind: str  # "stable" or "churn"
    config: ExperimentConfig


@dataclass(frozen=True)
class FigurePoint:
    """One x-axis point of one series."""

    x: float
    comparison: ComparisonResult

    @property
    def improvement(self) -> float:
        return self.comparison.improvement


@dataclass(frozen=True)
class FigureSeries:
    """One plotted line: a labelled sequence of points."""

    label: str
    points: tuple[FigurePoint, ...]

    def improvements(self) -> list[float]:
        return [point.improvement for point in self.points]


@dataclass(frozen=True)
class FigureResult:
    """A regenerated figure: id, axes metadata and all series."""

    figure_id: str
    title: str
    x_label: str
    series: tuple[FigureSeries, ...] = field(default_factory=tuple)


def _log2(n: int) -> int:
    return max(1, n.bit_length() - 1)


# ----------------------------------------------------------------------
# Plan execution (shared by every figure)
# ----------------------------------------------------------------------


def _with_engine(cells: list[FigureCell], engine: str) -> list[FigureCell]:
    """Apply an engine override to a plan's *stable* cells.

    The engine lives on the cell configs, never on the preset, so the
    FIGURE_v1 ``preset`` block — and hence the stripped document — is
    byte-identical across engines. Churn cells always run on objects
    (the columnar engine is stable-mode only) and are left untouched.
    """
    if engine == "auto":
        return cells
    return [
        replace(cell, config=replace(cell.config, engine=engine))
        if cell.kind == "stable"
        else cell
        for cell in cells
    ]


def _with_workload(cells: list[FigureCell], workload: str) -> list[FigureCell]:
    """Apply a workload-scenario override to every cell of a plan.

    Like the engine override, the workload lives on the cell configs and
    never on the preset, so a default (``static-zipf``) plan's FIGURE_v1
    document is unchanged by the flag's existence.
    """
    if workload == "static-zipf":
        return cells
    return [replace(cell, config=replace(cell.config, workload=workload)) for cell in cells]


def _replica_config(config: ExperimentConfig, replica: int) -> ExperimentConfig:
    """Replica 0 keeps the cell's seed; later replicates get independent
    seeds from the cell's own substream, so the replicate set is stable
    regardless of which worker (or how many workers) runs it."""
    if replica == 0:
        return config
    return replace(config, seed=substream_seed(config.seed, f"replica-{replica}"))


def _run_cell(task: tuple[str, ExperimentConfig]) -> ComparisonResult:
    """Execute one (kind, config) task. Module-level so it pickles."""
    kind, config = task
    runner = run_churn if kind == "churn" else run_stable
    return runner(config)


def _merge_replicas(group: list[ComparisonResult]) -> ComparisonResult:
    """Merge one cell's replicate results into a single tighter comparison."""
    first = group[0]
    if len(group) == 1:
        return first
    optimized = HopStatistics()
    baseline = HopStatistics()
    for comparison in group:
        optimized.merge(comparison.optimized)
        baseline.merge(comparison.baseline)
    return ComparisonResult(f"{first.label} (x{len(group)} seeds)", optimized, baseline)


def _execute_plan(
    cells: list[FigureCell], replicas: int, jobs: int | None
) -> list[ComparisonResult]:
    """Run every cell × replicate, fanning out over processes, and return
    one merged comparison per cell in plan order."""
    replicas = max(1, replicas)
    tasks = [
        (cell.kind, _replica_config(cell.config, replica))
        for cell in cells
        for replica in range(replicas)
    ]
    results = run_tasks(_run_cell, tasks, jobs)
    return [
        _merge_replicas(results[index * replicas : (index + 1) * replicas])
        for index in range(len(cells))
    ]


def _assemble_series(
    cells: list[FigureCell], comparisons: list[ComparisonResult]
) -> tuple[FigureSeries, ...]:
    """Group per-cell results into series, preserving plan order."""
    grouped: dict[str, list[FigurePoint]] = {}
    for cell, comparison in zip(cells, comparisons):
        grouped.setdefault(cell.series, []).append(FigurePoint(cell.x, comparison))
    return tuple(FigureSeries(label, tuple(points)) for label, points in grouped.items())


# ----------------------------------------------------------------------
# Pastry figures
# ----------------------------------------------------------------------


def figure3(
    preset: FigurePreset | None = None,
    jobs: int | None = None,
    engine: str = "auto",
    workload: str = "static-zipf",
) -> FigureResult:
    """Figure 3: Pastry improvement vs number of nodes.

    Paper observations to reproduce: strongly positive improvements for
    both alphas, the alpha=1.2 curve dominating alpha=0.91, with up to
    ~49% (alpha=1.2) and ~29% (alpha=0.91) at the largest n.
    """
    preset = preset or FigurePreset.quick()
    cells = [
        FigureCell(
            f"alpha={alpha}",
            n,
            "stable",
            ExperimentConfig(
                overlay="pastry",
                n=n,
                k=_log2(n),
                alpha=alpha,
                bits=preset.bits,
                queries=preset.queries,
                num_rankings=1,
                seed=preset.seed,
            ),
        )
        for alpha in (1.2, 0.91)
        for n in preset.pastry_sizes
    ]
    cells = _with_engine(cells, engine)
    cells = _with_workload(cells, workload)
    series = _assemble_series(cells, _execute_plan(cells, preset.replicas, jobs))
    return FigureResult(
        "figure3",
        "Pastry: % hop reduction vs n (k = log n, identical rankings)",
        "n (number of nodes)",
        series,
    )


def figure4(
    preset: FigurePreset | None = None,
    jobs: int | None = None,
    engine: str = "auto",
    workload: str = "static-zipf",
) -> FigureResult:
    """Figure 4: Pastry improvement vs number of auxiliary neighbors.

    Uses the locality-aware routing mode; the paper reports improvement
    *increasing* with k (e.g. 50% -> 60% for alpha=1.2) and attributes it
    to FreePastry's proximity-based next-hop choice.
    """
    preset = preset or FigurePreset.quick()
    n = preset.pastry_k_base
    base_k = _log2(n)
    cells = [
        FigureCell(
            f"alpha={alpha}",
            multiple * base_k,
            "stable",
            ExperimentConfig(
                overlay="pastry",
                n=n,
                k=multiple * base_k,
                alpha=alpha,
                bits=preset.bits,
                queries=preset.queries,
                num_rankings=1,
                seed=preset.seed,
                pastry_mode="proximity",
            ),
        )
        for alpha in (1.2, 0.91)
        for multiple in (1, 2, 3)
    ]
    cells = _with_engine(cells, engine)
    cells = _with_workload(cells, workload)
    series = _assemble_series(cells, _execute_plan(cells, preset.replicas, jobs))
    return FigureResult(
        "figure4",
        f"Pastry: % hop reduction vs k (n = {n}, locality-aware routing)",
        "k (auxiliary neighbors)",
        series,
    )


# ----------------------------------------------------------------------
# Chord figures
# ----------------------------------------------------------------------


def _chord_stable_config(
    preset: FigurePreset, n: int, k: int, learned: bool = False
) -> ExperimentConfig:
    return ExperimentConfig(
        overlay="chord",
        n=n,
        k=k,
        alpha=1.2,
        bits=preset.bits,
        queries=preset.queries,
        num_rankings=5,
        seed=preset.seed,
        learned_frequencies=learned,
        # Finite observation history (Section III's learned frequencies):
        # with ~20 observed queries per node the optimal selection
        # saturates as k grows while random pointers keep helping — the
        # mechanism behind Figure 6's decreasing trend.
        warmup_queries=20 * n if learned else None,
    )


def _chord_churn_config(preset: FigurePreset, n: int, k: int) -> ChurnConfig:
    return ChurnConfig(
        overlay="chord",
        n=n,
        k=k,
        alpha=1.2,
        bits=preset.bits,
        num_rankings=5,
        seed=preset.seed,
        duration=preset.churn_duration,
        warmup=preset.churn_warmup,
    )


def figure5(
    preset: FigurePreset | None = None,
    jobs: int | None = None,
    engine: str = "auto",
    workload: str = "static-zipf",
) -> FigureResult:
    """Figure 5: Chord improvement vs number of nodes, stable and churn.

    Paper observations: up to ~57% reduction in the stable system at the
    largest n; still ~25% under the high-churn regime.
    """
    preset = preset or FigurePreset.quick()
    cells = [
        FigureCell("stable", n, "stable", _chord_stable_config(preset, n, _log2(n)))
        for n in preset.chord_sizes
    ] + [
        FigureCell("high churn", n, "churn", _chord_churn_config(preset, n, _log2(n)))
        for n in preset.chord_sizes
    ]
    cells = _with_engine(cells, engine)
    cells = _with_workload(cells, workload)
    series = _assemble_series(cells, _execute_plan(cells, preset.replicas, jobs))
    return FigureResult(
        "figure5",
        "Chord: % hop reduction vs n (k = log n, 5 per-node rankings)",
        "n (number of nodes)",
        series,
    )


def figure6(
    preset: FigurePreset | None = None,
    jobs: int | None = None,
    engine: str = "auto",
    workload: str = "static-zipf",
) -> FigureResult:
    """Figure 6: Chord improvement vs k, stable and churn.

    Paper observations: improvement *decreases* as k grows (random extra
    pointers catch up), e.g. churn 26% at k=log n down to ~17% at 3 log n.
    """
    preset = preset or FigurePreset.quick()
    n = preset.chord_k_base
    base_k = _log2(n)
    cells = [
        FigureCell(
            "stable",
            multiple * base_k,
            "stable",
            _chord_stable_config(preset, n, multiple * base_k, learned=True),
        )
        for multiple in (1, 2, 3)
    ] + [
        FigureCell(
            "high churn",
            multiple * base_k,
            "churn",
            _chord_churn_config(preset, n, multiple * base_k),
        )
        for multiple in (1, 2, 3)
    ]
    cells = _with_engine(cells, engine)
    cells = _with_workload(cells, workload)
    series = _assemble_series(cells, _execute_plan(cells, preset.replicas, jobs))
    return FigureResult(
        "figure6",
        f"Chord: % hop reduction vs k (n = {n})",
        "k (auxiliary neighbors)",
        series,
    )


# ----------------------------------------------------------------------
# Extension figure: three overlays side by side
# ----------------------------------------------------------------------


def figure7(
    preset: FigurePreset | None = None,
    jobs: int | None = None,
    engine: str = "auto",
    overlay: str | None = None,
    workload: str = "static-zipf",
) -> FigureResult:
    """Figure 7 (extension): Chord, Pastry and Kademlia improvement vs k.

    All three overlays at the same node count (``preset.kademlia_k_base``)
    with identical rankings, k in {1, 2, 3}·log n, stable mode. ``overlay``
    pins the plan to a single series (the CLI's ``--overlay`` flag).

    Expected shape: every overlay keeps a solidly positive reduction, the
    prefix-metric overlays (Pastry, Kademlia) tracking each other closely
    since their distance classes coincide.
    """
    preset = preset or FigurePreset.quick()
    overlays = ("chord", "pastry", "kademlia") if overlay is None else (overlay,)
    n = preset.kademlia_k_base
    base_k = _log2(n)
    cells = [
        FigureCell(
            series,
            multiple * base_k,
            "stable",
            ExperimentConfig(
                overlay=series,
                n=n,
                k=multiple * base_k,
                alpha=1.2,
                bits=preset.bits,
                queries=preset.queries,
                num_rankings=1,
                seed=preset.seed,
            ),
        )
        for series in overlays
        for multiple in (1, 2, 3)
    ]
    # The engine override skips Kademlia cells: the columnar engine
    # implements chord/pastry routing only (see engine.dispatch).
    if engine != "auto":
        cells = [
            replace(cell, config=replace(cell.config, engine=engine))
            if cell.config.overlay != "kademlia"
            else cell
            for cell in cells
        ]
    cells = _with_workload(cells, workload)
    series_out = _assemble_series(cells, _execute_plan(cells, preset.replicas, jobs))
    return FigureResult(
        "figure7",
        f"Three overlays: % hop reduction vs k (n = {n}, stable)",
        "k (auxiliary neighbors)",
        series_out,
    )


#: Registry used by the CLI and the benchmark harness.
FIGURES: dict[str, Callable[..., FigureResult]] = {
    "3": figure3,
    "4": figure4,
    "5": figure5,
    "6": figure6,
    "7": figure7,
}


def run_figure(
    figure_id: str,
    preset: FigurePreset | None = None,
    jobs: int | None = None,
    engine: str = "auto",
    overlay: str | None = None,
    workload: str = "static-zipf",
) -> FigureResult:
    """Run one figure by id ('3'..'7'). ``overlay`` pins figure 7's
    cross-overlay grid to a single overlay and is rejected elsewhere."""
    from repro.util.errors import ConfigurationError

    runner = FIGURES.get(str(figure_id))
    if runner is None:
        raise ConfigurationError(f"unknown figure {figure_id!r}; expected one of {sorted(FIGURES)}")
    if str(figure_id) == "7":
        return runner(preset, jobs, engine, overlay)
    if overlay is not None:
        raise ConfigurationError(
            "--overlay applies to figure 7 (the cross-overlay comparison) only"
        )
    return runner(preset, jobs, engine)


def _json_float(value: float) -> float | None:
    """NaN is not valid JSON; emit null for degraded cells."""
    return None if isinstance(value, float) and math.isnan(value) else value


def result_to_json(
    result: FigureResult, preset: FigurePreset, wall_time_s: float | None = None
) -> str:
    """Canonical FIGURE_v1 JSON for a regenerated figure.

    Carries a MANIFEST_v1 provenance block (``wall_time_s`` lands in its
    ``volatile`` part); strip the ``volatile`` keys
    (:func:`repro.obs.manifest.strip_volatile`) before byte-comparing two
    documents from the same seed.
    """
    from dataclasses import asdict

    document = {
        "schema": "FIGURE_v1",
        "figure_id": result.figure_id,
        "title": result.title,
        "x_label": result.x_label,
        "preset": asdict(preset),
        "manifest": build_manifest(preset, wall_time_s=wall_time_s),
        "series": [
            {
                "label": series.label,
                "points": [
                    {
                        "x": point.x,
                        "improvement_pct": _json_float(point.improvement),
                        "optimal_mean_hops": _json_float(point.comparison.optimized.mean_hops),
                        "baseline_mean_hops": _json_float(point.comparison.baseline.mean_hops),
                        "optimal_failure_rate": _json_float(
                            point.comparison.optimized.failure_rate
                        ),
                        "baseline_failure_rate": _json_float(
                            point.comparison.baseline.failure_rate
                        ),
                    }
                    for point in series.points
                ],
            }
            for series in result.series
        ],
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"
