"""Experiment harness: one runner per evaluation figure plus reporting."""

from repro.experiments.figures import (
    FIGURES,
    FigurePoint,
    FigurePreset,
    FigureResult,
    FigureSeries,
    figure3,
    figure4,
    figure5,
    figure6,
    run_figure,
)
from repro.experiments.report import render_detail, render_markdown, render_table

__all__ = [
    "FIGURES",
    "FigurePoint",
    "FigurePreset",
    "FigureResult",
    "FigureSeries",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "render_detail",
    "render_markdown",
    "render_table",
    "run_figure",
]

from repro.experiments.sweep import SweepRow, rows_to_csv, rows_to_table, sweep

__all__ += ["SweepRow", "rows_to_csv", "rows_to_table", "sweep"]

from repro.experiments.robustness import RobustnessPreset, RobustnessRow, robustness

__all__ += ["RobustnessPreset", "RobustnessRow", "robustness"]
